// Reproduces Fig. 16: YCSB throughput of LevelDB vs LevelDB-FCAE
// (multi-input engine). Paper setup: 20M records of 16 B keys + 1024 B
// values loaded first, then 20M operations per workload; zipfian
// request distribution (latest for D). The simulation uses the same
// record count with a reduced operation count per workload (the
// equilibrium throughput stabilizes long before 20M ops).

#include <cstdio>

#include "bench_util.h"
#include "syssim/simulator.h"
#include "workload/ycsb.h"

namespace fcae {
namespace bench {
namespace {

void Run() {
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;
  using workload::YcsbWorkload;

  constexpr uint64_t kRecords = 20'000'000;
  constexpr uint64_t kOps = 2'000'000;

  PrintHeader("Fig. 16: YCSB throughput (kops/s), 20M x 1KB records");
  std::printf("%6s %7s | %10s %10s %8s\n", "wkld", "write%", "LevelDB",
              "FCAE", "speedup");

  const YcsbWorkload workloads[] = {
      YcsbWorkload::kLoad, YcsbWorkload::kA, YcsbWorkload::kB,
      YcsbWorkload::kC,    YcsbWorkload::kD, YcsbWorkload::kE,
      YcsbWorkload::kF};

  for (YcsbWorkload w : workloads) {
    SimConfig cpu;
    cpu.mode = ExecMode::kLevelDbCpu;
    cpu.value_length = 1024;
    SimConfig fc = cpu;
    fc.mode = ExecMode::kLevelDbFcae;
    fc.engine.num_inputs = 9;
    fc.engine.input_width = 8;
    fc.engine.value_width = 8;

    auto r1 = Simulator(cpu).RunYcsb(w, kRecords, kOps);
    auto r2 = Simulator(fc).RunYcsb(w, kRecords, kOps);
    std::printf("%6s %6.0f%% | %10.1f %10.1f %8.2f\n",
                workload::YcsbWorkloadName(w),
                100 * workload::YcsbWriteFraction(w), r1.throughput_kops,
                r2.throughput_kops,
                r2.throughput_kops / r1.throughput_kops);
  }

  std::printf(
      "\nshape check (paper Section VII-D): LevelDB-FCAE outperforms\n"
      "LevelDB in all workloads; the read-only workload C is unchanged\n"
      "(storage format untouched); the speedup grows with the write\n"
      "ratio, peaking for the write-only Load (paper: up to 2.2x).\n");
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
