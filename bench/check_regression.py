#!/usr/bin/env python3
"""Gates CI on a BENCH_*.json perf report against a committed baseline.

Stdlib only (CI runs it without installing anything):

    python3 bench/check_regression.py BENCH_micro_perf.json \
        --baseline bench/baseline.json

The baseline maps metric keys (the flat dotted names the bench JSON
emitter writes) to an expected value plus a gate policy:

    "metrics": {
      "perf.t4_over_t1_write": {"baseline": 2.4, "direction": "min",
                                 "tolerance_pct": 50},
      "work.t1.flushes":       {"baseline": 58,  "direction": "both"},
      "work.t1.stall_micros":  {"baseline": 3.8e6, "direction": "none"}
    }

direction "min"  — regression gate: fail when the measured value drops
                   below baseline * (1 - tolerance/100). Used for
                   throughputs, where faster is never a failure.
direction "max"  — ceiling gate: fail when the measured value rises
                   above baseline * (1 + tolerance/100). Used for
                   latency/stall budgets and overload hard-stop counts,
                   where lower is never a failure.
direction "both" — tolerance band on both sides. Used for work counters
                   (bytes compacted, flush counts) that should be stable
                   run to run; drift in either direction means the
                   workload or the engine changed.
direction "none" — tracked for the artifact trajectory, never gated
                   (e.g. wall-clock stall totals on unknown hardware).

tolerance_pct falls back to the file's default_tolerance_pct (25 unless
overridden). A metric listed in the baseline but missing from the
report always fails: silently dropping an instrument is itself a
regression. Report keys not in the baseline are listed as untracked.
"""

import argparse
import json
import numbers
import sys


def check(report, baseline):
    default_tol = baseline.get("default_tolerance_pct", 25)
    failures = []
    rows = []

    for key, policy in sorted(baseline.get("metrics", {}).items()):
        expected = policy["baseline"]
        direction = policy.get("direction", "both")
        tol = policy.get("tolerance_pct", default_tol)
        value = report.get(key)

        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            rows.append((key, "MISSING", expected, direction, tol, "FAIL"))
            failures.append(f"{key}: missing from report")
            continue

        low = expected * (1 - tol / 100.0)
        high = expected * (1 + tol / 100.0)
        if direction == "none":
            verdict = "info"
        elif direction == "min":
            verdict = "ok" if value >= low else "FAIL"
        elif direction == "max":
            verdict = "ok" if value <= high else "FAIL"
        elif direction == "both":
            verdict = "ok" if low <= value <= high else "FAIL"
        else:
            verdict = "FAIL"
            failures.append(f"{key}: unknown direction {direction!r}")
            rows.append((key, value, expected, direction, tol, verdict))
            continue

        if verdict == "FAIL":
            bound = (f">= {low:.6g}" if direction == "min"
                     else f"<= {high:.6g}" if direction == "max"
                     else f"in [{low:.6g}, {high:.6g}]")
            failures.append(f"{key}: {value:.6g} not {bound} "
                            f"(baseline {expected:.6g} ±{tol}%)")
        rows.append((key, value, expected, direction, tol, verdict))

    tracked = set(baseline.get("metrics", {}))
    untracked = [k for k, v in sorted(report.items())
                 if k not in tracked and isinstance(v, numbers.Real)
                 and not isinstance(v, bool)]
    return rows, untracked, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="BENCH_*.json perf report")
    parser.add_argument("--baseline", required=True,
                        help="bench/baseline.json path")
    args = parser.parse_args()

    with open(args.report) as f:
        report = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    rows, untracked, failures = check(report, baseline)

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'metric':<{width}}  {'value':>12}  {'baseline':>12}  "
          f"{'gate':<10}  verdict")
    for key, value, expected, direction, tol, verdict in rows:
        shown = value if isinstance(value, str) else f"{value:.6g}"
        gate = "untracked" if direction == "none" else f"{direction} ±{tol}%"
        print(f"{key:<{width}}  {shown:>12}  {expected:>12.6g}  "
              f"{gate:<10}  {verdict}")
    if untracked:
        print(f"untracked report keys (add to baseline to gate): "
              f"{', '.join(untracked)}")

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        sys.exit(1)
    gated = sum(1 for r in rows if r[3] != "none")
    print(f"OK: {args.report} within tolerance ({gated} gated metrics)")


if __name__ == "__main__":
    main()
