// Reproduces Table VII: FPGA resource utilization across engine
// configurations (N, W_in, V) on the KCU1500, including the infeasible
// 206% LUT point that forces the 9-input engine down to W_in=8, V=8.

#include <cstdio>

#include "bench_util.h"
#include "fpga/resource_model.h"

namespace fcae {
namespace bench {
namespace {

void Run() {
  using fpga::EngineConfig;
  using fpga::ResourceModel;
  using fpga::ResourceUsage;

  PrintHeader("Table VII: resource utilization (% of KCU1500)");
  std::printf("%3s %5s %4s | %6s %6s %6s | %6s %6s %6s  %s\n", "N", "W_in",
              "V", "BRAM", "FF", "LUT", "pBRAM", "pFF", "pLUT", "fits?");

  struct Row {
    int n, win, v;
    double bram, ff, lut;  // Paper values.
  };
  const Row rows[] = {
      {2, 64, 16, 18, 10, 72}, {2, 64, 8, 17, 9, 63},
      {9, 64, 8, 35, 27, 206}, {9, 16, 16, 30, 18, 125},
      {9, 16, 8, 26, 16, 103}, {9, 8, 8, 25, 14, 84},
  };
  for (const Row& row : rows) {
    EngineConfig config;
    config.num_inputs = row.n;
    config.input_width = row.win;
    config.value_width = row.v;
    ResourceUsage usage = ResourceModel::Estimate(config);
    std::printf("%3d %5d %4d | %5.0f%% %5.0f%% %5.0f%% | %5.0f%% %5.0f%% "
                "%5.0f%%  %s\n",
                row.n, row.win, row.v, usage.bram_pct, usage.ff_pct,
                usage.lut_pct, row.bram, row.ff, row.lut,
                usage.Fits() ? "yes" : "NO");
  }

  PrintHeader("Configuration search (paper Section VII-C1)");
  for (int n : {2, 9}) {
    EngineConfig best = ResourceModel::LargestFittingConfig(n);
    std::printf("N=%d: largest fitting configuration W_in=%d V=%d (%s)\n", n,
                best.input_width, best.value_width,
                ResourceModel::Estimate(best).ToString().c_str());
  }
  std::printf("paper: N=9 engine must drop to W_in=8, V=8\n");
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
