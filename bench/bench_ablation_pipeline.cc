// Ablation over the engine's optimization levels (the design choices of
// Sections V-B, V-C and V-D, called out in DESIGN.md): basic pipeline ->
// + index/data block separation -> + key-value separation -> + full
// data-path bandwidth. Also cross-checks the cycle simulator against the
// closed-form timing model (Tables II/III).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "fpga/compaction_engine.h"
#include "fpga/timing_model.h"

namespace fcae {
namespace bench {
namespace {

constexpr uint64_t kKeyLen = 16;
constexpr uint64_t kNoSnapshot = 1ull << 40;
constexpr uint64_t kBytesPerInput = 2ull << 20;

double RunLevel(fpga::OptLevel level, int value_len, uint64_t* cycles,
                uint64_t* fetch_stalls) {
  StagedInputBuilder builder;
  fpga::DeviceInput in_a, in_b;
  const uint64_t records = RecordsFor(kBytesPerInput, kKeyLen, value_len);
  Status s = builder.Build(0, 0, records, 1, kKeyLen, value_len, &in_a);
  if (s.ok()) {
    s = builder.Build(1, records, records, 1, kKeyLen, value_len, &in_b);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "stage: %s\n", s.ToString().c_str());
    std::exit(1);
  }

  fpga::EngineConfig config;
  config.num_inputs = 2;
  config.value_width = 16;
  config.opt_level = level;
  fpga::DeviceOutput out;
  fpga::CompactionEngine engine(config, {&in_a, &in_b}, kNoSnapshot, true,
                                &out);
  s = engine.Run();
  if (!s.ok()) {
    std::fprintf(stderr, "engine: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  *cycles = engine.stats().cycles;
  *fetch_stalls = engine.stats().decoder_fetch_stalls;
  return engine.stats().CompactionSpeedMBps(config);
}

void Run() {
  PrintHeader("Ablation: engine speed (MB/s) by optimization level");
  std::printf(
      "(the basic design is Comparer-bound — Table II's period is\n"
      " (2+log2 N) x (L_key+L_value) — so block separation shows up as\n"
      " removed decoder stalls rather than end-to-end speed; key-value\n"
      " separation and the bandwidth widening unlock the big steps)\n");
  std::printf("%8s %10s %12s %10s %12s\n", "L_value", "basic", "+block-sep",
              "+kv-sep", "+bandwidth");

  for (int value_len : {64, 256, 1024}) {
    std::printf("%8d", value_len);
    uint64_t prev_cycles = ~0ull;
    uint64_t stalls[4];
    int si = 0;
    for (fpga::OptLevel level :
         {fpga::OptLevel::kBasic, fpga::OptLevel::kBlockSeparation,
          fpga::OptLevel::kKeyValueSeparation,
          fpga::OptLevel::kFullBandwidth}) {
      uint64_t cycles = 0;
      double speed = RunLevel(level, value_len, &cycles, &stalls[si]);
      si++;
      std::printf(" %10.1f", speed);
      if (cycles > prev_cycles) {
        std::printf("(!)");
      }
      prev_cycles = cycles;
    }
    std::printf("   fetch stalls: %llu -> %llu (block separation hides "
                "DRAM round trips)\n",
                (unsigned long long)stalls[0],
                (unsigned long long)stalls[1]);
  }

  PrintHeader("Timing model cross-check (Table III bottlenecks, V=16, N=2)");
  fpga::EngineConfig config;
  config.num_inputs = 2;
  config.value_width = 16;
  fpga::TimingModel model(config);
  std::printf("%8s %10s %10s %10s %10s %18s\n", "L_value", "decoder",
              "comparer", "transfer", "encoder", "bottleneck");
  for (int value_len : {64, 128, 256, 512, 1024, 2048}) {
    const uint64_t key = kKeyLen + 8;  // Internal key incl. mark.
    std::printf("%8d %10llu %10llu %10llu %10llu %18s\n", value_len,
                (unsigned long long)model.DecoderPeriod(key, value_len),
                (unsigned long long)model.ComparerPeriod(key, value_len),
                (unsigned long long)model.TransferPeriod(key, value_len),
                (unsigned long long)model.EncoderPeriod(key, value_len),
                fpga::TimingModel::BottleneckName(
                    model.BottleneckModule(key, value_len)));
  }
  std::printf("(paper Section V-D1: decoder-bound iff L_key < L_value /"
              " ((1 + ceil(log2 N)) * V))\n");
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
