// Reproduces Fig. 15: sensitivity of the end-to-end write throughput to
// the LevelDB settings of Table IV — (a) key length, (b) value length,
// (c) data block size, (d) leveling ratio — with the 9-input engine and
// all other parameters at their defaults.

#include <cstdio>

#include "bench_util.h"
#include "syssim/simulator.h"

namespace fcae {
namespace bench {
namespace {

using syssim::ExecMode;
using syssim::SimConfig;
using syssim::Simulator;

SimConfig Defaults(ExecMode mode) {
  SimConfig config;
  config.mode = mode;
  config.key_length = 16;
  config.value_length = 128;
  config.leveling_ratio = 10;
  config.block_size = 4096;
  config.engine.num_inputs = 9;
  config.engine.input_width = 8;
  config.engine.value_width = 8;
  return config;
}

void Report(const char* label, double x, const SimConfig& cpu,
            const SimConfig& fcae, double bytes) {
  auto r1 = Simulator(cpu).RunFillRandom(bytes);
  auto r2 = Simulator(fcae).RunFillRandom(bytes);
  std::printf("%s %8.0f: LevelDB %6.2f  FCAE %6.2f  speedup %5.2f\n", label,
              x, r1.throughput_mbps, r2.throughput_mbps,
              r2.throughput_mbps / r1.throughput_mbps);
}

void Run() {
  PrintHeader("Fig. 15(a): key length sweep (value 128, 1M entries)");
  std::printf("(paper: speedup decreases as key length grows 16 -> 256)\n");
  for (int key_len : {16, 32, 64, 128, 192, 256}) {
    SimConfig cpu = Defaults(ExecMode::kLevelDbCpu);
    cpu.key_length = key_len;
    SimConfig fcae = Defaults(ExecMode::kLevelDbFcae);
    fcae.key_length = key_len;
    Report("  key", key_len, cpu, fcae, 1e6 * (key_len + 128.0));
  }

  PrintHeader("Fig. 15(b): value length sweep (key 16, 1M entries)");
  std::printf("(paper: speedup increases with value length)\n");
  for (int value_len : {64, 128, 256, 512, 1024, 2048}) {
    SimConfig cpu = Defaults(ExecMode::kLevelDbCpu);
    cpu.value_length = value_len;
    SimConfig fcae = Defaults(ExecMode::kLevelDbFcae);
    fcae.value_length = value_len;
    Report("  val", value_len, cpu, fcae, 1e6 * (16.0 + value_len));
  }

  PrintHeader("Fig. 15(c): data block size sweep (defaults, 1M entries)");
  std::printf("(paper: throughput unrelated to block size, ratio ~2.4x)\n");
  for (int block_kb : {2, 4, 16, 64, 256, 1024}) {
    SimConfig cpu = Defaults(ExecMode::kLevelDbCpu);
    cpu.block_size = block_kb * 1024;
    SimConfig fcae = Defaults(ExecMode::kLevelDbFcae);
    fcae.block_size = block_kb * 1024;
    Report("  blk", block_kb, cpu, fcae, 1e6 * 144.0);
  }

  PrintHeader("Fig. 15(d): leveling ratio sweep (defaults, 1 GB)");
  std::printf("(paper: speedup decreases as the leveling ratio grows)\n");
  for (int ratio : {4, 7, 10, 13, 16}) {
    SimConfig cpu = Defaults(ExecMode::kLevelDbCpu);
    cpu.leveling_ratio = ratio;
    SimConfig fcae = Defaults(ExecMode::kLevelDbFcae);
    fcae.leveling_ratio = ratio;
    Report("  lvl", ratio, cpu, fcae, 1e9);
  }

  std::printf(
      "\nconclusion check (paper Section VII-C3): the engine favors short\n"
      "keys, long values, and leveling ratios not larger than 10.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
