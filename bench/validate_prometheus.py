#!/usr/bin/env python3
"""Validates a Prometheus text export (--metrics_prom_out) against
bench/metrics_schema.json.

Stdlib only (CI runs it without installing anything):

    python3 bench/validate_prometheus.py metrics.prom \
        --schema bench/metrics_schema.json

The exporter (obs::MetricsRegistry::ExportPrometheus) mangles dotted
metric names to `fcae_` + [non-alphanumeric -> '_'] and emits counters
and gauges as single samples and histograms as summaries (quantile
samples plus _sum/_count). This checker parses the text format, maps
every family back to its schema instrument, and enforces:

  - every sample belongs to a family announced by a `# TYPE` line;
  - every family maps to exactly one schema instrument of the matching
    kind (counter -> counter, gauge -> gauge, histogram -> summary);
  - required instruments are present and nonzero counters are > 0;
  - summaries carry the expected quantiles plus _sum and _count.
"""

import argparse
import fnmatch
import json
import re
import sys

errors = []


def fail(msg):
    errors.append(msg)


def mangle(name):
    return "fcae_" + "".join(c if c.isalnum() else "_" for c in name)


def mangle_glob(name):
    # Like mangle(), but keeps '*' so an fnmatch pattern in the schema
    # ('health.card*.probes') still matches mangled family names.
    return "fcae_" + "".join(c if (c.isalnum() or c == "*") else "_"
                             for c in name)


def load_schema(schema):
    """Returns ({mangled: (name, prom_kind)}, glob_families,
    required, nonzero) where glob_families is [(mangled_glob, name,
    prom_kind)] for schema names containing '*' (per-card instrument
    families). Understands both the dict and the legacy list formats."""
    by_mangled = {}
    glob_families = []
    required = set()
    nonzero = set()
    kinds = (("counter", "counter"), ("gauge", "gauge"),
             ("histogram", "summary"))
    for kind, prom_kind in kinds:
        names = {}
        section = schema.get(kind + "s")
        if isinstance(section, dict):
            for name, info in section.items():
                names[name] = info if isinstance(info, dict) else {}
        for name in schema.get(f"required_{kind}s", []):
            names.setdefault(name, {})["required"] = True
        for name in schema.get(f"known_{kind}s", []):
            names.setdefault(name, {})
        if kind == "counter":
            for name in schema.get("nonzero_counters", []):
                names.setdefault(name, {})["nonzero"] = True
        for name, info in names.items():
            if "*" in name:
                glob_families.append((mangle_glob(name), name, prom_kind))
                continue
            m = mangle(name)
            if m in by_mangled:
                fail(f"schema names '{by_mangled[m][0]}' and '{name}' both "
                     f"mangle to '{m}'")
            by_mangled[m] = (name, prom_kind)
            if info.get("required"):
                required.add(m)
            if info.get("nonzero"):
                nonzero.add(m)
    return by_mangled, glob_families, required, nonzero


SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|NaN)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$")


def parse_export(text):
    """Returns ({family: type}, {family: [(labels, value)]}). Samples of
    a summary's _sum/_count series are folded into their family."""
    types = {}
    samples = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m:
                types[m.group(1)] = m.group(2)
            elif not line.startswith(("# HELP", "# EOF")):
                fail(f"line {lineno}: unrecognised comment {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            fail(f"line {lineno}: unparsable sample {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            value = float(value)
        except ValueError:
            fail(f"line {lineno}: non-numeric value in {line!r}")
            continue
        family = name
        for suffix in ("_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base is not None and types.get(base) == "summary":
                family = base
                break
        samples.setdefault(family, []).append((name, labels, value))
    return types, samples


def validate(text, schema):
    by_mangled, glob_families, required, nonzero = load_schema(schema)
    types, samples = parse_export(text)

    for family in samples:
        if family not in types:
            fail(f"family '{family}' has samples but no # TYPE line")

    for family, ftype in types.items():
        known = by_mangled.get(family)
        if known is None:
            for pattern, name, prom_kind in glob_families:
                if fnmatch.fnmatchcase(family, pattern):
                    known = (name, prom_kind)
                    break
        if known is None:
            fail(f"family '{family}' does not map to any schema instrument")
            continue
        name, expected_type = known
        if ftype != expected_type:
            fail(f"family '{family}' ('{name}') is exported as {ftype}, "
                 f"schema expects {expected_type}")
        if family not in samples:
            fail(f"family '{family}' announced by # TYPE but has no samples")

    for family in sorted(required):
        if family not in samples:
            fail(f"missing required instrument "
                 f"'{by_mangled[family][0]}' ('{family}')")
    for family in sorted(nonzero):
        total = sum(v for (_n, _l, v) in samples.get(family, []))
        if total == 0:
            fail(f"counter '{by_mangled[family][0]}' is zero; the workload "
                 f"did not exercise it")

    for family, ftype in types.items():
        if ftype != "summary" or family not in samples:
            continue
        series = {name for (name, _l, _v) in samples[family]}
        quantiles = {labels for (name, labels, _v) in samples[family]
                     if name == family}
        for want in ('{quantile="0.5"}', '{quantile="0.9"}',
                     '{quantile="0.99"}'):
            if want not in quantiles:
                fail(f"summary '{family}' missing {want} sample")
        for suffix in ("_sum", "_count"):
            if family + suffix not in series:
                fail(f"summary '{family}' missing {family}{suffix}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("export", help="Prometheus text file")
    parser.add_argument("--schema", required=True,
                        help="metrics_schema.json path")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    with open(args.export) as f:
        text = f.read()
    validate(text, schema)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        sys.exit(1)
    _types, samples = parse_export(text)
    print(f"OK: {args.export} valid ({len(samples)} families)")


if __name__ == "__main__":
    main()
