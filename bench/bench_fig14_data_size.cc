// Reproduces Fig. 14 and Table VIII: write throughput of LevelDB vs
// LevelDB-FCAE (9-input engine, value 512 B) from 0.2 GB up to 1024 GB,
// and the share of total run time spent in PCIe transfers.

#include <cstdio>

#include "bench_util.h"
#include "syssim/simulator.h"

namespace fcae {
namespace bench {
namespace {

void Run() {
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  PrintHeader("Fig. 14: write throughput vs data size (9-input FCAE)");
  std::printf("%9s %9s %9s %7s | %9s\n", "size(GB)", "LevelDB", "FCAE",
              "ratio", "PCIe %");

  const double sizes_gb[] = {0.2, 0.5, 1, 2, 4, 8, 16, 32, 64, 128,
                             256, 512, 1024};
  const double paper_pcie[] = {9, 7, 8, 8, 6, 6, 3, 2, 1, 0.9, 0.9, 0.9,
                               0.9};

  std::printf("(paper Table VIII PCIe %% shown in the last column)\n");
  int i = 0;
  for (double gb : sizes_gb) {
    SimConfig cpu;
    cpu.mode = ExecMode::kLevelDbCpu;
    cpu.value_length = 512;
    SimConfig fc = cpu;
    fc.mode = ExecMode::kLevelDbFcae;
    fc.engine.num_inputs = 9;
    fc.engine.input_width = 8;
    fc.engine.value_width = 8;

    auto r1 = Simulator(cpu).RunFillRandom(gb * 1e9);
    auto r2 = Simulator(fc).RunFillRandom(gb * 1e9);
    std::printf("%9.1f %9.2f %9.2f %7.2f | %6.2f%%  (paper %4.1f%%)\n", gb,
                r1.throughput_mbps, r2.throughput_mbps,
                r2.throughput_mbps / r1.throughput_mbps, r2.PciePercent(),
                paper_pcie[i]);
    i++;
  }

  std::printf(
      "\nshape check: both systems decline with data size; PCIe transfer\n"
      "time stays a small share of total time (paper: <=9%%, <1%% at the\n"
      "tail). Note: the paper reports the speedup settling near 2.5x at\n"
      "extreme sizes while this model's speedup keeps growing mildly —\n"
      "see EXPERIMENTS.md for the discussion.\n");
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
