// Reproduces Table VI and Fig. 11: end-to-end random-write throughput of
// LevelDB vs LevelDB-FCAE (2-input engine) across value lengths and
// value-path widths V, via the calibrated system simulator
// (db_bench-style fillrandom over 1M entries, as the flat LevelDB
// column implies the paper did).

#include <cstdio>

#include "bench_util.h"
#include "syssim/simulator.h"

namespace fcae {
namespace bench {
namespace {

void Run() {
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  const int value_lengths[] = {64, 128, 256, 512, 1024, 2048};
  const int widths[] = {8, 16, 32, 64};
  const double paper_leveldb[] = {2.4, 2.9, 2.5, 2.8, 2.3, 2.3};
  const double paper_fcae[4][6] = {{5.6, 6.5, 5.8, 6.0, 6.7, 10.9},
                                   {5.4, 7.7, 7.1, 9.1, 9.8, 12.3},
                                   {5.6, 7.6, 7.2, 9.6, 11.0, 14.1},
                                   {5.4, 7.6, 7.2, 9.3, 11.6, 14.4}};

  PrintHeader(
      "Table VI: write throughput (MB/s), db_bench fillrandom, 1M entries");
  std::printf("%8s %9s %7s %7s %7s %7s\n", "L_value", "LevelDB", "V=8",
              "V=16", "V=32", "V=64");

  double fcae[4][6];
  double leveldb[6];
  for (int li = 0; li < 6; li++) {
    const int value_len = value_lengths[li];
    const double bytes = 1e6 * (16.0 + value_len);

    SimConfig cpu;
    cpu.mode = ExecMode::kLevelDbCpu;
    cpu.value_length = value_len;
    leveldb[li] = Simulator(cpu).RunFillRandom(bytes).throughput_mbps;

    std::printf("%8d %9.2f", value_len, leveldb[li]);
    for (int wi = 0; wi < 4; wi++) {
      SimConfig fc = cpu;
      fc.mode = ExecMode::kLevelDbFcae;
      fc.engine.num_inputs = 2;
      fc.engine.value_width = widths[wi];
      fcae[wi][li] = Simulator(fc).RunFillRandom(bytes).throughput_mbps;
      std::printf(" %7.2f", fcae[wi][li]);
    }
    std::printf("\n");
  }

  std::printf("\npaper:  LevelDB    V=8    V=16    V=32    V=64\n");
  for (int li = 0; li < 6; li++) {
    std::printf("%8d %9.1f %7.1f %7.1f %7.1f %7.1f\n", value_lengths[li],
                paper_leveldb[li], paper_fcae[0][li], paper_fcae[1][li],
                paper_fcae[2][li], paper_fcae[3][li]);
  }

  PrintHeader("Fig. 11: LevelDB-FCAE throughput acceleration ratio");
  std::printf("%8s %7s %7s %7s %7s   (paper V=16)\n", "L_value", "V=8",
              "V=16", "V=32", "V=64");
  for (int li = 0; li < 6; li++) {
    std::printf("%8d %7.2f %7.2f %7.2f %7.2f   %6.2f\n", value_lengths[li],
                fcae[0][li] / leveldb[li], fcae[1][li] / leveldb[li],
                fcae[2][li] / leveldb[li], fcae[3][li] / leveldb[li],
                paper_fcae[1][li] / paper_leveldb[li]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
