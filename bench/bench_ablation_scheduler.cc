// Ablation over the host scheduler policy (DESIGN.md item 6): the
// paper's strict Fig. 6 rule (software fallback for >N-input jobs) vs
// tournament scheduling (decompose into N-input kernel passes on the
// card). Reported both at the system level (calibrated simulator) and
// on the real storage engine (offload share of compactions).

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_util.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "syssim/simulator.h"
#include "util/mem_env.h"
#include "util/random.h"
#include "workload/key_generator.h"

namespace fcae {
namespace bench {
namespace {

void SystemLevel() {
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  PrintHeader("Scheduler ablation (system level, 1 GB fillrandom, 512 B)");
  std::printf("%-28s %10s %12s %10s\n", "policy", "MB/s", "offloaded",
              "sw-fallback");

  for (int n : {2, 9}) {
    for (bool multipass : {false, true}) {
      SimConfig config;
      config.mode = ExecMode::kLevelDbFcae;
      config.value_length = 512;
      config.engine.num_inputs = n;
      config.engine.input_width = n == 9 ? 8 : 64;
      config.engine.value_width = n == 9 ? 8 : 16;
      config.multipass_offload = multipass;
      auto r = Simulator(config).RunFillRandom(1e9);
      char label[64];
      std::snprintf(label, sizeof(label), "N=%d %s", n,
                    multipass ? "tournament" : "strict (Fig. 6)");
      std::printf("%-28s %10.2f %12llu %10llu\n", label, r.throughput_mbps,
                  (unsigned long long)r.compactions_offloaded,
                  (unsigned long long)r.compactions_sw);
    }
  }
}

// The calibrated simulator's parallel-compaction model: up to K jobs in
// flight on disjoint level pairs, sharing one background core and one
// card (kernels queue FIFO). device_queue_seconds is the staged-job
// time spent waiting for the card — the cost parallelism pays for a
// single device, and the case for a per-device queue on the host.
void ParallelScheduling() {
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  PrintHeader("Parallel compaction (system level, 1 GB fillrandom, 512 B)");
  std::printf("%-28s %10s %12s %14s\n", "workers", "MB/s", "offloaded",
              "device-queue s");

  for (int threads : {1, 2, 4}) {
    SimConfig config;
    config.mode = ExecMode::kLevelDbFcae;
    config.value_length = 512;
    config.engine.num_inputs = 9;
    config.engine.input_width = 8;
    config.engine.value_width = 8;
    config.multipass_offload = true;
    config.compaction_threads = threads;
    auto r = Simulator(config).RunFillRandom(1e9);
    char label[64];
    std::snprintf(label, sizeof(label), "compaction_threads=%d", threads);
    std::printf("%-28s %10.2f %12llu %14.2f\n", label, r.throughput_mbps,
                (unsigned long long)r.compactions_offloaded,
                r.device_queue_seconds);
  }
}

// Multi-card ablation at the system level: the same slow-engine setup
// the syssim tests use to provoke kernel queueing (analytic cost model,
// unseparated key-value path, leveling ratio 3 so jobs on disjoint
// level pairs coexist). Columns show what each knob buys: a second
// card drains device_queue_seconds, pipelined DMA converts queue time
// into overlap, and the shared bus charges the cards for colliding
// bursts.
void MultiCardSystemLevel() {
  using syssim::CostModel;
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  PrintHeader("Multi-card offload (system level, 300 MB fillrandom, 512 B)");
  std::printf("%-28s %10s %12s %12s %12s\n", "config", "MB/s", "queue s",
              "overlap s", "bus s");

  for (int cards : {1, 2, 4}) {
    for (bool pipelined : {false, true}) {
      SimConfig config;
      config.mode = ExecMode::kLevelDbFcae;
      config.cost = CostModel::Simulated();
      config.value_length = 512;
      config.engine.num_inputs = 9;
      config.engine.input_width = 8;
      config.engine.value_width = 8;
      config.engine.opt_level = fpga::OptLevel::kBasic;
      config.multipass_offload = true;
      config.compaction_threads = 4;
      config.leveling_ratio = 3;
      config.num_cards = cards;
      config.pipelined_dma = pipelined;
      auto r = Simulator(config).RunFillRandom(3e8);
      char label[64];
      std::snprintf(label, sizeof(label), "cards=%d dma=%s", cards,
                    pipelined ? "pipelined" : "serial");
      std::printf("%-28s %10.2f %12.2f %12.3f %12.3f\n", label,
                  r.throughput_mbps, r.device_queue_seconds,
                  r.pipeline_overlap_seconds, r.bus_contention_seconds);
    }
  }
}

// Multi-card fan-out on the real device model: eight staged
// sub-compaction shards pushed through a DeviceSet at every point of
// the cards {1,2,4} x in-flight shards {1,4} grid (in-flight workers
// play the role of max_subcompactions: how many shards of one job are
// eligible to run at once). The s4 column pair feeds the CI ablation
// gate (bench/ablation_baseline.json): two cards must beat one by the
// gated ratio, and the four-deep queue must keep the DMA pipeline
// engaged.
void MultiCard(JsonReport* report) {
  PrintHeader("Multi-card offload (real device model, 8 x ~1 MB shards)");
  std::printf("%-28s %12s %12s %12s %10s\n", "config", "model MB/s",
              "overlap us", "bus-wait us", "kernels");

  fpga::EngineConfig engine;
  engine.num_inputs = 9;
  engine.input_width = 8;
  engine.value_width = 8;

  constexpr int kShards = 8;
  constexpr int kRunsPerShard = 2;
  constexpr uint64_t kRecordsPerRun = 4000;
  StagedInputBuilder builder;
  std::vector<fpga::DeviceInput> inputs(kShards * kRunsPerShard);
  std::vector<std::vector<const fpga::DeviceInput*>> shards(kShards);
  for (int s = 0; s < kShards; s++) {
    for (int r = 0; r < kRunsPerShard; r++) {
      fpga::DeviceInput* input = &inputs[s * kRunsPerShard + r];
      Status st = builder.Build(s * kRunsPerShard + r, s * 100000 + r,
                                kRecordsPerRun, kRunsPerShard, 16, 100,
                                input);
      if (!st.ok()) {
        std::fprintf(stderr, "stage: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      shards[s].push_back(input);
    }
  }

  double c1_s4_mbps = 0, c2_s4_mbps = 0, c2_s4_overlap = 0;
  for (int cards : {1, 2, 4}) {
    for (int inflight : {1, 4}) {
      host::DeviceSet devices(engine, cards);
      DeviceFanoutResult r = RunDeviceFanout(&devices, shards, inflight);
      if (!r.ok) {
        std::fprintf(stderr, "fan-out failed (cards=%d)\n", cards);
        std::exit(1);
      }
      char label[64];
      std::snprintf(label, sizeof(label), "cards=%d subcompactions=%d",
                    cards, inflight);
      std::printf("%-28s %12.1f %12.0f %12.0f %10llu\n", label,
                  r.modeled_mbps, r.pipeline_overlap_micros,
                  r.bus_wait_micros, (unsigned long long)r.kernels_launched);

      char prefix[32];
      std::snprintf(prefix, sizeof(prefix), "multicard.c%d.s%d", cards,
                    inflight);
      const std::string p(prefix);
      report->Add(p + ".modeled_mbps", r.modeled_mbps);
      report->Add(p + ".pipeline_overlap_micros", r.pipeline_overlap_micros);
      report->Add(p + ".bus_wait_micros", r.bus_wait_micros);
      report->Add(p + ".kernels", r.kernels_launched);
      report->Add(p + ".pipelined_jobs", r.pipelined_jobs);
      if (inflight == 4 && cards == 1) c1_s4_mbps = r.modeled_mbps;
      if (inflight == 4 && cards == 2) {
        c2_s4_mbps = r.modeled_mbps;
        c2_s4_overlap = r.pipeline_overlap_micros;
      }
    }
  }
  report->Add("perf.offload.c2_over_c1",
              c1_s4_mbps > 0 ? c2_s4_mbps / c1_s4_mbps : 0.0);
  report->Add("perf.offload.pipeline_overlap_micros", c2_s4_overlap);
  std::printf("(gate: c2/c1 at 4 in-flight shards = %.3f, overlap %.0f us)\n",
              c1_s4_mbps > 0 ? c2_s4_mbps / c1_s4_mbps : 0.0, c2_s4_overlap);
}

void RealDb(JsonReport* report) {
  PrintHeader("Scheduler ablation (real DB, 30k x 256 B writes, N=2 card)");
  std::printf("%-28s %12s %12s %14s\n", "policy", "offloaded", "on cpu",
              "device cycles");

  JsonReport& report_ref = *report;
  for (bool tournament : {false, true}) {
    std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
    fpga::EngineConfig engine;
    engine.num_inputs = 2;
    host::FcaeDevice device(engine);
    host::FcaeExecutorOptions exec_options;
    exec_options.tournament_scheduling = tournament;
    host::FcaeCompactionExecutor executor(&device, exec_options);

    Options options;
    options.env = env.get();
    options.create_if_missing = true;
    options.write_buffer_size = 128 * 1024;
    options.compaction_executor = &executor;
    DB* raw = nullptr;
    Status s = DB::Open(options, "/sched_db", &raw);
    if (!s.ok()) {
      std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return;
    }
    std::unique_ptr<DB> db(raw);

    workload::KeyFormatter keys(16);
    workload::ValueGenerator values(3);
    Random rnd(99);
    for (int i = 0; i < 30000; i++) {
      Status put = db->Put(WriteOptions(), keys.Format(rnd.Uniform(20000)),
                           values.Generate(256));
      if (!put.ok()) {
        std::fprintf(stderr, "put: %s\n", put.ToString().c_str());
        std::exit(1);
      }
    }
    auto* impl = reinterpret_cast<DBImpl*>(db.get());
    if (Status flush = impl->TEST_CompactMemTable(); !flush.ok()) {
      std::fprintf(stderr, "flush: %s\n", flush.ToString().c_str());
      std::exit(1);
    }
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }

    std::string stats_str;
    db->GetProperty("fcae.stats", &stats_str);
    // Parse would be fragile; report via OffloadStats + device counters.
    CompactionExecStats stats = impl->OffloadStats();
    std::printf("%-28s %12llu %12s %14llu\n",
                tournament ? "tournament" : "strict (Fig. 6)",
                (unsigned long long)device.kernels_launched(),
                tournament ? "(none)" : "(L0 jobs)",
                (unsigned long long)stats.device_cycles);

    const std::string prefix = tournament ? "tournament" : "strict";
    report_ref.Add(prefix + ".kernels_launched", device.kernels_launched());
    report_ref.Add(prefix + ".device_cycles", stats.device_cycles);
    report_ref.AddRobustness(prefix, stats, impl->FallbackCompactions());
  }
  std::printf("(strict: level-0 compactions exceed the 2-input limit and "
              "run in software;\n tournament: every compaction reaches the "
              "device)\n");
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::SystemLevel();
  fcae::bench::ParallelScheduling();
  fcae::bench::MultiCardSystemLevel();
  fcae::bench::JsonReport report("ablation_scheduler");
  fcae::bench::RealDb(&report);
  fcae::bench::MultiCard(&report);
  report.WriteFile();
  return 0;
}
