// Ablation over the host scheduler policy (DESIGN.md item 6): the
// paper's strict Fig. 6 rule (software fallback for >N-input jobs) vs
// tournament scheduling (decompose into N-input kernel passes on the
// card). Reported both at the system level (calibrated simulator) and
// on the real storage engine (offload share of compactions).

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_util.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "syssim/simulator.h"
#include "util/mem_env.h"
#include "util/random.h"
#include "workload/key_generator.h"

namespace fcae {
namespace bench {
namespace {

void SystemLevel() {
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  PrintHeader("Scheduler ablation (system level, 1 GB fillrandom, 512 B)");
  std::printf("%-28s %10s %12s %10s\n", "policy", "MB/s", "offloaded",
              "sw-fallback");

  for (int n : {2, 9}) {
    for (bool multipass : {false, true}) {
      SimConfig config;
      config.mode = ExecMode::kLevelDbFcae;
      config.value_length = 512;
      config.engine.num_inputs = n;
      config.engine.input_width = n == 9 ? 8 : 64;
      config.engine.value_width = n == 9 ? 8 : 16;
      config.multipass_offload = multipass;
      auto r = Simulator(config).RunFillRandom(1e9);
      char label[64];
      std::snprintf(label, sizeof(label), "N=%d %s", n,
                    multipass ? "tournament" : "strict (Fig. 6)");
      std::printf("%-28s %10.2f %12llu %10llu\n", label, r.throughput_mbps,
                  (unsigned long long)r.compactions_offloaded,
                  (unsigned long long)r.compactions_sw);
    }
  }
}

// The calibrated simulator's parallel-compaction model: up to K jobs in
// flight on disjoint level pairs, sharing one background core and one
// card (kernels queue FIFO). device_queue_seconds is the staged-job
// time spent waiting for the card — the cost parallelism pays for a
// single device, and the case for a per-device queue on the host.
void ParallelScheduling() {
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  PrintHeader("Parallel compaction (system level, 1 GB fillrandom, 512 B)");
  std::printf("%-28s %10s %12s %14s\n", "workers", "MB/s", "offloaded",
              "device-queue s");

  for (int threads : {1, 2, 4}) {
    SimConfig config;
    config.mode = ExecMode::kLevelDbFcae;
    config.value_length = 512;
    config.engine.num_inputs = 9;
    config.engine.input_width = 8;
    config.engine.value_width = 8;
    config.multipass_offload = true;
    config.compaction_threads = threads;
    auto r = Simulator(config).RunFillRandom(1e9);
    char label[64];
    std::snprintf(label, sizeof(label), "compaction_threads=%d", threads);
    std::printf("%-28s %10.2f %12llu %14.2f\n", label, r.throughput_mbps,
                (unsigned long long)r.compactions_offloaded,
                r.device_queue_seconds);
  }
}

void RealDb() {
  PrintHeader("Scheduler ablation (real DB, 30k x 256 B writes, N=2 card)");
  std::printf("%-28s %12s %12s %14s\n", "policy", "offloaded", "on cpu",
              "device cycles");

  JsonReport report("ablation_scheduler");
  for (bool tournament : {false, true}) {
    std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
    fpga::EngineConfig engine;
    engine.num_inputs = 2;
    host::FcaeDevice device(engine);
    host::FcaeExecutorOptions exec_options;
    exec_options.tournament_scheduling = tournament;
    host::FcaeCompactionExecutor executor(&device, exec_options);

    Options options;
    options.env = env.get();
    options.create_if_missing = true;
    options.write_buffer_size = 128 * 1024;
    options.compaction_executor = &executor;
    DB* raw = nullptr;
    Status s = DB::Open(options, "/sched_db", &raw);
    if (!s.ok()) {
      std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return;
    }
    std::unique_ptr<DB> db(raw);

    workload::KeyFormatter keys(16);
    workload::ValueGenerator values(3);
    Random rnd(99);
    for (int i = 0; i < 30000; i++) {
      Status put = db->Put(WriteOptions(), keys.Format(rnd.Uniform(20000)),
                           values.Generate(256));
      if (!put.ok()) {
        std::fprintf(stderr, "put: %s\n", put.ToString().c_str());
        std::exit(1);
      }
    }
    auto* impl = reinterpret_cast<DBImpl*>(db.get());
    if (Status flush = impl->TEST_CompactMemTable(); !flush.ok()) {
      std::fprintf(stderr, "flush: %s\n", flush.ToString().c_str());
      std::exit(1);
    }
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }

    std::string stats_str;
    db->GetProperty("fcae.stats", &stats_str);
    // Parse would be fragile; report via OffloadStats + device counters.
    CompactionExecStats stats = impl->OffloadStats();
    std::printf("%-28s %12llu %12s %14llu\n",
                tournament ? "tournament" : "strict (Fig. 6)",
                (unsigned long long)device.kernels_launched(),
                tournament ? "(none)" : "(L0 jobs)",
                (unsigned long long)stats.device_cycles);

    const std::string prefix = tournament ? "tournament" : "strict";
    report.Add(prefix + ".kernels_launched", device.kernels_launched());
    report.Add(prefix + ".device_cycles", stats.device_cycles);
    report.AddRobustness(prefix, stats, impl->FallbackCompactions());
  }
  report.WriteFile();
  std::printf("(strict: level-0 compactions exceed the 2-input limit and "
              "run in software;\n tournament: every compaction reaches the "
              "device)\n");
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::SystemLevel();
  fcae::bench::ParallelScheduling();
  fcae::bench::RealDb();
  return 0;
}
