// Reproduces Fig. 10: write throughput of LevelDB vs LevelDB-FCAE
// (2-input engine, V=16, value 512 B) as the workload data size grows
// from 0.2 GB to 2 GB. The paper's observation: LevelDB's throughput
// "decreases dramatically" with data size while LevelDB-FCAE "degrades
// gently" (compaction pressure removed from the CPU).

#include <cstdio>

#include "bench_util.h"
#include "syssim/simulator.h"

namespace fcae {
namespace bench {
namespace {

void Run() {
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  PrintHeader("Fig. 10: write throughput vs data size (L_value=512, V=16)");
  std::printf("%9s %9s %9s %7s %9s %9s\n", "size(GB)", "LevelDB", "FCAE",
              "ratio", "LDBstall%", "FCAEstall%");

  double first_ldb = 0, last_ldb = 0, first_fcae = 0, last_fcae = 0;
  const double sizes_gb[] = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8,
                             2.0};
  for (double gb : sizes_gb) {
    SimConfig cpu;
    cpu.mode = ExecMode::kLevelDbCpu;
    cpu.value_length = 512;
    SimConfig fc = cpu;
    fc.mode = ExecMode::kLevelDbFcae;
    fc.engine.num_inputs = 2;
    fc.engine.value_width = 16;

    auto r1 = Simulator(cpu).RunFillRandom(gb * 1e9);
    auto r2 = Simulator(fc).RunFillRandom(gb * 1e9);
    std::printf("%9.1f %9.2f %9.2f %7.2f %8.1f%% %8.1f%%\n", gb,
                r1.throughput_mbps, r2.throughput_mbps,
                r2.throughput_mbps / r1.throughput_mbps,
                100 * (r1.stall_seconds + r1.slowdown_seconds) /
                    r1.elapsed_seconds,
                100 * (r2.stall_seconds + r2.slowdown_seconds) /
                    r2.elapsed_seconds);
    if (first_ldb == 0) {
      first_ldb = r1.throughput_mbps;
      first_fcae = r2.throughput_mbps;
    }
    last_ldb = r1.throughput_mbps;
    last_fcae = r2.throughput_mbps;
  }

  std::printf(
      "\nshape check: LevelDB drops %.1fx over the sweep; "
      "LevelDB-FCAE drops %.1fx (paper: dramatic vs gentle decline)\n",
      first_ldb / last_ldb, first_fcae / last_fcae);
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
