// Reproduces Figs. 12 and 13: compaction speed of the 9-input engine
// (W_in=8, V=8 — the largest configuration that fits, Table VII) vs the
// 2-input engine (W_in=64, V=16), and their acceleration ratios over
// the CPU baselines merging the same numbers of runs.
//
// Expected shape: the 9-input engine is substantially slower for short
// values (Comparer-bound; deeper compare tree) with the gap narrowing
// as values grow (Data Block Decoder-bound; nearly N-independent), yet
// its acceleration ratio over the *9-way* CPU merge exceeds the 2-input
// ratio because the software merge degrades linearly in N.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "fpga/compaction_engine.h"
#include "host/cpu_compactor.h"

namespace fcae {
namespace bench {
namespace {

constexpr uint64_t kKeyLen = 16;
constexpr uint64_t kNoSnapshot = 1ull << 40;
constexpr uint64_t kBytesPerInput = 1ull << 21;  // 2 MB per input run.

struct Result {
  double engine_mbps = 0;
  double cpu_mbps = 0;
};

Result RunConfig(int n, int win, int v, int value_len) {
  StagedInputBuilder builder;
  std::vector<std::unique_ptr<fpga::DeviceInput>> inputs;
  const uint64_t records = RecordsFor(kBytesPerInput, kKeyLen, value_len);
  for (int i = 0; i < n; i++) {
    // Consecutive ranges per input (see bench_table5 for why).
    auto input = std::make_unique<fpga::DeviceInput>();
    Status s = builder.Build(i, i * records, records, 1, kKeyLen, value_len,
                             input.get());
    if (!s.ok()) {
      std::fprintf(stderr, "stage: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    inputs.push_back(std::move(input));
  }
  std::vector<const fpga::DeviceInput*> ptrs;
  for (auto& in : inputs) ptrs.push_back(in.get());

  Result result;
  {
    fpga::EngineConfig config;
    config.num_inputs = n;
    config.input_width = win;
    config.value_width = v;
    fpga::DeviceOutput out;
    fpga::CompactionEngine engine(config, ptrs, kNoSnapshot, true, &out);
    Status s = engine.Run();
    if (!s.ok()) {
      std::fprintf(stderr, "engine: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    result.engine_mbps = engine.stats().CompactionSpeedMBps(config);
  }
  {
    host::CpuCompactorOptions options;
    options.smallest_snapshot = kNoSnapshot;
    options.drop_deletions = true;
    for (int rep = 0; rep < 3; rep++) {
      fpga::DeviceOutput out;
      host::CpuCompactStats stats;
      Status s = host::CpuCompactImages(ptrs, options, &out, &stats);
      if (!s.ok()) {
        std::fprintf(stderr, "cpu: %s\n", s.ToString().c_str());
        std::exit(1);
      }
      result.cpu_mbps = std::max(result.cpu_mbps, stats.SpeedMBps());
    }
  }
  return result;
}

void Run() {
  PrintHeader("Fig. 12: compaction speed (MB/s), 2-input vs 9-input");
  std::printf("%8s %12s %12s %8s | %12s %12s\n", "L_value", "2in(W64,V16)",
              "9in(W8,V8)", "9/2", "CPU 2-way", "CPU 9-way");

  const int value_lengths[] = {64, 128, 256, 512, 1024, 2048};
  double r2[6], r9[6];
  for (int li = 0; li < 6; li++) {
    const int value_len = value_lengths[li];
    Result two = RunConfig(2, 64, 16, value_len);
    Result nine = RunConfig(9, 8, 8, value_len);
    r2[li] = two.engine_mbps / two.cpu_mbps;
    r9[li] = nine.engine_mbps / nine.cpu_mbps;
    std::printf("%8d %12.1f %12.1f %8.2f | %12.1f %12.1f\n", value_len,
                two.engine_mbps, nine.engine_mbps,
                nine.engine_mbps / two.engine_mbps, two.cpu_mbps,
                nine.cpu_mbps);
  }

  PrintHeader("Fig. 13: acceleration ratio over the CPU baseline");
  std::printf("%8s %10s %10s   (paper: 9-input exceeds 2-input; up to 92x)\n",
              "L_value", "2-input", "9-input");
  for (int li = 0; li < 6; li++) {
    std::printf("%8d %10.1f %10.1f\n", value_lengths[li], r2[li], r9[li]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
