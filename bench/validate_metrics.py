#!/usr/bin/env python3
"""Validates a fcae.metrics JSON artifact against bench/metrics_schema.json.

Stdlib only (CI runs it without installing anything):

    python3 bench/validate_metrics.py metrics.json \
        --schema bench/metrics_schema.json [--trace trace.json]

Checks the structural contract (counters/gauges/histograms objects with
numeric values), that every exported instrument is known to the schema
with the matching kind, the schema's required/nonzero flags, and — when
--trace is given — that the trace export is loadable chrome://tracing
JSON with well-formed events.

Understands both schema formats: the current dict sections
(counters/gauges/histograms mapping name -> {description, required,
nonzero}) and the legacy required_*/known_*/nonzero_counters lists.
"""

import argparse
import fnmatch
import json
import numbers
import sys

errors = []


def fail(msg):
    errors.append(msg)


def load_schema_section(schema, kind):
    """Returns (known, required, nonzero) name sets for one instrument
    kind ('counter' | 'gauge' | 'histogram')."""
    known, required, nonzero = set(), set(), set()
    section = schema.get(kind + "s")
    if isinstance(section, dict):
        for name, info in section.items():
            known.add(name)
            if isinstance(info, dict):
                if info.get("required"):
                    required.add(name)
                if info.get("nonzero"):
                    nonzero.add(name)
    for name in schema.get(f"required_{kind}s", []):
        known.add(name)
        required.add(name)
    known.update(schema.get(f"known_{kind}s", []))
    if kind == "counter":
        nonzero.update(schema.get("nonzero_counters", []))
    return known, required, nonzero


def require_numeric_object(root, section):
    obj = root.get(section)
    if not isinstance(obj, dict):
        fail(f"top-level '{section}' missing or not an object")
        return {}
    for name, value in obj.items():
        if section == "histograms":
            if not isinstance(value, dict):
                fail(f"histogram '{name}' is not an object")
        elif not isinstance(value, numbers.Real) or isinstance(value, bool):
            fail(f"{section[:-1]} '{name}' has non-numeric value {value!r}")
    return obj


def validate_metrics(metrics, schema):
    counters = require_numeric_object(metrics, "counters")
    gauges = require_numeric_object(metrics, "gauges")
    histograms = require_numeric_object(metrics, "histograms")

    known_c, required_c, nonzero_c = load_schema_section(schema, "counter")
    known_g, required_g, _ = load_schema_section(schema, "gauge")
    known_h, required_h, _ = load_schema_section(schema, "histogram")

    # Every exported instrument must be a schema-known name of the same
    # kind: an unknown name here means code and schema drifted (or a
    # metric was renamed without updating the contract). Schema names
    # may be fnmatch globs ('health.card*.probes') covering families of
    # runtime-parameterized instruments (per offload card).
    for exported, known, kind in ((counters, known_c, "counter"),
                                  (gauges, known_g, "gauge"),
                                  (histograms, known_h, "histogram")):
        globs = [g for g in known if "*" in g or "?" in g or "[" in g]
        for name in exported:
            if name in known:
                continue
            if any(fnmatch.fnmatchcase(name, g) for g in globs):
                continue
            fail(f"exported {kind} '{name}' is not in the schema — "
                 f"add it to bench/metrics_schema.json")

    for name in sorted(required_c):
        if name not in counters:
            fail(f"missing required counter '{name}'")
        elif counters[name] < 0:
            fail(f"counter '{name}' is negative: {counters[name]}")
    for name in sorted(nonzero_c):
        if counters.get(name, 0) == 0:
            fail(f"counter '{name}' is zero; the workload did not exercise it")
    for name in sorted(required_g):
        if name not in gauges:
            fail(f"missing required gauge '{name}'")

    fields = schema.get("histogram_fields", [])
    for name in sorted(required_h):
        hist = histograms.get(name)
        if hist is None:
            fail(f"missing required histogram '{name}'")
            continue
        for field in fields:
            value = hist.get(field)
            if not isinstance(value, numbers.Real) or isinstance(value, bool):
                fail(f"histogram '{name}' field '{field}' missing/non-numeric")
        if isinstance(hist.get("count"), numbers.Real) and hist["count"] == 0:
            fail(f"histogram '{name}' recorded no samples")


def validate_trace(trace):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace: 'traceEvents' missing or empty")
        return
    names = set()
    for i, event in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"trace event #{i} missing '{key}'")
                break
        else:
            if event["ph"] not in ("X", "i"):
                fail(f"trace event #{i} has unknown phase {event['ph']!r}")
            if event["ph"] == "X" and "dur" not in event:
                fail(f"trace span #{i} ('{event['name']}') missing 'dur'")
            names.add(event["name"])
    for required in ("flush", "compaction"):
        if required not in names:
            fail(f"trace: no '{required}' span recorded")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="fcae.metrics JSON file")
    parser.add_argument("--schema", required=True,
                        help="metrics_schema.json path")
    parser.add_argument("--trace", help="optional fcae.trace JSON file")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)
    with open(args.metrics) as f:
        metrics = json.load(f)
    validate_metrics(metrics, schema)

    if args.trace:
        with open(args.trace) as f:
            trace = json.load(f)
        validate_trace(trace)

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        sys.exit(1)
    counted = sum(len(metrics.get(s, {}))
                  for s in ("counters", "gauges", "histograms"))
    print(f"OK: {args.metrics} valid ({counted} instruments)")


if __name__ == "__main__":
    main()
