// Google-benchmark microbenchmarks of the building blocks the compaction
// path is made of: CRC32C, the Snappy codec, block build/parse, memtable
// inserts and the software merge. Useful for spotting regressions in
// the substrate underneath the reproduction benches.
//
// Telemetry flags (stripped before google-benchmark sees argv):
//   --metrics_out=<path>  run a short instrumented DB workload after the
//                         micro benches and write its fcae.metrics JSON
//   --trace_out=<path>    same workload; write the fcae.trace export

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "compress/snappy.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "lsm/memtable.h"
#include "obs/metrics.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "util/crc32c.h"
#include "util/mem_env.h"
#include "util/random.h"
#include "workload/key_generator.h"

namespace fcae {
namespace {

std::string MakePayload(size_t len) {
  workload::ValueGenerator gen(301);
  return gen.Generate(len);
}

void BM_Crc32c(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_SnappyCompress(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  std::string out;
  for (auto _ : state) {
    snappy::Compress(data.data(), data.size(), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SnappyCompress)->Arg(4096)->Arg(65536);

void BM_SnappyUncompress(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  std::string compressed;
  snappy::Compress(data.data(), data.size(), &compressed);
  std::string out;
  for (auto _ : state) {
    snappy::Uncompress(compressed.data(), compressed.size(), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SnappyUncompress)->Arg(4096)->Arg(65536);

void BM_BlockBuild(benchmark::State& state) {
  Options options;
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(state.range(0));
  for (auto _ : state) {
    BlockBuilder builder(&options);
    for (int i = 0; i < 64; i++) {
      builder.Add(keys.Format(i), value);
    }
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BlockBuild)->Arg(128)->Arg(1024);

void BM_BlockIterate(benchmark::State& state) {
  Options options;
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(128);
  BlockBuilder builder(&options);
  for (int i = 0; i < 256; i++) {
    builder.Add(keys.Format(i), value);
  }
  std::string contents = builder.Finish().ToString();
  BlockContents bc;
  bc.data = Slice(contents);
  bc.heap_allocated = false;
  bc.cachable = false;
  Block block(bc);

  for (auto _ : state) {
    std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
    int n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BlockIterate);

void BM_MemTableInsert(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(state.range(0));
  Random rnd(301);

  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  uint64_t seq = 1;
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, keys.Format(rnd.Next()), value);
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  mem->Unref();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableInsert)->Arg(128)->Arg(1024);

// Write path plus the kind of instrumentation obs/ hangs on it: one
// counter increment and one gauge-style byte count per insert. Comparing
// against BM_MemTableInsert bounds the metrics overhead the acceptance
// criteria cap at 2% — the real DB is cheaper still, since it only
// touches counters on flush/compaction/stall events, never per Put.
void BM_MemTableInsertWithMetrics(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(state.range(0));
  Random rnd(301);

  obs::MetricsRegistry registry;
  obs::Counter* ops = registry.counter("bench.memtable.inserts");
  obs::Counter* bytes = registry.counter("bench.memtable.bytes");

  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  uint64_t seq = 1;
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, keys.Format(rnd.Next()), value);
    ops->Increment();
    bytes->Increment(16 + value.size());
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  mem->Unref();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableInsertWithMetrics)->Arg(128)->Arg(1024);

// Raw cost of one relaxed-atomic counter increment, for sizing budgets.
void BM_MetricsCounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("bench.counter");
  for (auto _ : state) {
    c->Increment();
  }
  benchmark::DoNotOptimize(c->value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterIncrement);

// Short instrumented DB run backing the --metrics_out/--trace_out
// artifacts: mem-env DB with the FCAE offload executor, enough writes to
// force flushes and at least one offloaded compaction, then a manual
// compaction so every lifecycle span (pick through install) appears.
int RunTelemetryWorkload(const bench::ObsExportFlags& obs_flags) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));

  fpga::EngineConfig config;
  config.num_inputs = 9;
  config.input_width = 8;
  config.value_width = 8;
  host::FcaeDevice device(config);
  host::DeviceHealthMonitor health;
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &health;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  Options options;
  options.env = env.get();
  options.create_if_missing = true;
  options.write_buffer_size = 256 * 1024;
  options.compaction_executor = &executor;

  const std::string dbname = "/bench_micro_telemetry";
  DestroyDB(dbname, options);
  DB* raw = nullptr;
  Status s = DB::Open(options, dbname, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "telemetry workload open: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  workload::KeyFormatter keys(16);
  workload::ValueGenerator values(301);
  Random rnd(42);
  WriteOptions wo;
  for (int i = 0; i < 20000; i++) {
    s = db->Put(wo, keys.Format(rnd.Uniform(20000)), values.Generate(100));
    if (!s.ok()) {
      std::fprintf(stderr, "telemetry workload put: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  db->CompactRange(nullptr, nullptr);

  bool ok = true;
  std::string json;
  if (!obs_flags.metrics_out.empty()) {
    ok = db->GetProperty("fcae.metrics", &json) &&
         bench::WriteTextFile(obs_flags.metrics_out, json) && ok;
  }
  if (!obs_flags.trace_out.empty()) {
    ok = db->GetProperty("fcae.trace", &json) &&
         bench::WriteTextFile(obs_flags.trace_out, json) && ok;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace fcae

int main(int argc, char** argv) {
  fcae::bench::ObsExportFlags obs_flags;
  obs_flags.Consume(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (obs_flags.active()) {
    return fcae::RunTelemetryWorkload(obs_flags);
  }
  return 0;
}
