// Google-benchmark microbenchmarks of the building blocks the compaction
// path is made of: CRC32C, the Snappy codec, block build/parse, memtable
// inserts and the software merge. Useful for spotting regressions in
// the substrate underneath the reproduction benches.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "compress/snappy.h"
#include "lsm/dbformat.h"
#include "lsm/memtable.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "util/crc32c.h"
#include "util/mem_env.h"
#include "util/random.h"
#include "workload/key_generator.h"

namespace fcae {
namespace {

std::string MakePayload(size_t len) {
  workload::ValueGenerator gen(301);
  return gen.Generate(len);
}

void BM_Crc32c(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_SnappyCompress(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  std::string out;
  for (auto _ : state) {
    snappy::Compress(data.data(), data.size(), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SnappyCompress)->Arg(4096)->Arg(65536);

void BM_SnappyUncompress(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  std::string compressed;
  snappy::Compress(data.data(), data.size(), &compressed);
  std::string out;
  for (auto _ : state) {
    snappy::Uncompress(compressed.data(), compressed.size(), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SnappyUncompress)->Arg(4096)->Arg(65536);

void BM_BlockBuild(benchmark::State& state) {
  Options options;
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(state.range(0));
  for (auto _ : state) {
    BlockBuilder builder(&options);
    for (int i = 0; i < 64; i++) {
      builder.Add(keys.Format(i), value);
    }
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BlockBuild)->Arg(128)->Arg(1024);

void BM_BlockIterate(benchmark::State& state) {
  Options options;
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(128);
  BlockBuilder builder(&options);
  for (int i = 0; i < 256; i++) {
    builder.Add(keys.Format(i), value);
  }
  std::string contents = builder.Finish().ToString();
  BlockContents bc;
  bc.data = Slice(contents);
  bc.heap_allocated = false;
  bc.cachable = false;
  Block block(bc);

  for (auto _ : state) {
    std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
    int n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BlockIterate);

void BM_MemTableInsert(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(state.range(0));
  Random rnd(301);

  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  uint64_t seq = 1;
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, keys.Format(rnd.Next()), value);
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  mem->Unref();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableInsert)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace fcae

BENCHMARK_MAIN();
