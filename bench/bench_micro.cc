// Google-benchmark microbenchmarks of the building blocks the compaction
// path is made of: CRC32C, the Snappy codec, block build/parse, memtable
// inserts and the software merge. Useful for spotting regressions in
// the substrate underneath the reproduction benches.
//
// Telemetry flags (stripped before google-benchmark sees argv):
//   --metrics_out=<path>       run a short instrumented DB workload after
//                              the micro benches and write its
//                              fcae.metrics JSON
//   --metrics_prom_out=<path>  same workload; write the Prometheus text
//                              rendering of the metrics registry
//   --trace_out=<path>         same workload; write the fcae.trace export

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "compress/snappy.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "lsm/memtable.h"
#include "obs/metrics.h"
#include "obs/perf_context.h"
#include "table/block.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "util/cache.h"
#include "util/crc32c.h"
#include "util/filter_policy.h"
#include "util/mem_env.h"
#include "util/random.h"
#include "workload/key_generator.h"

namespace fcae {
namespace {

std::string MakePayload(size_t len) {
  workload::ValueGenerator gen(301);
  return gen.Generate(len);
}

void BM_Crc32c(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_SnappyCompress(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  std::string out;
  for (auto _ : state) {
    snappy::Compress(data.data(), data.size(), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SnappyCompress)->Arg(4096)->Arg(65536);

void BM_SnappyUncompress(benchmark::State& state) {
  std::string data = MakePayload(state.range(0));
  std::string compressed;
  snappy::Compress(data.data(), data.size(), &compressed);
  std::string out;
  for (auto _ : state) {
    snappy::Uncompress(compressed.data(), compressed.size(), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_SnappyUncompress)->Arg(4096)->Arg(65536);

void BM_BlockBuild(benchmark::State& state) {
  Options options;
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(state.range(0));
  for (auto _ : state) {
    BlockBuilder builder(&options);
    for (int i = 0; i < 64; i++) {
      builder.Add(keys.Format(i), value);
    }
    benchmark::DoNotOptimize(builder.Finish());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BlockBuild)->Arg(128)->Arg(1024);

void BM_BlockIterate(benchmark::State& state) {
  Options options;
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(128);
  BlockBuilder builder(&options);
  for (int i = 0; i < 256; i++) {
    builder.Add(keys.Format(i), value);
  }
  std::string contents = builder.Finish().ToString();
  BlockContents bc;
  bc.data = Slice(contents);
  bc.heap_allocated = false;
  bc.cachable = false;
  Block block(bc);

  for (auto _ : state) {
    std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
    int n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BlockIterate);

void BM_MemTableInsert(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(state.range(0));
  Random rnd(301);

  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  uint64_t seq = 1;
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, keys.Format(rnd.Next()), value);
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  mem->Unref();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableInsert)->Arg(128)->Arg(1024);

// Write path plus the kind of instrumentation obs/ hangs on it: one
// counter increment and one gauge-style byte count per insert. Comparing
// against BM_MemTableInsert bounds the metrics overhead the acceptance
// criteria cap at 2% — the real DB is cheaper still, since it only
// touches counters on flush/compaction/stall events, never per Put.
void BM_MemTableInsertWithMetrics(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  workload::KeyFormatter keys(16);
  std::string value = MakePayload(state.range(0));
  Random rnd(301);

  obs::MetricsRegistry registry;
  obs::Counter* ops = registry.counter("bench.memtable.inserts");
  obs::Counter* bytes = registry.counter("bench.memtable.bytes");

  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  uint64_t seq = 1;
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, keys.Format(rnd.Next()), value);
    ops->Increment();
    bytes->Increment(16 + value.size());
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  mem->Unref();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableInsertWithMetrics)->Arg(128)->Arg(1024);

// Raw cost of one relaxed-atomic counter increment, for sizing budgets.
void BM_MetricsCounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("bench.counter");
  for (auto _ : state) {
    c->Increment();
  }
  benchmark::DoNotOptimize(c->value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterIncrement);

// Short instrumented DB run backing the --metrics_out /
// --metrics_prom_out / --trace_out artifacts: mem-env DB with the FCAE
// offload executor, a bloom filter and a deliberately small block cache,
// and a mixed load (overwrites, deletes, point reads for present and
// absent keys, a scan) so the read- and write-path PerfContext tick
// sites all fire. The run self-checks: the calling thread enables
// PerfLevel::kEnableTime and fails the bench if the bloom-filter,
// block-cache, or write-stall counters stayed zero — the CI guard that
// the instrumentation stays wired through the engine.
int RunTelemetryWorkload(const bench::ObsExportFlags& obs_flags) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));

  fpga::EngineConfig config;
  config.num_inputs = 9;
  config.input_width = 8;
  config.value_width = 8;
  host::FcaeDevice device(config);
  host::DeviceHealthMonitor health;
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &health;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  obs::MetricsRegistry registry;
  std::unique_ptr<const FilterPolicy> filter(NewBloomFilterPolicy(10));
  std::unique_ptr<Cache> block_cache(NewLRUCache(64 * 1024));

  Options options;
  options.env = env.get();
  options.create_if_missing = true;
  options.write_buffer_size = 256 * 1024;
  options.compaction_executor = &executor;
  options.metrics_registry = &registry;
  options.filter_policy = filter.get();
  options.block_cache = block_cache.get();
  // Low stall triggers so the mixed load crosses the slowdown (and
  // ideally the stop) threshold at least once — the self-check below
  // wants nonzero stall ticks.
  options.l0_slowdown_writes_trigger = 2;
  options.l0_stop_writes_trigger = 6;

  obs::SetPerfLevel(obs::PerfLevel::kEnableTime);
  obs::GetPerfContext()->Reset();
  obs::GetIOStats()->Reset();

  const std::string dbname = "/bench_micro_telemetry";
  DestroyDB(dbname, options).IgnoreError();  // fresh mem env
  DB* raw = nullptr;
  Status s = DB::Open(options, dbname, &raw);
  if (!s.ok()) {
    std::fprintf(stderr, "telemetry workload open: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw);

  workload::KeyFormatter keys(16);
  workload::ValueGenerator values(301);
  Random rnd(42);
  WriteOptions wo;
  ReadOptions ro;
  std::string value;
  for (int i = 0; i < 20000; i++) {
    s = db->Put(wo, keys.Format(rnd.Uniform(20000)), values.Generate(100));
    if (!s.ok()) {
      std::fprintf(stderr, "telemetry workload put: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    if (i % 16 == 0) {
      // Point reads across the whole key space: roughly half probe
      // written keys (bloom hits, block reads), the rest miss entirely
      // or hit only the filter (bloom negatives).
      db->Get(ro, keys.Format(rnd.Uniform(40000)), &value).IgnoreError();
    }
    if (i % 64 == 0) {
      db->Delete(wo, keys.Format(rnd.Uniform(20000))).IgnoreError();
    }
  }
  db->CompactRange(nullptr, nullptr);
  for (int i = 0; i < 2000; i++) {
    db->Get(ro, keys.Format(rnd.Uniform(40000)), &value).IgnoreError();
  }
  {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    int scanned = 0;
    for (it->SeekToFirst(); it->Valid() && scanned < 1000; it->Next()) {
      scanned++;
    }
  }

  const obs::PerfContext* perf = obs::GetPerfContext();
  std::printf("telemetry perf_context: %s\n", perf->ToString().c_str());
  std::printf("telemetry io_stats: %s\n",
              obs::GetIOStats()->ToString().c_str());
  bool ok = true;
  if (perf->bloom_filter_hits + perf->bloom_filter_negatives == 0) {
    std::fprintf(stderr, "telemetry: bloom filter ticks are zero\n");
    ok = false;
  }
  if (perf->block_cache_hits + perf->block_cache_misses == 0) {
    std::fprintf(stderr, "telemetry: block cache ticks are zero\n");
    ok = false;
  }
  if (perf->write_delays + perf->write_stops == 0) {
    std::fprintf(stderr, "telemetry: write stall ticks are zero\n");
    ok = false;
  }
  obs::SetPerfLevel(obs::PerfLevel::kDisable);

  std::string json;
  if (!obs_flags.metrics_out.empty()) {
    ok = db->GetProperty("fcae.metrics", &json) &&
         bench::WriteTextFile(obs_flags.metrics_out, json) && ok;
  }
  if (!obs_flags.metrics_prom_out.empty()) {
    // Pump derived counters into the registry first (GetProperty does
    // this as a side effect), then render the same registry as
    // Prometheus text.
    ok = db->GetProperty("fcae.metrics", &json) && ok;
    ok = bench::WriteTextFile(obs_flags.metrics_prom_out,
                              registry.ExportPrometheus()) &&
         ok;
  }
  if (!obs_flags.trace_out.empty()) {
    ok = db->GetProperty("fcae.trace", &json) &&
         bench::WriteTextFile(obs_flags.trace_out, json) && ok;
  }
  return ok ? 0 : 1;
}

// Tail latency over a scratch vector of per-op microseconds (the vector
// is reordered in place).
double PercentileMicros(std::vector<uint64_t>* latencies, double pct) {
  if (latencies->empty()) return 0;
  const size_t idx =
      static_cast<size_t>(pct * static_cast<double>(latencies->size() - 1));
  std::nth_element(latencies->begin(), latencies->begin() + idx,
                   latencies->end());
  return static_cast<double>((*latencies)[idx]);
}

// One timed run of the perf-gate workload under a given scheduler
// configuration. Returns false on any DB error.
struct PerfRunResult {
  double write_mbps = 0;       // Sustained: puts blocked on stalls included.
  double compaction_mbps = 0;  // Compaction bytes moved per wall second.
  double write_p99_micros = 0;  // Per-Put tail: delays + stalls surface here.
  uint64_t user_bytes = 0;
  uint64_t stall_micros = 0;   // Writer time lost to stalls + slowdowns.
  uint64_t stall_memtable_micros = 0;
  uint64_t stall_l0_micros = 0;
  uint64_t slowdown_micros = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t reopen_micros = 0;  // Close + recover over the final state.
};

bool RunPerfWorkload(int threads, int subcompactions, PerfRunResult* result) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));

  fpga::EngineConfig config;
  config.num_inputs = 9;
  config.input_width = 8;
  config.value_width = 8;
  host::FcaeDevice device(config);
  host::DeviceHealthMonitor health;
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &health;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  obs::MetricsRegistry registry;
  Options options;
  options.env = env.get();
  options.create_if_missing = true;
  options.write_buffer_size = 256 * 1024;
  options.compaction_executor = &executor;
  options.compaction_threads = threads;
  options.max_subcompactions = subcompactions;
  options.metrics_registry = &registry;

  const std::string dbname = "/bench_micro_perf";
  DestroyDB(dbname, options).IgnoreError();  // fresh mem env
  DB* raw = nullptr;
  if (!DB::Open(options, dbname, &raw).ok()) return false;
  std::unique_ptr<DB> db(raw);

  workload::KeyFormatter keys(16);
  workload::ValueGenerator values(301);
  Random rnd(42);
  WriteOptions wo;
  // Large enough that L1 grows a multi-file grid: sub-compaction
  // sharding only engages once L0->L1 jobs have >= 2 parent files.
  constexpr int kWrites = 100000;
  constexpr int kValueLen = 100;

  Env* clock = Env::Default();
  std::vector<uint64_t> latencies;
  latencies.reserve(kWrites);
  const uint64_t write_start = clock->NowMicros();
  uint64_t put_start = write_start;
  for (int i = 0; i < kWrites; i++) {
    if (!db->Put(wo, keys.Format(rnd.Uniform(kWrites)), values.Generate(kValueLen))
             .ok()) {
      return false;
    }
    const uint64_t put_end = clock->NowMicros();
    latencies.push_back(put_end - put_start);
    put_start = put_end;
  }
  const uint64_t write_end = clock->NowMicros();
  // Drain: every queued job must install so compaction counters are
  // comparable across scheduler configurations.
  db->CompactRange(nullptr, nullptr);
  const uint64_t drain_end = clock->NowMicros();

  result->write_p99_micros = PercentileMicros(&latencies, 0.99);
  result->user_bytes = static_cast<uint64_t>(kWrites) * (16 + kValueLen);
  result->stall_memtable_micros =
      registry.counter("db.write.stall_memtable_micros")->value();
  result->stall_l0_micros =
      registry.counter("db.write.stall_l0_micros")->value();
  result->slowdown_micros =
      registry.counter("db.write.slowdown_micros")->value();
  result->stall_micros = result->stall_memtable_micros +
                         result->stall_l0_micros + result->slowdown_micros;
  result->flushes = registry.counter("db.flush.count")->value();
  result->compactions = registry.counter("db.compaction.count")->value();
  result->compaction_bytes_written =
      registry.counter("db.compaction.bytes_written")->value();
  const uint64_t compaction_bytes_moved =
      registry.counter("db.compaction.bytes_read")->value() +
      result->compaction_bytes_written;
  const double write_secs = (write_end - write_start) * 1e-6;
  const double total_secs = (drain_end - write_start) * 1e-6;
  if (write_secs > 0) {
    result->write_mbps = result->user_bytes / write_secs / (1 << 20);
  }
  if (total_secs > 0) {
    result->compaction_mbps = compaction_bytes_moved / total_secs / (1 << 20);
  }

  // Close and reopen over the state the workload built: recovery cost =
  // MANIFEST replay + WAL redo. recovery.micros accumulates across every
  // open on this registry, so the reopen alone is the delta.
  const uint64_t open_micros_before =
      registry.counter("recovery.micros")->value();
  db.reset();
  options.create_if_missing = false;
  raw = nullptr;
  if (!DB::Open(options, dbname, &raw).ok()) return false;
  db.reset(raw);
  result->reopen_micros =
      registry.counter("recovery.micros")->value() - open_micros_before;
  return true;
}

// Overload soak for the graceful-degradation gate (DESIGN.md §10).
// Phase 1 measures the backpressure-paced sustainable ingest rate with
// the offload executor. Phase 2 replays on a fresh DB with a client
// that insists on twice that rate and a background-I/O budget enforced
// by the rate limiter (compaction on the low-priority lane, flushes on
// the high-priority one). Graceful degradation means: the controller's
// delay ramp absorbs the excess (delayed_writes > 0), writes are never
// hard-stopped, compaction I/O gets throttled rather than saturating
// the device, and per-Put p99 stays bounded by the controller's
// maximum delay instead of the unbounded stall spikes of the classic
// stop-the-world behaviour.
struct OverloadRunResult {
  double sustainable_mbps = 0;
  double achieved_mbps = 0;     // Ingest under 2x-overload attempts.
  double write_p99_micros = 0;
  uint64_t hard_stops = 0;      // wc.stopped_writes: must stay 0.
  uint64_t delayed_writes = 0;  // wc.delayed_writes: must be > 0.
  uint64_t delay_micros = 0;
  uint64_t throttled_bytes = 0;  // ratelimiter.throttled_bytes.
  std::string metrics_json;      // fcae.metrics export of the soak run.
};

bool RunOverloadWorkload(OverloadRunResult* result) {
  constexpr int kWrites = 60000;
  constexpr int kValueLen = 100;
  const double op_bytes = 16 + kValueLen;
  Env* clock = Env::Default();

  workload::KeyFormatter keys(16);
  workload::ValueGenerator values(301);
  WriteOptions wo;

  fpga::EngineConfig config;
  config.num_inputs = 9;
  config.input_width = 8;
  config.value_width = 8;
  host::FcaeDevice device(config);
  host::DeviceHealthMonitor health;
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &health;

  // Phase 1: sustainable rate, full speed, no I/O budget.
  double sustainable_bps = 0;
  {
    std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
    host::FcaeCompactionExecutor executor(&device, exec_options);
    Options options;
    options.env = env.get();
    options.create_if_missing = true;
    options.write_buffer_size = 256 * 1024;
    options.compaction_executor = &executor;
    options.compaction_threads = 4;
    options.max_subcompactions = 4;

    const std::string dbname = "/bench_micro_overload_probe";
    DestroyDB(dbname, options).IgnoreError();  // fresh mem env
    DB* raw = nullptr;
    if (!DB::Open(options, dbname, &raw).ok()) return false;
    std::unique_ptr<DB> db(raw);

    Random rnd(42);
    const uint64_t start = clock->NowMicros();
    for (int i = 0; i < kWrites; i++) {
      if (!db->Put(wo, keys.Format(rnd.Uniform(kWrites)),
                   values.Generate(kValueLen))
               .ok()) {
        return false;
      }
    }
    const double secs = (clock->NowMicros() - start) * 1e-6;
    if (secs <= 0) return false;
    sustainable_bps = kWrites * op_bytes / secs;
    result->sustainable_mbps = sustainable_bps / (1 << 20);
  }

  // Phase 2: 2x-overload soak under a background-I/O budget. The budget
  // is sized so steady-state compaction demand (write amplification
  // times the ingest rate) exceeds it and the limiter demonstrably
  // throttles; the floor keeps a pathologically slow probe from
  // strangling the run outright.
  {
    std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
    host::FcaeCompactionExecutor executor(&device, exec_options);
    obs::MetricsRegistry registry;
    Options options;
    options.env = env.get();
    options.create_if_missing = true;
    options.write_buffer_size = 256 * 1024;
    options.compaction_executor = &executor;
    options.compaction_threads = 4;
    options.max_subcompactions = 4;
    options.metrics_registry = &registry;
    options.rate_limit_bytes_per_sec = static_cast<uint64_t>(
        std::max(4.0 * sustainable_bps, 4.0 * 1024 * 1024));

    const std::string dbname = "/bench_micro_overload_soak";
    DestroyDB(dbname, options).IgnoreError();  // fresh mem env
    DB* raw = nullptr;
    if (!DB::Open(options, dbname, &raw).ok()) return false;
    std::unique_ptr<DB> db(raw);

    Random rnd(43);
    std::vector<uint64_t> latencies;
    latencies.reserve(kWrites);
    const double target_bps = 2.0 * sustainable_bps;
    const uint64_t start = clock->NowMicros();
    uint64_t put_start = start;
    for (int i = 0; i < kWrites; i++) {
      // Pace the client at twice the sustainable rate: sleep only when
      // ahead of that schedule (under real overload the backlog keeps
      // the client permanently behind it, i.e. writing flat out).
      const uint64_t due =
          start + static_cast<uint64_t>(i * op_bytes * 1e6 / target_bps);
      const uint64_t now = clock->NowMicros();
      if (now < due) clock->SleepForMicroseconds(static_cast<int>(due - now));
      if (!db->Put(wo, keys.Format(rnd.Uniform(kWrites)),
                   values.Generate(kValueLen))
               .ok()) {
        return false;
      }
      const uint64_t put_end = clock->NowMicros();
      latencies.push_back(put_end - std::max(put_start, due));
      put_start = put_end;
    }
    const double secs = (clock->NowMicros() - start) * 1e-6;
    if (secs > 0) {
      result->achieved_mbps = kWrites * op_bytes / secs / (1 << 20);
    }
    result->write_p99_micros = PercentileMicros(&latencies, 0.99);
    result->hard_stops = registry.counter("wc.stopped_writes")->value();
    result->delayed_writes = registry.counter("wc.delayed_writes")->value();
    result->delay_micros = registry.counter("wc.delay_micros")->value();
    result->throttled_bytes =
        registry.counter("ratelimiter.throttled_bytes")->value();
    if (!db->GetProperty("fcae.metrics", &result->metrics_json)) return false;
  }
  return true;
}

// Multi-card offload gate: the same eight staged sub-compaction shards
// (two interleaved runs each) replayed through a one-card and a
// two-card DeviceSet with four concurrent workers — the shape a
// sharded L0->L1 job takes after db_impl splits it. Throughput is the
// modeled makespan of the busiest card (see DeviceFanoutResult), so
// the 2-over-1 ratio gates deterministically: the second card must
// absorb half the kernels, and the four-deep arrival queue must keep
// the per-card DMA pipeline engaged (nonzero overlap counter).
bool RunOffloadWorkload(bench::DeviceFanoutResult* c1,
                        bench::DeviceFanoutResult* c2) {
  fpga::EngineConfig config;
  config.num_inputs = 9;
  config.input_width = 8;
  config.value_width = 8;

  constexpr int kShards = 8;
  constexpr int kRunsPerShard = 2;
  constexpr uint64_t kRecordsPerRun = 4000;
  bench::StagedInputBuilder builder;
  std::vector<fpga::DeviceInput> inputs(kShards * kRunsPerShard);
  std::vector<std::vector<const fpga::DeviceInput*>> shards(kShards);
  for (int s = 0; s < kShards; s++) {
    for (int r = 0; r < kRunsPerShard; r++) {
      fpga::DeviceInput* input = &inputs[s * kRunsPerShard + r];
      // Runs within a shard interleave (stride 2); shards own disjoint
      // key ranges, like the bounds-sliced shards of one compaction.
      if (!builder
               .Build(s * kRunsPerShard + r, s * 100000 + r, kRecordsPerRun,
                      kRunsPerShard, 16, 100, input)
               .ok()) {
        return false;
      }
      shards[s].push_back(input);
    }
  }

  {
    host::DeviceSet one(config, /*num_cards=*/1);
    *c1 = bench::RunDeviceFanout(&one, shards, /*threads=*/4);
  }
  {
    host::DeviceSet two(config, /*num_cards=*/2);
    *c2 = bench::RunDeviceFanout(&two, shards, /*threads=*/4);
  }
  return c1->ok && c2->ok;
}

// The CI perf gate: the same workload on one worker vs. four workers
// with sub-compaction sharding. BENCH_micro_perf.json carries absolute
// throughputs (trajectory / loose gate) and the t4/t1 ratio (tight
// gate: parallel must not regress below single-thread).
int RunPerfGate() {
  PerfRunResult t1, t4;
  if (!RunPerfWorkload(/*threads=*/1, /*subcompactions=*/1, &t1) ||
      !RunPerfWorkload(/*threads=*/4, /*subcompactions=*/4, &t4)) {
    std::fprintf(stderr, "perf workload failed\n");
    return 1;
  }
  OverloadRunResult overload;
  if (!RunOverloadWorkload(&overload)) {
    std::fprintf(stderr, "overload workload failed\n");
    return 1;
  }
  bench::DeviceFanoutResult c1, c2;
  if (!RunOffloadWorkload(&c1, &c2)) {
    std::fprintf(stderr, "offload workload failed\n");
    return 1;
  }
  // The soak run's metrics export doubles as the overload-protection
  // contract check: CI validates it against bench/metrics_schema.json,
  // proving the wc.*/ratelimiter.* instruments are live under load.
  if (!bench::WriteTextFile("BENCH_micro_perf_overload_metrics.json",
                            overload.metrics_json)) {
    return 1;
  }

  bench::JsonReport report("micro_perf");
  report.Add("perf.t1.write_mbps", t1.write_mbps);
  report.Add("perf.t1.compaction_mbps", t1.compaction_mbps);
  report.Add("perf.t4.write_mbps", t4.write_mbps);
  report.Add("perf.t4.compaction_mbps", t4.compaction_mbps);
  report.Add("perf.t4_over_t1_write",
             t1.write_mbps > 0 ? t4.write_mbps / t1.write_mbps : 0.0);
  report.Add("perf.write_p99_micros", t4.write_p99_micros);
  report.Add("perf.t1.write_p99_micros", t1.write_p99_micros);
  report.Add("perf.stall_seconds_t4", t4.stall_micros * 1e-6);
  report.Add("perf.overload.sustainable_mbps", overload.sustainable_mbps);
  report.Add("perf.overload.achieved_mbps", overload.achieved_mbps);
  report.Add("perf.overload.write_p99_micros", overload.write_p99_micros);
  report.Add("perf.overload.hard_stops", overload.hard_stops);
  report.Add("perf.overload.delayed_writes", overload.delayed_writes);
  report.Add("perf.overload.delay_micros", overload.delay_micros);
  report.Add("perf.overload.throttled_bytes", overload.throttled_bytes);
  report.Add("perf.offload.c1_mbps", c1.modeled_mbps);
  report.Add("perf.offload.c2_mbps", c2.modeled_mbps);
  report.Add("perf.offload.c2_over_c1",
             c1.modeled_mbps > 0 ? c2.modeled_mbps / c1.modeled_mbps : 0.0);
  report.Add("perf.offload.pipeline_overlap_micros",
             c2.pipeline_overlap_micros);
  report.Add("perf.offload.pipelined_jobs", c2.pipelined_jobs);
  report.Add("perf.offload.bus_wait_micros", c2.bus_wait_micros);
  report.Add("perf.offload.kernels", c2.kernels_launched);
  report.Add("work.user_bytes", t4.user_bytes);
  report.Add("work.t1.stall_micros", t1.stall_micros);
  report.Add("work.t4.stall_micros", t4.stall_micros);
  report.Add("work.t1.stall_memtable_micros", t1.stall_memtable_micros);
  report.Add("work.t1.stall_l0_micros", t1.stall_l0_micros);
  report.Add("work.t1.slowdown_micros", t1.slowdown_micros);
  report.Add("work.t4.stall_memtable_micros", t4.stall_memtable_micros);
  report.Add("work.t4.stall_l0_micros", t4.stall_l0_micros);
  report.Add("work.t4.slowdown_micros", t4.slowdown_micros);
  report.Add("work.t1.flushes", t1.flushes);
  report.Add("work.t1.compactions", t1.compactions);
  report.Add("work.t1.compaction_bytes_written", t1.compaction_bytes_written);
  report.Add("work.t4.flushes", t4.flushes);
  report.Add("work.t4.compactions", t4.compactions);
  report.Add("work.t4.compaction_bytes_written", t4.compaction_bytes_written);
  report.Add("recovery.t1.reopen_micros", t1.reopen_micros);
  report.Add("recovery.t4.reopen_micros", t4.reopen_micros);
  if (!report.WriteFile()) return 1;

  std::printf("perf: t1 %.1f MB/s, t4 %.1f MB/s (ratio %.3f)\n", t1.write_mbps,
              t4.write_mbps,
              t1.write_mbps > 0 ? t4.write_mbps / t1.write_mbps : 0.0);
  std::printf(
      "overload: sustainable %.1f MB/s, 2x soak achieved %.1f MB/s, "
      "p99 %.0f us, %llu delayed, %llu hard stops, %llu throttled bytes\n",
      overload.sustainable_mbps, overload.achieved_mbps,
      overload.write_p99_micros,
      (unsigned long long)overload.delayed_writes,
      (unsigned long long)overload.hard_stops,
      (unsigned long long)overload.throttled_bytes);
  std::printf(
      "offload: 1 card %.1f MB/s, 2 cards %.1f MB/s (ratio %.3f), "
      "overlap %.0f us, bus wait %.0f us\n",
      c1.modeled_mbps, c2.modeled_mbps,
      c1.modeled_mbps > 0 ? c2.modeled_mbps / c1.modeled_mbps : 0.0,
      c2.pipeline_overlap_micros, c2.bus_wait_micros);
  return 0;
}

}  // namespace
}  // namespace fcae

int main(int argc, char** argv) {
  fcae::bench::ObsExportFlags obs_flags;
  obs_flags.Consume(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!obs_flags.metrics_out.empty() || !obs_flags.metrics_prom_out.empty() ||
      !obs_flags.trace_out.empty()) {
    int rc = fcae::RunTelemetryWorkload(obs_flags);
    if (rc != 0) return rc;
  }
  if (obs_flags.perf) {
    return fcae::RunPerfGate();
  }
  return 0;
}
