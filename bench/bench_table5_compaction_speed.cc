// Reproduces Table V and Fig. 9: compaction speed of the CPU baseline
// vs the 2-input engine across value lengths and value-path widths V,
// plus the resulting acceleration ratios.
//
// The CPU column is measured for real on this host (single-threaded
// merge over memory-resident images, Snappy decode/encode included);
// the FCAE columns come from the cycle-level engine simulation at
// 200 MHz. Absolute magnitudes differ from the paper's testbed (their
// CPU column is 5-15 MB/s; a modern host is faster, and their silicon
// carries overheads Table III idealizes away) — the trends to check are:
// both speeds grow with value length, FCAE grows faster, and larger V
// helps long values (Section VII-B1).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "fpga/compaction_engine.h"
#include "host/cpu_compactor.h"

namespace fcae {
namespace bench {
namespace {

constexpr uint64_t kInputBytesPerRun = 4ull << 20;  // 2 x 4 MB inputs.
constexpr uint64_t kKeyLen = 16;
constexpr uint64_t kNoSnapshot = 1ull << 40;

void Run() {
  PrintHeader("Table V: compaction speed (MB/s), 2-input, key 16 B");
  std::printf("%8s %10s %8s %8s %8s %8s\n", "L_value", "CPU(meas)", "V=8",
              "V=16", "V=32", "V=64");

  const int value_lengths[] = {64, 128, 256, 512, 1024, 2048};
  const int widths[] = {8, 16, 32, 64};
  const double paper_cpu[] = {5.3, 6.9, 9.0, 12.2, 14.8, 13.3};
  const double paper_fcae[4][6] = {
      {178.5, 260.1, 343.9, 446.9, 448.5, 506.3},
      {164.5, 312.1, 451.6, 627.9, 739.5, 709.0},
      {181.8, 311.8, 510.7, 672.8, 896.7, 1077.4},
      {175.8, 291.7, 524.9, 745.4, 1026.3, 1205.6}};

  double ratios[4][6];

  for (int li = 0; li < 6; li++) {
    const int value_len = value_lengths[li];
    const uint64_t records =
        RecordsFor(kInputBytesPerRun, kKeyLen, value_len);

    // Consecutive key ranges: the merge drains one input at a time, so a
    // single decoder lane must sustain the full record rate — the regime
    // in which Table III's V-dependence is visible. (With interleaved
    // ranges the N parallel decode lanes hide the value-read time and
    // the Comparer bounds everything.)
    StagedInputBuilder builder;
    fpga::DeviceInput in_a, in_b;
    Status s = builder.Build(0, 0, records, 1, kKeyLen, value_len, &in_a);
    if (s.ok()) {
      s = builder.Build(1, records, records, 1, kKeyLen, value_len, &in_b);
    }
    if (!s.ok()) {
      std::fprintf(stderr, "staging failed: %s\n", s.ToString().c_str());
      return;
    }

    // CPU baseline: best of 3 runs.
    host::CpuCompactorOptions cpu_options;
    cpu_options.smallest_snapshot = kNoSnapshot;
    cpu_options.drop_deletions = true;
    double cpu_speed = 0;
    for (int rep = 0; rep < 3; rep++) {
      fpga::DeviceOutput out;
      host::CpuCompactStats stats;
      s = host::CpuCompactImages({&in_a, &in_b}, cpu_options, &out, &stats);
      if (!s.ok()) {
        std::fprintf(stderr, "cpu merge failed: %s\n", s.ToString().c_str());
        return;
      }
      cpu_speed = std::max(cpu_speed, stats.SpeedMBps());
    }
    std::printf("%8d %10.1f", value_len, cpu_speed);
    for (int wi = 0; wi < 4; wi++) {
      fpga::EngineConfig config;
      config.num_inputs = 2;
      config.value_width = widths[wi];
      fpga::DeviceOutput out;
      fpga::CompactionEngine engine(config, {&in_a, &in_b}, kNoSnapshot,
                                    true, &out);
      s = engine.Run();
      if (!s.ok()) {
        std::fprintf(stderr, "engine failed: %s\n", s.ToString().c_str());
        return;
      }
      const double speed = engine.stats().CompactionSpeedMBps(config);
      ratios[wi][li] = speed / cpu_speed;
      std::printf(" %8.1f", speed);
    }
    std::printf("\n");
  }

  std::printf("\npaper:   (CPU)  (V=8)  (V=16)  (V=32)  (V=64)\n");
  for (int li = 0; li < 6; li++) {
    std::printf("%8d %6.1f %7.1f %7.1f %7.1f %7.1f\n", value_lengths[li],
                paper_cpu[li], paper_fcae[0][li], paper_fcae[1][li],
                paper_fcae[2][li], paper_fcae[3][li]);
  }

  PrintHeader("Fig. 9: acceleration ratio (FCAE / CPU)");
  std::printf("%8s %8s %8s %8s %8s   (paper V=16 ratio)\n", "L_value", "V=8",
              "V=16", "V=32", "V=64");
  for (int li = 0; li < 6; li++) {
    std::printf("%8d %8.1f %8.1f %8.1f %8.1f   %6.1f\n", value_lengths[li],
                ratios[0][li], ratios[1][li], ratios[2][li], ratios[3][li],
                paper_fcae[1][li] / paper_cpu[li]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace fcae

int main() {
  fcae::bench::Run();
  return 0;
}
