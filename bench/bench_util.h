#ifndef FCAE_BENCH_BENCH_UTIL_H_
#define FCAE_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction benches: staged-input builders and
// table formatting. Every bench prints the measured series side by side
// with the paper's published values so EXPERIMENTS.md can be regenerated
// by running the binaries.

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fpga/device_memory.h"
#include "host/sstable_stager.h"
#include "lsm/dbformat.h"
#include "table/table_builder.h"
#include "util/env.h"
#include "util/mem_env.h"
#include "workload/key_generator.h"

namespace fcae {
namespace bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintRow(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

/// Builds one staged device input: a sorted run of `num_records`
/// internal-key records with the given key/value lengths. Keys are
/// spaced by `stride` starting at `start` so multiple runs interleave.
class StagedInputBuilder {
 public:
  StagedInputBuilder()
      : env_(NewMemEnv(Env::Default())),
        icmp_(BytewiseComparator()),
        values_(12345) {}

  Status Build(int input_no, uint64_t start, uint64_t num_records,
               uint64_t stride, size_t key_len, size_t value_len,
               fpga::DeviceInput* input) {
    workload::KeyFormatter keys(key_len);
    Options options;
    options.env = env_.get();
    options.comparator = &icmp_;

    const std::string fname = "/bench_input" + std::to_string(input_no) +
                              "_" + std::to_string(serial_++) + ".ldb";
    WritableFile* file;
    Status s = env_->NewWritableFile(fname, &file);
    if (!s.ok()) return s;
    {
      TableBuilder builder(options, file);
      for (uint64_t i = 0; i < num_records; i++) {
        std::string ikey;
        AppendInternalKey(
            &ikey, ParsedInternalKey(keys.Format(start + i * stride),
                                     1000 + i, kTypeValue));
        builder.Add(ikey, values_.Generate(value_len));
      }
      s = builder.Finish();
    }
    if (s.ok()) s = file->Close();
    delete file;
    if (!s.ok()) return s;

    host::SstableStager stager(env_.get());
    return stager.AddTable(fname, input);
  }

  Env* env() { return env_.get(); }

 private:
  std::unique_ptr<Env> env_;
  InternalKeyComparator icmp_;
  workload::ValueGenerator values_;
  int serial_ = 0;
};

/// Records per input so the staged data totals roughly `total_bytes`.
inline uint64_t RecordsFor(uint64_t total_bytes, size_t key_len,
                           size_t value_len) {
  return total_bytes / (key_len + 8 + value_len);
}

}  // namespace bench
}  // namespace fcae

#endif  // FCAE_BENCH_BENCH_UTIL_H_
