#ifndef FCAE_BENCH_BENCH_UTIL_H_
#define FCAE_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction benches: staged-input builders and
// table formatting. Every bench prints the measured series side by side
// with the paper's published values so EXPERIMENTS.md can be regenerated
// by running the binaries.

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fpga/device_memory.h"
#include "host/device_set.h"
#include "host/sstable_stager.h"
#include "lsm/compaction_executor.h"
#include "lsm/dbformat.h"
#include "table/table_builder.h"
#include "util/env.h"
#include "util/mem_env.h"
#include "workload/key_generator.h"

namespace fcae {
namespace bench {

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintRow(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vfprintf(stdout, format, args);
  va_end(args);
  std::printf("\n");
}

/// Builds one staged device input: a sorted run of `num_records`
/// internal-key records with the given key/value lengths. Keys are
/// spaced by `stride` starting at `start` so multiple runs interleave.
class StagedInputBuilder {
 public:
  StagedInputBuilder()
      : env_(NewMemEnv(Env::Default())),
        icmp_(BytewiseComparator()),
        values_(12345) {}

  Status Build(int input_no, uint64_t start, uint64_t num_records,
               uint64_t stride, size_t key_len, size_t value_len,
               fpga::DeviceInput* input) {
    workload::KeyFormatter keys(key_len);
    Options options;
    options.env = env_.get();
    options.comparator = &icmp_;

    const std::string fname = "/bench_input" + std::to_string(input_no) +
                              "_" + std::to_string(serial_++) + ".ldb";
    WritableFile* file;
    Status s = env_->NewWritableFile(fname, &file);
    if (!s.ok()) return s;
    {
      TableBuilder builder(options, file);
      for (uint64_t i = 0; i < num_records; i++) {
        std::string ikey;
        AppendInternalKey(
            &ikey, ParsedInternalKey(keys.Format(start + i * stride),
                                     1000 + i, kTypeValue));
        builder.Add(ikey, values_.Generate(value_len));
      }
      s = builder.Finish();
    }
    if (s.ok()) s = file->Close();
    delete file;
    if (!s.ok()) return s;

    host::SstableStager stager(env_.get());
    return stager.AddTable(fname, input);
  }

  Env* env() { return env_.get(); }

 private:
  std::unique_ptr<Env> env_;
  InternalKeyComparator icmp_;
  workload::ValueGenerator values_;
  int serial_ = 0;
};

/// Records per input so the staged data totals roughly `total_bytes`.
inline uint64_t RecordsFor(uint64_t total_bytes, size_t key_len,
                           size_t value_len) {
  return total_bytes / (key_len + 8 + value_len);
}

/// One multi-card fan-out run (see RunDeviceFanout). Throughput is
/// computed over the *modeled* makespan — the busiest card's serialized
/// occupancy, kernel + DMA - pipeline overlap + bus waits — so the
/// number is deterministic and survives slow or noisy CI hosts; the
/// wall clock is reported alongside for reference only.
struct DeviceFanoutResult {
  bool ok = false;
  double wall_micros = 0;
  double makespan_micros = 0;  // Busiest card's modeled occupancy.
  double modeled_mbps = 0;     // Input bytes over the modeled makespan.
  uint64_t input_bytes = 0;
  uint64_t kernels_launched = 0;
  uint64_t pipelined_jobs = 0;          // Back-to-back arrivals.
  double pipeline_overlap_micros = 0;   // DMA hidden behind kernels.
  double bus_wait_micros = 0;           // Cross-card burst collisions.
  uint64_t bus_contended_bursts = 0;
};

/// Drains `shards` (each one sub-compaction: the staged runs of one
/// merge job) through a *fresh* DeviceSet with `threads` concurrent
/// workers. Placement uses the executor's own calls — PickCard() plus
/// the queued-byte accounting — so bench_micro's offload gate and the
/// scheduler ablation measure the policy the storage engine actually
/// runs. The set must be freshly constructed: per-card makespans are
/// read from the devices' lifetime counters.
inline DeviceFanoutResult RunDeviceFanout(
    host::DeviceSet* devices,
    const std::vector<std::vector<const fpga::DeviceInput*>>& shards,
    int threads) {
  DeviceFanoutResult result;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> input_bytes{0};

  Env* clock = Env::Default();
  const uint64_t start = clock->NowMicros();
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= shards.size() || failed.load()) return;
      uint64_t bytes = 0;
      for (const fpga::DeviceInput* in : shards[i]) bytes += in->TotalBytes();
      const int card = devices->PickCard();
      if (card < 0) {  // Every breaker denied: nothing to measure.
        failed.store(true);
        return;
      }
      devices->AddQueued(card, bytes);
      fpga::DeviceOutput output;
      host::DeviceRunStats stats;
      // No snapshots held: every obsolete record is droppable.
      const Status s = devices->device(card)->ExecuteCompaction(
          shards[i], kMaxSequenceNumber, /*drop_deletions=*/true, &output,
          &stats);
      devices->SubQueued(card, bytes);
      if (!s.ok()) {
        failed.store(true);
        return;
      }
      input_bytes.fetch_add(bytes);
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; t++) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  result.ok = !failed.load();
  result.wall_micros = static_cast<double>(clock->NowMicros() - start);
  result.input_bytes = input_bytes.load();
  for (int card = 0; card < devices->num_cards(); card++) {
    host::FcaeDevice* device = devices->device(card);
    const double occupancy =
        device->config().CyclesToMicros(device->total_kernel_cycles()) +
        device->total_pcie_micros() - device->total_dma_overlap_micros() +
        device->total_bus_wait_micros();
    if (occupancy > result.makespan_micros) {
      result.makespan_micros = occupancy;
    }
    result.kernels_launched += device->kernels_launched();
    result.pipelined_jobs += device->pipelined_jobs();
    result.pipeline_overlap_micros += device->total_dma_overlap_micros();
    result.bus_wait_micros += device->total_bus_wait_micros();
  }
  result.bus_contended_bursts = devices->bus()->contended_bursts();
  if (result.makespan_micros > 0) {
    result.modeled_mbps = static_cast<double>(result.input_bytes) /
                          result.makespan_micros * 1e6 / (1 << 20);
  }
  return result;
}

/// Telemetry-export flags shared by the bench binaries. Consume() strips
/// `--metrics_out=<path>`, `--metrics_prom_out=<path>`, and
/// `--trace_out=<path>` from argv so the remaining flags can be handed
/// to google-benchmark (which rejects options it does not know) or to a
/// bench's own parser. The bench then writes the `fcae.metrics` /
/// `fcae.trace` property JSON — and, for the prom flag, the Prometheus
/// text rendering of the same registry — to the requested paths at exit.
struct ObsExportFlags {
  std::string metrics_out;
  std::string metrics_prom_out;
  std::string trace_out;
  // --perf runs the instrumented DB workload once per scheduler config
  // (1 worker vs. 4 workers + sharding) and writes BENCH_micro_perf.json
  // with throughput and work counters; bench/check_regression.py gates
  // CI on it against bench/baseline.json.
  bool perf = false;

  void Consume(int* argc, char** argv) {
    int kept = 1;
    for (int i = 1; i < *argc; i++) {
      std::string arg = argv[i];
      if (arg.rfind("--metrics_out=", 0) == 0) {
        metrics_out = arg.substr(std::string("--metrics_out=").size());
      } else if (arg.rfind("--metrics_prom_out=", 0) == 0) {
        metrics_prom_out =
            arg.substr(std::string("--metrics_prom_out=").size());
      } else if (arg.rfind("--trace_out=", 0) == 0) {
        trace_out = arg.substr(std::string("--trace_out=").size());
      } else if (arg == "--perf") {
        perf = true;
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;
  }

  bool active() const {
    return !metrics_out.empty() || !metrics_prom_out.empty() ||
           !trace_out.empty() || perf;
  }
};

/// Writes `contents` to `path` on the real filesystem (bench artifacts
/// must survive the process even when the DB ran on a mem env).
inline bool WriteTextFile(const std::string& path,
                          const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Flat key/value JSON emitter for machine-readable bench artifacts.
/// Each bench that opts in writes `BENCH_<name>.json` next to its
/// stdout table so runs can be diffed without scraping text. Keys use
/// dotted prefixes ("tournament.device_faults") instead of nesting.
class JsonReport {
 public:
  explicit JsonReport(const std::string& bench_name) : name_(bench_name) {
    Add("bench", bench_name);
  }

  void Add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + Escape(value) + "\"");
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    entries_.emplace_back(key, buf);
  }
  void Add(const std::string& key, uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)value);
    entries_.emplace_back(key, buf);
  }
  void Add(const std::string& key, int64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", (long long)value);
    entries_.emplace_back(key, buf);
  }
  void Add(const std::string& key, int value) {
    Add(key, (int64_t)value);
  }

  /// Robustness counters from the fault-tolerant offload path. All of
  /// these stay at ~0 when the fault injector is off, so a nonzero
  /// reading in a BENCH_*.json flags unexpected retry/verify overhead.
  void AddRobustness(const std::string& prefix,
                     const CompactionExecStats& stats,
                     int64_t fallback_compactions) {
    Add(prefix + ".device_attempts", stats.device_attempts);
    Add(prefix + ".device_retries", stats.device_retries);
    Add(prefix + ".device_faults", stats.device_faults);
    Add(prefix + ".verify_failures", stats.verify_failures);
    Add(prefix + ".verify_micros", stats.verify_micros);
    Add(prefix + ".fallback_compactions", fallback_compactions);
  }

  /// Writes BENCH_<name>.json in the current directory.
  bool WriteFile() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < entries_.size(); i++) {
      std::fprintf(f, "  \"%s\": %s%s\n", Escape(entries_[i].first).c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Escape(const std::string& in) {
    std::string out;
    for (char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace bench
}  // namespace fcae

#endif  // FCAE_BENCH_BENCH_UTIL_H_
