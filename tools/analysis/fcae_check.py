#!/usr/bin/env python3
"""fcae_check: project-invariant static analysis for the fcae tree.

Generic linters (clang-tidy, -Wthread-safety) cannot check the invariants
this engine's test harnesses rely on. This checker enforces them as named
rules over the first-party sources discovered from compile_commands.json:

  raw-io              All filesystem / clock / sleep access goes through
                      fcae::Env. A raw libc (or std::chrono / std::this_thread)
                      call anywhere but env_posix.cc / crash_env.cc escapes
                      the crash model (CrashInjectionEnv cannot see the
                      write) and the fake-clock tests (HookedEnv cannot
                      advance time), silently voiding what they prove.

  crash-point         Every durability edge (WritableFile::Sync, Env::SyncDir,
                      Env::RenameFile) in the install-protocol files must be
                      bracketed by an FCAE_CRASH_POINT within
                      CRASH_POINT_WINDOW lines, so the crash matrix can cut
                      power at that edge.

  metrics-schema      Every metric name registered through fcae::obs must be
                      listed in bench/metrics_schema.json with the matching
                      instrument kind, and vice versa (both the dict format —
                      counters/gauges/histograms objects with descriptions —
                      and the legacy required_*/known_* lists are understood).
                      The schema's perf_context/io_stats lists must also
                      mirror the uint64_t fields of obs::PerfContext and
                      obs::IOStatsContext in src/obs/perf_context.h. Drift in
                      either direction used to surface only at bench-smoke
                      runtime; here it fails the build.

  guarded-const-cast  No field annotated GUARDED_BY may be reached through a
                      const_cast: casting away constness around a capability
                      annotation is exactly how code sneaks past
                      -Wthread-safety.

  unused-waiver       Every waiver comment must still suppress something;
                      stale waivers are errors so they cannot rot in place.

Waiver syntax (same line or the directly preceding comment line):

    // fcae-check: allow(<rule-name>): <reason>

The reason is mandatory. Dynamically-registered metric names that the
extractor cannot see can be declared explicitly:

    // fcae-check: declare-metric(counter): some.metric, other.metric

Usage:
    python3 tools/analysis/fcae_check.py [--build-dir build]
    python3 tools/analysis/fcae_check.py --selftest   # fixture self-test

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

# ---------------------------------------------------------------------------
# Rule configuration
# ---------------------------------------------------------------------------

RULES = ("raw-io", "crash-point", "metrics-schema", "guarded-const-cast",
         "unused-waiver")

# Files allowed to touch libc filesystem/clock/sleep primitives directly:
# the real Env and the crash-model Env that must mirror it.
RAW_IO_EXEMPT = {
    "src/util/env_posix.cc",
    "src/util/crash_env.cc",
}

# Banned free functions (libc filesystem, clock, and sleep). Matched as a
# whole identifier followed by `(`, not preceded by `.`, `->`, `::` scope
# of a project type, or an identifier character — so `file->Close()` or
# `set.erase(...)` never match, while `close(fd)` and `::close(fd)` do.
RAW_IO_BANNED_CALLS = {
    # filesystem
    "open", "openat", "creat", "fopen", "freopen", "fdopen", "tmpfile",
    "mkstemp", "mkostemp", "close", "fclose", "read", "write", "pread",
    "pwrite", "fread", "fwrite", "lseek", "fseek", "ftell", "rewind",
    "remove", "rename", "renameat", "unlink", "unlinkat", "mkdir",
    "mkdirat", "rmdir", "link", "symlink", "readlink", "realpath",
    "stat", "lstat", "fstat", "statvfs", "access", "faccessat",
    "truncate", "ftruncate", "opendir", "readdir", "closedir", "scandir",
    "fsync", "fdatasync", "syncfs", "flock", "fcntl", "chmod", "chown",
    "dup", "dup2", "getcwd",
    # clocks
    "time", "gettimeofday", "clock_gettime", "timespec_get", "localtime",
    "gmtime", "mktime", "ftime",
    # sleeps
    "sleep", "usleep", "nanosleep",
}

# Banned qualified patterns (substring match against comment-stripped code).
RAW_IO_BANNED_PATTERNS = (
    ("std::this_thread::sleep_for", "sleep outside Env"),
    ("std::this_thread::sleep_until", "sleep outside Env"),
    ("std::chrono::system_clock::now", "wall clock outside Env"),
    ("std::chrono::steady_clock::now", "wall clock outside Env"),
    ("std::chrono::high_resolution_clock::now", "wall clock outside Env"),
)

# Install-protocol files whose durability edges the crash matrix must be
# able to cut, and the maximum distance (in lines) from a durability call
# to its bracketing FCAE_CRASH_POINT.
CRASH_POINT_FILES = {
    "src/lsm/builder.cc",
    "src/lsm/db_impl.cc",
    "src/lsm/filename.cc",
    "src/lsm/version_set.cc",
}
CRASH_POINT_WINDOW = 15
DURABILITY_CALL_RE = re.compile(
    r"(?:->|\.)Sync\s*\(\s*\)|\bSyncDir\s*\(|\bRenameFile\s*\(")

# Metric registration: registry methods plus project forwarder helpers
# that pass their first literal argument through to the registry.
METRIC_METHODS = {"counter": "counter", "gauge": "gauge",
                  "histogram": "histogram"}
METRIC_FORWARDERS = {"peak": "gauge",        # host/offload_compaction.cc
                     "Count": "counter"}     # syssim/simulator.cc
METRICS_SCHEMA_PATH = "bench/metrics_schema.json"
# Legacy list-format keys; the current schema uses dict sections named
# "counters"/"gauges"/"histograms" mapping name -> {description, ...}.
SCHEMA_KEYS = {
    "counter": ("required_counters", "known_counters"),
    "gauge": ("required_gauges", "known_gauges"),
    "histogram": ("required_histograms", "known_histograms"),
}
SCHEMA_DICT_KEYS = {
    "counter": "counters",
    "gauge": "gauges",
    "histogram": "histograms",
}
# PerfContext/IOStatsContext fields the schema must mirror.
PERF_CONTEXT_HEADER = "src/obs/perf_context.h"
PERF_STRUCT_KEYS = {
    "PerfContext": "perf_context",
    "IOStatsContext": "io_stats",
}

WAIVER_RE = re.compile(r"fcae-check:\s*allow\(([a-z-]+)\)\s*:\s*(\S.*)")
DECLARE_METRIC_RE = re.compile(
    r"fcae-check:\s*declare-metric\((counter|gauge|histogram)\)\s*:\s*(\S.*)")


# ---------------------------------------------------------------------------
# C++ comment/string-aware line model
# ---------------------------------------------------------------------------

class SourceFile:
    """Splits a C++ file into per-line (code, comment) halves.

    String and char literal *contents* are blanked out of the code half so
    rule patterns never match inside them, but extractors that need string
    literals (metrics) can use `strings`, a list of (line, literal) pairs.
    """

    def __init__(self, path, text):
        self.path = path
        self.raw_lines = text.split("\n")
        n = len(self.raw_lines)
        self.code = [""] * n
        self.comment = [""] * n
        self.strings = []  # (1-based line, literal contents)
        self._scan(text)

    def _scan(self, text):
        code_parts = [[] for _ in self.raw_lines]
        comment_parts = [[] for _ in self.raw_lines]
        i, line = 0, 0
        length = len(text)
        state = "code"  # code | line_comment | block_comment | string | char
        literal = []
        literal_line = 0
        while i < length:
            c = text[i]
            nxt = text[i + 1] if i + 1 < length else ""
            if c == "\n":
                if state == "line_comment":
                    state = "code"
                line += 1
                i += 1
                continue
            if state == "code":
                if c == "/" and nxt == "/":
                    state = "line_comment"
                    i += 2
                    continue
                if c == "/" and nxt == "*":
                    state = "block_comment"
                    i += 2
                    continue
                if c == '"':
                    state = "string"
                    literal = []
                    literal_line = line + 1
                    code_parts[line].append('"')
                    i += 1
                    continue
                if c == "'":
                    state = "char"
                    code_parts[line].append("'")
                    i += 1
                    continue
                code_parts[line].append(c)
                i += 1
            elif state == "line_comment":
                comment_parts[line].append(c)
                i += 1
            elif state == "block_comment":
                if c == "*" and nxt == "/":
                    state = "code"
                    i += 2
                else:
                    comment_parts[line].append(c)
                    i += 1
            elif state == "string":
                if c == "\\":
                    literal.append(text[i:i + 2])
                    i += 2
                elif c == '"':
                    state = "code"
                    self.strings.append((literal_line, "".join(literal)))
                    code_parts[line].append('"')
                    i += 1
                else:
                    literal.append(c)
                    i += 1
            elif state == "char":
                if c == "\\":
                    i += 2
                elif c == "'":
                    state = "code"
                    code_parts[line].append("'")
                    i += 1
                else:
                    i += 1
        for idx in range(len(self.raw_lines)):
            self.code[idx] = "".join(code_parts[idx])
            self.comment[idx] = "".join(comment_parts[idx])


# ---------------------------------------------------------------------------
# Violations and waivers
# ---------------------------------------------------------------------------

class Violation:
    def __init__(self, rule, path, lineno, message):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


class WaiverSet:
    """Waivers per file: {lineno: {rule: used_flag}}. A waiver on line N
    covers violations on N and N+1 (comment directly above the code)."""

    def __init__(self, src):
        self.by_line = {}
        for idx, comment in enumerate(src.comment):
            m = WAIVER_RE.search(comment)
            if m:
                rule = m.group(1)
                self.by_line.setdefault(idx + 1, {})[rule] = False

    def covers(self, rule, lineno):
        for cand in (lineno, lineno - 1):
            rules = self.by_line.get(cand)
            if rules is not None and rule in rules:
                rules[rule] = True
                return True
        return False

    def unused(self):
        out = []
        for lineno, rules in sorted(self.by_line.items()):
            for rule, used in sorted(rules.items()):
                if not used:
                    out.append((lineno, rule))
        return out


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_CALL_RES = {
    name: re.compile(
        r"(?<![A-Za-z0-9_.>:])(?:::\s*)?\b" + name + r"\s*\(")
    for name in RAW_IO_BANNED_CALLS
}
# `(?<![...>:])` rejects `.name(`, `>name(` (from ->), `:name(` (from
# qualified project scopes like Env::RenameFile handled separately), and
# `xname(`; the optional leading `::` is then re-allowed explicitly.
_GLOBAL_NS_RES = {
    name: re.compile(r"::\s*" + name + r"\s*\(") for name in RAW_IO_BANNED_CALLS
}


def check_raw_io(relpath, src, waivers, violations):
    if relpath in RAW_IO_EXEMPT:
        return
    for idx, code in enumerate(src.code):
        lineno = idx + 1
        hits = []
        for name, cre in _CALL_RES.items():
            if name not in code:
                continue
            if cre.search(code) or _GLOBAL_NS_RES[name].search(code):
                hits.append(f"raw libc call '{name}()'")
        for pattern, what in RAW_IO_BANNED_PATTERNS:
            if pattern in code:
                hits.append(f"{what}: '{pattern}'")
        for msg in hits:
            if waivers.covers("raw-io", lineno):
                continue
            violations.append(Violation(
                "raw-io", relpath, lineno,
                f"{msg} — all I/O, clocks, and sleeps must go through "
                f"fcae::Env (crash model + fake-clock tests depend on it)"))


def check_crash_points(relpath, src, waivers, violations):
    if relpath not in CRASH_POINT_FILES:
        return
    point_lines = [idx + 1 for idx, code in enumerate(src.code)
                   if "FCAE_CRASH_POINT" in code]
    for idx, code in enumerate(src.code):
        if not DURABILITY_CALL_RE.search(code):
            continue
        lineno = idx + 1
        if any(abs(p - lineno) <= CRASH_POINT_WINDOW for p in point_lines):
            continue
        if waivers.covers("crash-point", lineno):
            continue
        violations.append(Violation(
            "crash-point", relpath, lineno,
            f"durability edge (Sync/SyncDir/RenameFile) without an "
            f"FCAE_CRASH_POINT within {CRASH_POINT_WINDOW} lines — the "
            f"crash matrix cannot cut power at this edge"))


def _extract_registered_metrics(relpath, src, declared, registrations):
    """Collects (name, kind, relpath, lineno) from registration contexts."""
    text_by_line = src.code
    methods = dict(METRIC_METHODS)
    methods.update(METRIC_FORWARDERS)

    # Literal (and ternary-literal) arguments: reconstruct per-line text
    # with string literals re-inserted, then match call shapes.
    lines_with_literals = {}
    for lineno, lit in src.strings:
        lines_with_literals.setdefault(lineno, []).append(lit)

    call_re = re.compile(
        r"\b(" + "|".join(re.escape(m) for m in methods) + r")\s*\(")
    for idx, code in enumerate(text_by_line):
        lineno = idx + 1
        for m in call_re.finditer(code):
            kind = methods[m.group(1)]
            # Does the argument list close on this line? Only an
            # unclosed call may continue onto the next line (a wrapped
            # ternary arm); a closed call must not steal the next
            # line's literal, which belongs to a different call.
            depth = 1
            for ch in code[m.end():]:
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        break
            lits = list(lines_with_literals.get(lineno, []))
            if depth > 0:
                lits += lines_with_literals.get(lineno + 1, [])
            for lit in lits:
                if _looks_like_metric_name(lit):
                    registrations.append((lit, kind, relpath, lineno))

    # Pre-registration loops: `for (const char* name : {"a", "b", ...})`
    # followed by `counter(name)` / `gauge(name)` within the loop body.
    joined = "\n".join(text_by_line)
    for m in re.finditer(
            r"for\s*\(\s*const\s+char\s*\*\s*(" + _IDENT + r")\s*:\s*\{",
            joined):
        var = m.group(1)
        start_line = joined.count("\n", 0, m.start()) + 1
        end = joined.find("}", m.end())
        if end < 0:
            continue
        tail = joined[end:end + 200]
        kind = None
        for meth, k in METRIC_METHODS.items():
            if re.search(r"\b" + meth + r"\s*\(\s*" + var + r"\s*\)", tail):
                kind = k
                break
        if kind is None:
            continue
        end_line = joined.count("\n", 0, end) + 1
        for lineno, lit in src.strings:
            if start_line <= lineno <= end_line and _looks_like_metric_name(lit):
                registrations.append((lit, kind, relpath, lineno))

    # Explicit declarations for names the extractor cannot see.
    for idx, comment in enumerate(src.comment):
        m = DECLARE_METRIC_RE.search(comment)
        if m:
            for name in re.split(r"[,\s]+", m.group(2).strip()):
                if name:
                    declared.append((name, m.group(1), relpath, idx + 1))


_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*(\.[a-z0-9_-]+)+$")


def _looks_like_metric_name(lit):
    return bool(_METRIC_NAME_RE.match(lit)) and ":" not in lit


def check_metrics_schema(repo_root, sources, waiver_sets, violations):
    schema_path = os.path.join(repo_root, METRICS_SCHEMA_PATH)
    try:
        with open(schema_path, encoding="utf-8") as f:
            schema = json.load(f)
    except (OSError, ValueError) as e:
        violations.append(Violation(
            "metrics-schema", METRICS_SCHEMA_PATH, 1,
            f"cannot load schema: {e}"))
        return

    schema_names = {}  # name -> kind
    for kind, keys in SCHEMA_KEYS.items():
        for key in keys:
            for name in schema.get(key, []):
                schema_names[name] = kind
    for kind, key in SCHEMA_DICT_KEYS.items():
        section = schema.get(key)
        if isinstance(section, dict):
            for name in section:
                schema_names[name] = kind

    registrations = []
    declared = []
    for relpath, src in sources.items():
        if not relpath.startswith("src/"):
            continue
        _extract_registered_metrics(relpath, src, declared, registrations)

    registered = {}  # name -> (kind, relpath, lineno)
    for name, kind, relpath, lineno in registrations + declared:
        registered.setdefault(name, (kind, relpath, lineno))

    for name, (kind, relpath, lineno) in sorted(registered.items()):
        waivers = waiver_sets.get(relpath)
        if name not in schema_names:
            if waivers and waivers.covers("metrics-schema", lineno):
                continue
            violations.append(Violation(
                "metrics-schema", relpath, lineno,
                f"metric '{name}' ({kind}) is registered in code but missing "
                f"from {METRICS_SCHEMA_PATH} — add it to the '{kind}s' "
                f"section with a description"))
        elif schema_names[name] != kind:
            if waivers and waivers.covers("metrics-schema", lineno):
                continue
            violations.append(Violation(
                "metrics-schema", relpath, lineno,
                f"metric '{name}' is registered as a {kind} but listed as a "
                f"{schema_names[name]} in {METRICS_SCHEMA_PATH}"))

    for name, kind in sorted(schema_names.items()):
        if name not in registered:
            violations.append(Violation(
                "metrics-schema", METRICS_SCHEMA_PATH, 1,
                f"schema lists {kind} '{name}' but no registration site "
                f"exists in src/ — remove it or fix the registration"))

    _check_perf_context_drift(sources, schema, violations)


_STRUCT_FIELD_RE = re.compile(r"^\s*uint64_t\s+(" + _IDENT + r")\s*=\s*0\s*;")


def _extract_struct_uint64_fields(src, struct_name):
    """uint64_t fields of `struct <name> { ... };` in declaration order."""
    fields = []
    depth = 0
    in_struct = False
    for code in src.code:
        if not in_struct:
            if re.search(r"\bstruct\s+" + struct_name + r"\b", code):
                in_struct = True
                depth = code.count("{") - code.count("}")
            continue
        m = _STRUCT_FIELD_RE.match(code)
        if m and depth >= 1:
            fields.append(m.group(1))
        depth += code.count("{") - code.count("}")
        if depth <= 0:
            break
    return fields


def _check_perf_context_drift(sources, schema, violations):
    """The schema's perf_context/io_stats lists must mirror the uint64_t
    fields of the PerfContext/IOStatsContext structs. Skipped when the
    header is absent (fixture mini-repos)."""
    src = sources.get(PERF_CONTEXT_HEADER)
    if src is None:
        return
    for struct_name, key in PERF_STRUCT_KEYS.items():
        fields = _extract_struct_uint64_fields(src, struct_name)
        listed = schema.get(key, [])
        if not isinstance(listed, list):
            listed = []
        for field in fields:
            if field not in listed:
                violations.append(Violation(
                    "metrics-schema", PERF_CONTEXT_HEADER, 1,
                    f"{struct_name} field '{field}' is missing from the "
                    f"'{key}' list in {METRICS_SCHEMA_PATH}"))
        for name in listed:
            if name not in fields:
                violations.append(Violation(
                    "metrics-schema", METRICS_SCHEMA_PATH, 1,
                    f"schema '{key}' lists '{name}' but {struct_name} in "
                    f"{PERF_CONTEXT_HEADER} has no such field"))


def _collect_guarded_fields(sources):
    guarded = set()
    decl_re = re.compile(r"\b(" + _IDENT + r")\s+GUARDED_BY\s*\(")
    for src in sources.values():
        for code in src.code:
            for m in decl_re.finditer(code):
                guarded.add(m.group(1))
    guarded.discard("GUARDED_BY")
    return guarded


def check_guarded_const_cast(relpath, src, waivers, violations, guarded):
    if not guarded:
        return
    for idx, code in enumerate(src.code):
        if "const_cast" not in code:
            continue
        lineno = idx + 1
        # The cast argument may wrap onto following lines; take a small
        # window from the cast keyword onward.
        window = " ".join(src.code[idx:idx + 3])
        pos = window.find("const_cast")
        window = window[pos:pos + 240]
        for field in guarded:
            if re.search(r"\b" + re.escape(field) + r"\b", window):
                if waivers.covers("guarded-const-cast", lineno):
                    break
                violations.append(Violation(
                    "guarded-const-cast", relpath, lineno,
                    f"const_cast reaches GUARDED_BY field '{field}' — "
                    f"casting around a capability annotation defeats "
                    f"-Wthread-safety"))
                break


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def discover_sources(repo_root, compile_commands):
    """Returns {relpath: abspath} for first-party sources: the TUs listed
    in compile_commands.json that live under src/, plus every header under
    src/ (headers never appear in the database)."""
    files = {}
    if compile_commands:
        try:
            with open(compile_commands, encoding="utf-8") as f:
                entries = json.load(f)
        except (OSError, ValueError) as e:
            print(f"fcae_check: cannot read {compile_commands}: {e}",
                  file=sys.stderr)
            return None
        for entry in entries:
            path = os.path.normpath(
                os.path.join(entry.get("directory", ""), entry["file"]))
            rel = os.path.relpath(path, repo_root)
            if rel.startswith("src" + os.sep):
                files[rel.replace(os.sep, "/")] = path
    src_dir = os.path.join(repo_root, "src")
    for dirpath, _dirnames, filenames in os.walk(src_dir):
        for fn in filenames:
            if fn.endswith((".h", ".hpp")) or (not compile_commands and
                                               fn.endswith(".cc")):
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, repo_root).replace(os.sep, "/")
                files[rel] = path
    return files


def run_checks(repo_root, file_map):
    sources = {}
    for rel, path in sorted(file_map.items()):
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                sources[rel] = SourceFile(rel, f.read())
        except OSError as e:
            print(f"fcae_check: cannot read {path}: {e}", file=sys.stderr)
            return None

    waiver_sets = {rel: WaiverSet(src) for rel, src in sources.items()}
    violations = []
    guarded = _collect_guarded_fields(sources)

    for rel, src in sources.items():
        waivers = waiver_sets[rel]
        check_raw_io(rel, src, waivers, violations)
        check_crash_points(rel, src, waivers, violations)
        check_guarded_const_cast(rel, src, waivers, violations, guarded)

    check_metrics_schema(repo_root, sources, waiver_sets, violations)

    for rel, waivers in sorted(waiver_sets.items()):
        for lineno, rule in waivers.unused():
            violations.append(Violation(
                "unused-waiver", rel, lineno,
                f"waiver for '{rule}' suppresses nothing — remove it"))

    violations.sort(key=lambda v: (v.path, v.lineno, v.rule))
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Project-invariant static analysis for fcae.")
    parser.add_argument("--repo-root", default=REPO_ROOT)
    parser.add_argument("--build-dir", default=None,
                        help="build tree containing compile_commands.json "
                             "(default: <repo>/build if present)")
    parser.add_argument("--compile-commands", default=None,
                        help="explicit path to compile_commands.json")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--selftest", action="store_true",
                        help="run the seeded-fixture self-test and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    if args.selftest:
        from fixtures import selftest  # noqa: PLC0415  (lazy, test-only)
        return selftest.run(args.repo_root)

    repo_root = os.path.abspath(args.repo_root)
    cc = args.compile_commands
    if cc is None:
        build_dir = args.build_dir or os.path.join(repo_root, "build")
        cand = os.path.join(build_dir, "compile_commands.json")
        if os.path.exists(cand):
            cc = cand
        else:
            print(f"fcae_check: note: {cand} not found; falling back to a "
                  f"walk of src/ (configure with CMake to get an exact TU "
                  f"list)", file=sys.stderr)

    file_map = discover_sources(repo_root, cc)
    if file_map is None:
        return 2
    if not file_map:
        print("fcae_check: no sources found under src/", file=sys.stderr)
        return 2

    violations = run_checks(repo_root, file_map)
    if violations is None:
        return 2
    for v in violations:
        print(v)
    if violations:
        print(f"fcae_check: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)", file=sys.stderr)
        return 1
    print(f"fcae_check: OK ({len(file_map)} files checked)")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    sys.exit(main())
