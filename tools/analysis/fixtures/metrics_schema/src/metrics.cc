// Seeded fixture for the metrics-schema rule: fix.listed matches the
// schema, fix.unlisted is registered but missing from the schema, and
// fix.wrong_kind is a counter in code but a gauge in the schema. The
// schema additionally lists fix.ghost, which no code registers.

namespace fcae {

void RegisterFixtureMetrics(obs::MetricsRegistry* metrics) {
  metrics->counter("fix.listed")->Increment();
  metrics->counter("fix.unlisted")->Increment();
  metrics->counter("fix.wrong_kind")->Increment();
}

}  // namespace fcae
