// Seeded fixture for the raw-io rule: three violations (libc fopen, a
// global-namespace close, and std::this_thread::sleep_for), plus one
// waived libc clock read that must NOT be reported.
#include <cstdio>

namespace fcae {

void BadIo() {
  FILE* f = fopen("/tmp/fixture", "r");
  ::close(3);
}

void BadSleep() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

void WaivedClock() {
  // fcae-check: allow(raw-io): fixture demonstrates a justified escape
  time_t t = time(nullptr);
  (void)t;
}

}  // namespace fcae
