"""Fixture self-test for fcae_check: proves every rule fires on its
seeded violation and stays quiet when waived or clean.

Each fixture directory is a miniature repo (src/ tree plus a
bench/metrics_schema.json) run through the same discover_sources +
run_checks pipeline as the real tree. Run via:

    python3 tools/analysis/fcae_check.py --selftest
"""

import collections
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
import fcae_check  # noqa: E402

FIXTURES_DIR = os.path.dirname(os.path.abspath(__file__))

# fixture directory -> exact expected {rule: violation count}. A fixture
# whose waivers stop working shows up here as an unexpected extra count
# (or an unused-waiver), so the waiver machinery is covered too.
CASES = [
    ("clean", {}),
    ("raw_io", {"raw-io": 3}),
    ("crash_point", {"crash-point": 1}),
    ("metrics_schema", {"metrics-schema": 3}),
    ("guarded_const_cast", {"guarded-const-cast": 1}),
    ("unused_waiver", {"unused-waiver": 1}),
]


def run(_repo_root=None):
    failures = 0
    for name, expected in CASES:
        root = os.path.join(FIXTURES_DIR, name)
        file_map = fcae_check.discover_sources(root, None)
        if not file_map:
            print(f"selftest FAIL [{name}]: no sources found under {root}")
            failures += 1
            continue
        violations = fcae_check.run_checks(root, file_map)
        if violations is None:
            print(f"selftest FAIL [{name}]: checker error")
            failures += 1
            continue
        got = dict(collections.Counter(v.rule for v in violations))
        if got != expected:
            failures += 1
            print(f"selftest FAIL [{name}]: expected {expected}, got {got}")
            for v in violations:
                print(f"    {v}")
        else:
            print(f"selftest ok   [{name}]: {expected if expected else 'clean'}")
    if failures:
        print(f"selftest: {failures} of {len(CASES)} case(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"selftest: all {len(CASES)} cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(run())
