// Fixture header declaring a lock-guarded field for the
// guarded-const-cast rule.
#ifndef FIXTURE_STATE_H_
#define FIXTURE_STATE_H_

namespace fcae {

class State {
 public:
  int depth_ GUARDED_BY(mu_) = 0;
  Mutex mu_;
};

}  // namespace fcae

#endif  // FIXTURE_STATE_H_
