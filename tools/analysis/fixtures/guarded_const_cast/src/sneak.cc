// Seeded fixture for the guarded-const-cast rule: one const_cast that
// reaches the GUARDED_BY field depth_ (violation) and one waived copy.
#include "state.h"

namespace fcae {

void Sneak(const State& state) {
  const_cast<State&>(state).depth_ = 7;
}

void SneakWaived(const State& state) {
  // fcae-check: allow(guarded-const-cast): fixture demonstrates a waiver
  const_cast<State&>(state).depth_ = 8;
}

}  // namespace fcae
