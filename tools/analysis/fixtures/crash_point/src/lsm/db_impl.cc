// Seeded fixture for the crash-point rule. The file is named
// src/lsm/db_impl.cc so it falls inside CRASH_POINT_FILES. It contains:
//   - one unbracketed Sync (violation),
//   - one RenameFile bracketed by an FCAE_CRASH_POINT (clean),
//   - one waived SyncDir far from any point (clean via waiver).

namespace fcae {

Status InstallUnbracketed(WritableFile* file) {
  return file->Sync();
}

// --- padding so the crash point below stays out of the 15-line window
// --- of the violation above and of the waived edge below.
//
//
//
//
//
//
//
//
//
//
//
//
//
//

Status InstallBracketed(Env* env) {
  FCAE_CRASH_POINT("fixture:before_rename");
  return env->RenameFile("/db/MANIFEST.tmp", "/db/MANIFEST");
}

// --- more padding: keep the waived SyncDir out of the crash point's
// --- window so only the waiver silences it.
//
//
//
//
//
//
//
//
//
//
//
//

Status InstallWaived(Env* env) {
  // fcae-check: allow(crash-point): fixture demonstrates a justified skip
  return env->SyncDir("/db");
}

}  // namespace fcae
