# Marks tools/analysis/fixtures as a package so fcae_check.py --selftest
# can `from fixtures import selftest`.
