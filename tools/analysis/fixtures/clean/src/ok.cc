// Clean fixture: I/O through fcae::Env, metric listed in the schema,
// no waivers. Must produce zero violations. String and comment content
// mentioning fopen( or sleep( must not trip the lexer-based rules:
// "fopen(" inside this comment and the literal below are not code.

namespace fcae {

Status CopyThroughEnv(Env* env, obs::MetricsRegistry* metrics) {
  metrics->counter("clean.ops")->Increment();
  std::string data = "call fopen(path) and sleep(2) later";
  return WriteStringToFile(env, data, "/db/ok");
}

}  // namespace fcae
