// Seeded fixture for the unused-waiver rule: the waiver below suppresses
// nothing, so it must itself be reported as a violation.

namespace fcae {

// fcae-check: allow(raw-io): stale waiver left behind after a refactor
int Answer() { return 42; }

}  // namespace fcae
