#ifndef FCAE_WORKLOAD_ZIPFIAN_H_
#define FCAE_WORKLOAD_ZIPFIAN_H_

#include <cstdint>

#include "util/random.h"

namespace fcae {
namespace workload {

/// YCSB-style Zipfian generator over [0, n): popular items get the bulk
/// of the requests. Implements the Gray et al. rejection-free method
/// used by the YCSB core (zeta incrementally maintained), with the
/// standard theta = 0.99.
class ZipfianGenerator {
 public:
  static constexpr double kZipfianConstant = 0.99;

  ZipfianGenerator(uint64_t n, uint32_t seed,
                   double theta = kZipfianConstant);

  /// Returns the next sample in [0, n); item 0 is the most popular.
  uint64_t Next();

  uint64_t item_count() const { return items_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t items_;
  double theta_;
  double zeta_n_;
  double alpha_;
  double zeta2theta_;
  double eta_;
  Random rnd_;
};

/// ScrambledZipfian: zipfian popularity but spread over the keyspace by
/// hashing, as YCSB does, so hot items are not clustered.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, uint32_t seed)
      : items_(n), zipfian_(n, seed) {}

  uint64_t Next();

 private:
  uint64_t items_;
  ZipfianGenerator zipfian_;
};

/// "Latest" distribution (YCSB workload D): requests skew toward the
/// most recently inserted items.
class LatestGenerator {
 public:
  LatestGenerator(uint64_t initial_items, uint32_t seed)
      : max_(initial_items), zipfian_(initial_items, seed) {}

  /// Notes that a new item has been inserted (shifts the distribution).
  void AdvanceMax() { max_++; }
  void SetMax(uint64_t max) { max_ = max; }

  uint64_t Next();

 private:
  uint64_t max_;
  ZipfianGenerator zipfian_;
};

}  // namespace workload
}  // namespace fcae

#endif  // FCAE_WORKLOAD_ZIPFIAN_H_
