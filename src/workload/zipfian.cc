#include "workload/zipfian.h"

#include <cmath>

namespace fcae {
namespace workload {

namespace {

/// 64-bit FNV-1a, used to scatter zipfian ranks across the keyspace.
uint64_t FnvHash64(uint64_t value) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; i++) {
    uint8_t octet = value & 0xff;
    value >>= 8;
    hash ^= octet;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 0; i < n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, uint32_t seed, double theta)
    : items_(n), theta_(theta), rnd_(seed) {
  // Zeta(n) is O(n); cap the exact computation and extrapolate for huge
  // n (the standard YCSB approximation keeps request skew intact).
  constexpr uint64_t kExactLimit = 10'000'000;
  if (n <= kExactLimit) {
    zeta_n_ = Zeta(n, theta_);
  } else {
    double zeta_limit = Zeta(kExactLimit, theta_);
    // Integral approximation of the tail.
    zeta_n_ = zeta_limit + (std::pow(static_cast<double>(n), 1 - theta_) -
                            std::pow(static_cast<double>(kExactLimit),
                                     1 - theta_)) /
                               (1 - theta_);
  }
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(items_), 1 - theta_)) /
         (1 - zeta2theta_ / zeta_n_);
}

uint64_t ZipfianGenerator::Next() {
  double u = rnd_.NextDouble();
  double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  uint64_t result = static_cast<uint64_t>(
      static_cast<double>(items_) *
      std::pow(eta_ * u - eta_ + 1, alpha_));
  if (result >= items_) {
    result = items_ - 1;
  }
  return result;
}

uint64_t ScrambledZipfianGenerator::Next() {
  return FnvHash64(zipfian_.Next()) % items_;
}

uint64_t LatestGenerator::Next() {
  uint64_t offset = zipfian_.Next();
  if (offset >= max_) {
    offset = offset % max_;
  }
  return max_ - 1 - offset;
}

}  // namespace workload
}  // namespace fcae
