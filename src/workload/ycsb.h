#ifndef FCAE_WORKLOAD_YCSB_H_
#define FCAE_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"
#include "workload/zipfian.h"

namespace fcae {
namespace workload {

/// YCSB operation kinds.
enum class YcsbOp {
  kRead,
  kUpdate,
  kInsert,
  kScan,
  kReadModifyWrite,
};

/// One of the YCSB core workloads (paper Table IX).
enum class YcsbWorkload {
  kLoad,  // 100% insert
  kA,     // 50% read / 50% update, zipfian
  kB,     // 95% read / 5% update, zipfian
  kC,     // 100% read, zipfian
  kD,     // 95% read / 5% insert, latest
  kE,     // 95% scan / 5% insert, zipfian
  kF,     // 50% read / 50% read-modify-write, zipfian
};

const char* YcsbWorkloadName(YcsbWorkload w);

/// Fraction of operations that write to the store (insert/update/rmw),
/// used by the analysis in Section VII-D ("with the increase of write
/// ratio, the acceleration ratio increases").
double YcsbWriteFraction(YcsbWorkload w);

/// Generates the operation stream for one YCSB workload over a record
/// space of `record_count` items (paper: 20M records, 20M operations;
/// zipfian request distribution except workload D which uses latest).
class YcsbGenerator {
 public:
  YcsbGenerator(YcsbWorkload workload, uint64_t record_count, uint32_t seed);

  struct Op {
    YcsbOp type;
    uint64_t key_id;
    int scan_length = 0;  // For kScan.
  };

  Op Next();

  YcsbWorkload workload() const { return workload_; }

 private:
  YcsbOp PickOpType();

  YcsbWorkload workload_;
  uint64_t record_count_;
  uint64_t insert_sequence_;  // Next id for inserts.
  Random rnd_;
  std::unique_ptr<ScrambledZipfianGenerator> zipfian_;
  std::unique_ptr<LatestGenerator> latest_;
};

}  // namespace workload
}  // namespace fcae

#endif  // FCAE_WORKLOAD_YCSB_H_
