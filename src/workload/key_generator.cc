#include "workload/key_generator.h"

#include <cassert>

namespace fcae {
namespace workload {

namespace {

/// Appends a fragment whose compressibility matches `compression_ratio`
/// (fraction of output after compression), the scheme db_bench uses.
std::string CompressibleString(Random* rnd, double compression_ratio,
                               size_t len) {
  size_t raw = static_cast<size_t>(len * compression_ratio);
  if (raw < 1) raw = 1;
  std::string raw_data;
  raw_data.reserve(raw);
  for (size_t i = 0; i < raw; i++) {
    raw_data.push_back(static_cast<char>(' ' + rnd->Uniform(95)));
  }
  std::string result;
  result.reserve(len);
  while (result.size() < len) {
    result.append(raw_data);
  }
  result.resize(len);
  return result;
}

}  // namespace

ValueGenerator::ValueGenerator(uint32_t seed, double compression_ratio) {
  Random rnd(seed);
  // A large pool sliced at shifting offsets, like db_bench's
  // RandomGenerator.
  while (pool_.size() < 1048576) {
    pool_.append(CompressibleString(&rnd, compression_ratio, 100));
  }
}

std::string ValueGenerator::Generate(size_t len) {
  if (pos_ + len > pool_.size()) {
    pos_ = 0;
    assert(len < pool_.size());
  }
  pos_ += len;
  return pool_.substr(pos_ - len, len);
}

}  // namespace workload
}  // namespace fcae
