#ifndef FCAE_WORKLOAD_KEY_GENERATOR_H_
#define FCAE_WORKLOAD_KEY_GENERATOR_H_

#include <cstdint>
#include <string>

#include "util/random.h"

namespace fcae {
namespace workload {

/// Formats numeric key ids as fixed-width byte strings, zero padded to
/// `key_length` (Table IV: 16 bytes by default, up to 256 in the
/// sensitivity sweep).
class KeyFormatter {
 public:
  explicit KeyFormatter(size_t key_length) : key_length_(key_length) {}

  std::string Format(uint64_t id) const {
    char digits[24];
    int n = std::snprintf(digits, sizeof(digits), "%016llu",
                          static_cast<unsigned long long>(id));
    std::string key;
    key.reserve(key_length_);
    if (static_cast<size_t>(n) >= key_length_) {
      key.assign(digits + (n - key_length_), key_length_);
    } else {
      key.assign(key_length_ - n, 'k');  // Pad prefix to the target length.
      key.append(digits, n);
    }
    return key;
  }

  size_t key_length() const { return key_length_; }

 private:
  size_t key_length_;
};

/// db_bench-style value generator: pieces of compressible text so that
/// Snappy achieves a realistic (~2x) ratio rather than degenerate
/// all-one-byte compression.
class ValueGenerator {
 public:
  explicit ValueGenerator(uint32_t seed, double compression_ratio = 0.5);

  /// Returns a value of exactly `len` bytes.
  std::string Generate(size_t len);

 private:
  std::string pool_;
  size_t pos_ = 0;
};

}  // namespace workload
}  // namespace fcae

#endif  // FCAE_WORKLOAD_KEY_GENERATOR_H_
