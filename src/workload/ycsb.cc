#include "workload/ycsb.h"

namespace fcae {
namespace workload {

const char* YcsbWorkloadName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kLoad:
      return "Load";
    case YcsbWorkload::kA:
      return "A";
    case YcsbWorkload::kB:
      return "B";
    case YcsbWorkload::kC:
      return "C";
    case YcsbWorkload::kD:
      return "D";
    case YcsbWorkload::kE:
      return "E";
    case YcsbWorkload::kF:
      return "F";
  }
  return "?";
}

double YcsbWriteFraction(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kLoad:
      return 1.0;
    case YcsbWorkload::kA:
      return 0.5;
    case YcsbWorkload::kB:
      return 0.05;
    case YcsbWorkload::kC:
      return 0.0;
    case YcsbWorkload::kD:
      return 0.05;
    case YcsbWorkload::kE:
      return 0.05;
    case YcsbWorkload::kF:
      return 0.5;  // Each RMW performs one write (plus a read).
  }
  return 0;
}

YcsbGenerator::YcsbGenerator(YcsbWorkload workload, uint64_t record_count,
                             uint32_t seed)
    : workload_(workload),
      record_count_(record_count),
      insert_sequence_(record_count),
      rnd_(seed) {
  if (workload == YcsbWorkload::kD) {
    latest_ = std::make_unique<LatestGenerator>(record_count, seed + 1);
  } else {
    zipfian_ =
        std::make_unique<ScrambledZipfianGenerator>(record_count, seed + 1);
  }
}

YcsbOp YcsbGenerator::PickOpType() {
  const uint32_t r = rnd_.Uniform(100);
  switch (workload_) {
    case YcsbWorkload::kLoad:
      return YcsbOp::kInsert;
    case YcsbWorkload::kA:
      return r < 50 ? YcsbOp::kRead : YcsbOp::kUpdate;
    case YcsbWorkload::kB:
      return r < 95 ? YcsbOp::kRead : YcsbOp::kUpdate;
    case YcsbWorkload::kC:
      return YcsbOp::kRead;
    case YcsbWorkload::kD:
      return r < 95 ? YcsbOp::kRead : YcsbOp::kInsert;
    case YcsbWorkload::kE:
      return r < 95 ? YcsbOp::kScan : YcsbOp::kInsert;
    case YcsbWorkload::kF:
      return r < 50 ? YcsbOp::kRead : YcsbOp::kReadModifyWrite;
  }
  return YcsbOp::kRead;
}

YcsbGenerator::Op YcsbGenerator::Next() {
  Op op;
  op.type = PickOpType();
  switch (op.type) {
    case YcsbOp::kInsert:
      op.key_id = insert_sequence_++;
      if (latest_) {
        latest_->AdvanceMax();
      }
      break;
    case YcsbOp::kScan:
      op.key_id = zipfian_ ? zipfian_->Next() : rnd_.Uniform(record_count_);
      op.scan_length = 1 + rnd_.Uniform(100);  // YCSB default max 100.
      break;
    default:
      if (latest_) {
        op.key_id = latest_->Next();
      } else if (zipfian_) {
        op.key_id = zipfian_->Next();
      } else {
        op.key_id = rnd_.Uniform(record_count_);
      }
      break;
  }
  return op;
}

}  // namespace workload
}  // namespace fcae
