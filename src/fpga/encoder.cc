#include "fpga/encoder.h"

#include "compress/snappy.h"
#include "fpga/kv_transfer.h"
#include "table/format.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace fcae {
namespace fpga {

namespace {
uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }
}  // namespace

OutputEncoder::OutputEncoder(const EngineConfig& config,
                             const Options& table_options,
                             KeyValueTransfer* transfer, DeviceOutput* output)
    : config_(config),
      table_options_(table_options),
      transfer_(transfer),
      output_(output),
      block_builder_(new BlockBuilder(&table_options_)),
      write_queue_(4) {}

OutputEncoder::~OutputEncoder() = default;

void OutputEncoder::FlushBlock() {
  if (block_builder_->empty()) {
    return;
  }
  Slice raw = block_builder_->Finish();

  Slice block_contents;
  CompressionType type = kNoCompression;
  if (config_.compress_output) {
    snappy::Compress(raw.data(), raw.size(), &compression_scratch_);
    if (compression_scratch_.size() < raw.size() - (raw.size() / 8u)) {
      block_contents = compression_scratch_;
      type = kSnappyCompression;
    } else {
      block_contents = raw;
    }
  } else {
    block_contents = raw;
  }

  // Append stored block + trailer to the output table's data memory,
  // exactly as TableBuilder::WriteRawBlock does on the host.
  OutputIndexEntry entry;
  entry.last_key = block_last_key_;
  entry.offset = current_table_.data_memory.size();
  entry.size = block_contents.size();

  current_table_.data_memory.append(block_contents.data(),
                                    block_contents.size());
  char trailer[kBlockTrailerSize];
  trailer[0] = static_cast<char>(type);
  uint32_t crc = crc32c::Value(block_contents.data(), block_contents.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  current_table_.data_memory.append(trailer, kBlockTrailerSize);

  current_table_.index_entries.push_back(std::move(entry));

  // Index Block Encoder: eager writeback when separated; BRAM
  // accumulation otherwise (paper Section V-B2).
  const size_t index_entry_bytes = block_last_key_.size() + 16;
  if (config_.BlocksSeparated()) {
    if (write_queue_.CanPush()) {
      write_queue_.Push(QueuedWrite{index_entry_bytes});
    } else {
      // Fold into the block's own write when the port queue is full.
    }
  } else {
    bram_index_bytes_ += index_entry_bytes;
    if (bram_index_bytes_ > bram_index_bytes_peak_) {
      bram_index_bytes_peak_ = bram_index_bytes_;
    }
  }

  // Queue the data block write (payload + trailer through the upsizer).
  const uint64_t stored = block_contents.size() + kBlockTrailerSize;
  bytes_written_ += stored;
  if (write_queue_.CanPush()) {
    write_queue_.Push(QueuedWrite{stored});
  } else {
    // The write port is saturated: the encoder stalls for the whole
    // transfer instead of queueing (models output buffer overflow).
    busy_ += config_.dram_read_latency +
             CeilDiv(stored, config_.EffectiveOutputWidth());
    write_stall_cycles_ += busy_;
  }
  blocks_emitted_++;

  block_builder_->Reset();
  block_first_key_.clear();
  block_last_key_.clear();
}

void OutputEncoder::FinishTable() {
  FlushBlock();
  if (!table_open_) {
    return;
  }
  if (!config_.BlocksSeparated() && bram_index_bytes_ > 0) {
    // Bulk index block writeback at table end; the encoder is stalled
    // for its duration (the basic design's extra transfer time).
    busy_ += config_.dram_read_latency +
             CeilDiv(bram_index_bytes_, config_.EffectiveOutputWidth());
    bram_index_bytes_ = 0;
  }
  output_->tables.push_back(std::move(current_table_));
  current_table_ = DeviceOutputTable();
  table_open_ = false;
}

void OutputEncoder::TickWriter() {
  if (write_busy_ > 0) {
    write_busy_--;
    return;
  }
  if (write_queue_.CanPop()) {
    QueuedWrite w = write_queue_.Pop();
    write_busy_ = config_.dram_read_latency +
                  CeilDiv(w.bytes, config_.EffectiveOutputWidth());
  }
}

void OutputEncoder::Tick() {
  TickWriter();

  if (busy_ > 0) {
    busy_--;
    busy_cycles_++;
    return;
  }

  if (transfer_->output().CanPop()) {
    KvRecord record = transfer_->output().Pop();

    if (!table_open_) {
      table_open_ = true;
      current_table_.smallest_key = record.internal_key;
    }
    if (block_builder_->empty()) {
      block_first_key_ = record.internal_key;
    }
    block_last_key_ = record.internal_key;
    current_table_.largest_key = record.internal_key;
    current_table_.num_entries++;

    block_builder_->Add(record.internal_key, record.value);
    records_encoded_++;

    uint64_t cycles = record.key_length();
    if (!config_.KeyValueSeparated()) {
      cycles += record.value_length();
    }
    busy_ = cycles == 0 ? 1 : cycles;

    if (block_builder_->CurrentSizeEstimate() >=
        config_.data_block_threshold) {
      FlushBlock();
      if (current_table_.data_memory.size() >= config_.sstable_threshold) {
        FinishTable();
      }
    }
    return;
  }

  if (upstream_done_ && !finalized_ && transfer_->Done() &&
      transfer_->output().Empty()) {
    FinishTable();
    finalized_ = true;
  }
}

void OutputEncoder::NotifyUpstreamDone() { upstream_done_ = true; }

bool OutputEncoder::Done() const {
  return finalized_ && busy_ == 0 && write_busy_ == 0 &&
         write_queue_.Empty();
}

}  // namespace fpga
}  // namespace fcae
