#include "fpga/decoder.h"

#include "table/format.h"
#include "util/coding.h"

namespace fcae {
namespace fpga {

namespace {

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace

InputDecoder::InputDecoder(const EngineConfig& config,
                           const DeviceInput* input, int input_no)
    : config_(config),
      input_(input),
      input_no_(input_no),
      block_fifo_(static_cast<size_t>(
          config.BlocksSeparated() ? config.block_prefetch_depth : 1)),
      key_fifo_(static_cast<size_t>(config.record_fifo_depth)),
      transfer_fifo_(static_cast<size_t>(config.record_fifo_depth)) {
  (void)input_no_;
}

bool InputDecoder::LoadNextIndexBlock() {
  while (next_sstable_ < input_->sstables.size()) {
    const SstableDescriptor& desc = input_->sstables[next_sstable_];
    next_sstable_++;
    sstable_data_base_ = desc.data_offset;

    if (desc.index_offset + desc.index_size > input_->index_memory.size()) {
      status_ = Status::Corruption("index block outside staged memory");
      return false;
    }
    Slice stored(input_->index_memory.data() + desc.index_offset,
                 static_cast<size_t>(desc.index_size));
    std::string contents;
    Status s = DecodeStoredBlock(stored, /*verify_checksum=*/true, &contents);
    if (!s.ok()) {
      status_ = s;
      return false;
    }
    std::vector<ParsedEntry> entries;
    s = ParseBlockEntries(contents, &entries);
    if (!s.ok()) {
      status_ = s;
      return false;
    }

    block_handles_.clear();
    next_handle_ = 0;
    for (const ParsedEntry& e : entries) {
      Slice handle_input(e.value);
      BlockHandle handle;
      if (!handle.DecodeFrom(&handle_input).ok()) {
        status_ = Status::Corruption("bad block handle in index block");
        return false;
      }
      block_handles_.emplace_back(handle.offset(), handle.size());
    }
    if (block_handles_.empty()) {
      continue;  // Empty table; move on to the next one.
    }

    // Index block read round trip: DRAM latency + the block streamed in
    // at 8 bytes/cycle (narrow port; paper: "no need to make this
    // modification for index block").
    index_busy_ = config_.dram_read_latency + CeilDiv(desc.index_size, 8);
    return true;
  }
  return false;
}

void InputDecoder::TickFetcher() {
  if (!status_.ok()) return;

  if (index_busy_ > 0) {
    index_busy_--;
    // In the separated design the index decode overlaps data decoding;
    // the stall only matters when the handle queue runs dry, which the
    // logic below models naturally. In the basic design the single read
    // pointer means nothing else proceeds, modeled by fetch_in_flight_
    // staying false until index_busy_ drains.
    if (index_busy_ > 0) return;
  }

  if (fetch_in_flight_) {
    if (fetch_busy_ > 0) {
      fetch_busy_--;
    }
    if (fetch_busy_ == 0 && block_fifo_.CanPush()) {
      block_fifo_.Push(std::move(fetching_block_));
      fetch_in_flight_ = false;
    }
    return;
  }

  // Need a next handle?
  if (next_handle_ >= block_handles_.size()) {
    if (!LoadNextIndexBlock()) {
      return;  // Fully exhausted (or errored).
    }
    if (index_busy_ > 0) return;  // Pay the index round trip first.
  }

  if (!block_fifo_.CanPush()) {
    return;  // Prefetch window full.
  }
  if (!config_.BlocksSeparated() &&
      (!block_fifo_.Empty() || next_entry_ < current_entries_.size() ||
       decode_busy_ > 0 || record_ready_)) {
    // The basic design has a single read pointer: the next fetch cannot
    // start until the current block is completely decoded (paper
    // Section V-B1: "the process of generating key-values will pause,
    // until meta data is acquired from index block again").
    return;
  }

  const auto [offset, size] = block_handles_[next_handle_];
  next_handle_++;

  const uint64_t stored_size = size + kBlockTrailerSize;
  const uint64_t start = sstable_data_base_ + offset;
  if (start + stored_size > input_->data_memory.size()) {
    status_ = Status::Corruption("data block outside staged memory");
    return;
  }

  // Functional decode of the block happens when the fetch completes.
  Slice stored(input_->data_memory.data() + start,
               static_cast<size_t>(stored_size));
  std::string contents;
  Status s = DecodeStoredBlock(stored, /*verify_checksum=*/true, &contents);
  if (!s.ok()) {
    status_ = s;
    return;
  }
  fetching_block_ = PendingBlock();
  fetching_block_.stored_size = stored_size;
  s = ParseBlockEntries(contents, &fetching_block_.entries);
  if (!s.ok()) {
    status_ = s;
    return;
  }

  bytes_fetched_ += stored_size;

  // Burst read: latency + W_in bytes per cycle.
  fetch_busy_ = config_.dram_read_latency +
                CeilDiv(stored_size, config_.EffectiveInputWidth());
  fetch_in_flight_ = true;

  // In the basic design the read pointer switches back to the index
  // block after each data block: charge the extra round trip up front
  // for the *next* handle by re-arming index_busy_.
  if (!config_.BlocksSeparated()) {
    index_busy_ += config_.dram_read_latency;
  }
}

void InputDecoder::TickDecoder() {
  if (!status_.ok()) return;

  if (record_ready_) {
    // Waiting for space in both output FIFOs (key stream + copy/value).
    if (key_fifo_.CanPush() && transfer_fifo_.CanPush()) {
      key_fifo_.Push(pending_record_);
      transfer_fifo_.Push(std::move(pending_record_));
      record_ready_ = false;
      records_decoded_++;
    } else {
      backpressure_cycles_++;
      return;
    }
  }

  if (decode_busy_ > 0) {
    decode_busy_--;
    busy_cycles_++;
    if (decode_busy_ > 0) return;
    // Decode finished this cycle: publish immediately if there is room,
    // otherwise stall in record_ready_ state.
    record_ready_ = true;
    if (key_fifo_.CanPush() && transfer_fifo_.CanPush()) {
      key_fifo_.Push(pending_record_);
      transfer_fifo_.Push(std::move(pending_record_));
      record_ready_ = false;
      records_decoded_++;
    }
    return;
  }

  // Start decoding the next record.
  if (next_entry_ >= current_entries_.size()) {
    if (!block_fifo_.CanPop()) {
      if (!Exhausted()) {
        fetch_stall_cycles_++;
      }
      return;
    }
    PendingBlock block = block_fifo_.Pop();
    current_entries_ = std::move(block.entries);
    next_entry_ = 0;
    if (current_entries_.empty()) {
      return;
    }
  }

  const ParsedEntry& entry = current_entries_[next_entry_++];
  pending_record_.internal_key = entry.key;
  pending_record_.value = entry.value;

  // Table III: decoding key (1 byte/cycle) + value read (V bytes/cycle).
  const uint64_t key_cycles = entry.key.size();
  const uint64_t value_cycles =
      CeilDiv(entry.value.size(), config_.EffectiveValueWidth());
  decode_busy_ = key_cycles + value_cycles;
  if (decode_busy_ == 0) decode_busy_ = 1;
}

void InputDecoder::Tick() {
  // Downstream first so a freed FIFO slot is usable next cycle, not in
  // the same one.
  TickDecoder();
  TickFetcher();
}

bool InputDecoder::Exhausted() const {
  if (!status_.ok()) {
    return true;  // Error: stop producing; engine surfaces status.
  }
  return next_sstable_ >= input_->sstables.size() &&
         next_handle_ >= block_handles_.size() && !fetch_in_flight_ &&
         block_fifo_.Empty() && next_entry_ >= current_entries_.size() &&
         decode_busy_ == 0 && !record_ready_;
}

}  // namespace fpga
}  // namespace fcae
