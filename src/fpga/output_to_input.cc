#include "fpga/output_to_input.h"

#include "lsm/dbformat.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/options.h"

namespace fcae {
namespace fpga {

Status ConvertOutputToInput(const DeviceOutput& output, DeviceInput* input) {
  static const InternalKeyComparator* icmp =
      new InternalKeyComparator(BytewiseComparator());
  Options block_options;
  block_options.comparator = icmp;
  block_options.block_restart_interval = 1;

  for (const DeviceOutputTable& table : output.tables) {
    if (table.index_entries.empty()) {
      continue;  // Empty table: nothing to decode.
    }

    SstableDescriptor desc;
    desc.data_offset = input->data_memory.size();
    desc.data_size = table.data_memory.size();
    input->data_memory.append(table.data_memory);

    // Rebuild the stored index block (uncompressed + trailer), exactly
    // as AssembleTableFile does on the host side.
    BlockBuilder index_block(&block_options);
    for (const OutputIndexEntry& e : table.index_entries) {
      BlockHandle handle;
      handle.set_offset(e.offset);
      handle.set_size(e.size);
      std::string handle_encoding;
      handle.EncodeTo(&handle_encoding);
      index_block.Add(e.last_key, handle_encoding);
    }
    Slice contents = index_block.Finish();

    desc.index_offset = input->index_memory.size();
    desc.index_size = contents.size() + kBlockTrailerSize;
    input->index_memory.append(contents.data(), contents.size());
    char trailer[kBlockTrailerSize];
    trailer[0] = kNoCompression;
    uint32_t crc = crc32c::Value(contents.data(), contents.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    input->index_memory.append(trailer, kBlockTrailerSize);

    input->sstables.push_back(desc);
  }
  return Status::OK();
}

}  // namespace fpga
}  // namespace fcae
