#ifndef FCAE_FPGA_COMPACTION_ENGINE_H_
#define FCAE_FPGA_COMPACTION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "fpga/config.h"
#include "fpga/device_memory.h"
#include "util/options.h"
#include "util/status.h"

namespace fcae {
namespace fpga {

/// Cycle counts and functional totals for one engine run.
struct EngineStats {
  uint64_t cycles = 0;
  uint64_t records_in = 0;       // Records decoded across all inputs.
  uint64_t records_out = 0;      // Records surviving into outputs.
  uint64_t records_dropped = 0;  // Invalidated by the Validity Check.
  uint64_t records_bounds_dropped = 0;  // Subset of dropped: outside the
                                        // run's shard KeyBounds.
  uint64_t input_bytes = 0;      // Staged input bytes (index + data).
  uint64_t output_bytes = 0;     // Produced output bytes.
  uint64_t decoder_fetch_stalls = 0;
  uint64_t decoder_backpressure = 0;
  uint64_t comparer_waits = 0;
  uint64_t encoder_write_stalls = 0;

  // Per-module busy cycles (the utilization profile; the largest share
  // identifies the observed pipeline bottleneck, comparable against
  // TimingModel::BottleneckModule).
  uint64_t decoder_busy = 0;   // Summed over all input lanes.
  uint64_t comparer_busy = 0;
  uint64_t transfer_busy = 0;
  uint64_t encoder_busy = 0;

  // Peak occupancy of the inter-module FIFOs (entries), the telemetry a
  // real engine would expose from FIFO almost-full counters. A FIFO
  // pinned at its capacity marks the backpressure boundary: its
  // consumer is the stage limiting throughput.
  uint64_t fifo_key_stream_peak = 0;     // Decoder -> Comparer (max lane).
  uint64_t fifo_transfer_peak = 0;       // Decoder -> KV Transfer (max lane).
  uint64_t fifo_selection_peak = 0;      // Comparer -> KV Transfer.
  uint64_t fifo_output_peak = 0;         // KV Transfer -> Encoder.
  uint64_t fifo_write_queue_peak = 0;    // Encoder -> AXI write port.

  /// Busy share of a module over the whole run, in [0, 1].
  double Utilization(uint64_t busy) const {
    return cycles > 0 ? static_cast<double>(busy) / cycles : 0;
  }

  /// Kernel time at the configured clock.
  double Micros(const EngineConfig& config) const {
    return config.CyclesToMicros(cycles);
  }

  /// Compaction speed as the paper defines it: size of input SSTables /
  /// kernel compaction time (Section VII-B1), in MB/s.
  double CompactionSpeedMBps(const EngineConfig& config) const {
    double secs = Micros(config) / 1e6;
    if (secs <= 0) return 0;
    return (static_cast<double>(input_bytes) / (1024.0 * 1024.0)) / secs;
  }
};

/// Observed bottleneck attribution from one run's utilization profile:
/// the module with the largest busy share. The decoder share is
/// per-lane (busy cycles / lanes) because the lanes run in parallel —
/// the pipeline is limited by the slowest single module, not by the sum
/// of the lanes. `num_lanes` is the number of inputs actually decoded.
/// Comparable against the closed-form TimingModel::BottleneckModule
/// prediction (the paper's Comparer <-> Data Block Decoder crossover,
/// Section VII-B3).
struct BottleneckReport {
  const char* module = "";  // "decoder" | "comparer" | "transfer" | "encoder"
  double share = 0;         // Busy share of the winning module, [0, 1].
  double decoder_share = 0;
  double comparer_share = 0;
  double transfer_share = 0;
  double encoder_share = 0;
};
BottleneckReport AttributeBottleneck(const EngineStats& stats, int num_lanes);

/// The FPGA compaction engine (paper Section V): an N-input
/// decode/compare/encode pipeline simulated at cycle granularity with
/// FIFO backpressure, performing the real merge on real SSTable bytes.
///
/// Usage: stage inputs (DeviceInput images built by the host layer),
/// construct, Run(), read the DeviceOutput and stats. An engine object
/// is single-use, like one offloaded kernel invocation.
class CompactionEngine {
 public:
  /// `inputs` and `output` must outlive the engine. At most
  /// config.num_inputs inputs are accepted — the host scheduler must
  /// have already routed bigger jobs to software (paper Fig. 6).
  /// `bounds`, when non-null and active, restricts the merge to user
  /// keys in (lower, upper] (sharded offload; see fpga::KeyBounds).
  /// Borrowed; must outlive the engine.
  CompactionEngine(const EngineConfig& config,
                   std::vector<const DeviceInput*> inputs,
                   uint64_t smallest_snapshot, bool drop_deletions,
                   DeviceOutput* output, const KeyBounds* bounds = nullptr);

  CompactionEngine(const CompactionEngine&) = delete;
  CompactionEngine& operator=(const CompactionEngine&) = delete;

  ~CompactionEngine();

  /// Runs the pipeline to completion. Returns non-ok on malformed
  /// staged data (and leaves the output in an unspecified state).
  Status Run();

  const EngineStats& stats() const { return stats_; }
  const EngineConfig& config() const { return config_; }

 private:
  struct Pipeline;

  const EngineConfig config_;
  std::vector<const DeviceInput*> inputs_;
  const uint64_t smallest_snapshot_;
  const bool drop_deletions_;
  DeviceOutput* output_;
  const KeyBounds* const bounds_;
  EngineStats stats_;

  std::unique_ptr<Pipeline> pipeline_;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_COMPACTION_ENGINE_H_
