#ifndef FCAE_FPGA_PCIE_MODEL_H_
#define FCAE_FPGA_PCIE_MODEL_H_

#include <cstdint>

namespace fcae {
namespace fpga {

/// Transfer-time model for the PCIe gen3 x16 link between host memory
/// and the card's DRAM (paper Section IV: inputs move host -> card in
/// DMA mode, outputs come back after the end signal; Table VIII shows
/// the transfer share of total time).
class PcieModel {
 public:
  /// gen3 x16: 15.75 GB/s raw; ~12 GB/s effective after 128b/130b and
  /// DMA protocol overheads.
  explicit PcieModel(double effective_gbps = 12.0,
                     double per_dma_latency_us = 10.0)
      : bytes_per_micro_(effective_gbps * 1e9 / 1e6),
        per_dma_latency_us_(per_dma_latency_us) {}

  /// Time to move `bytes` in one DMA, in microseconds.
  double TransferMicros(uint64_t bytes) const {
    if (bytes == 0) return 0;
    return per_dma_latency_us_ +
           static_cast<double>(bytes) / bytes_per_micro_;
  }

  /// Host -> card inputs plus card -> host outputs for one offload.
  double RoundTripMicros(uint64_t input_bytes, uint64_t output_bytes) const {
    return TransferMicros(input_bytes) + TransferMicros(output_bytes);
  }

  /// Extra time charged when the link-level CRC catches a corrupted
  /// transfer and the DMA replays: the descriptor setup latency plus the
  /// replayed window (the whole transfer, capped at one replay-buffer
  /// chunk — gen3 replays at TLP granularity, so a full-transfer replay
  /// is the conservative upper bound for one fault).
  double RetransferMicros(uint64_t bytes) const {
    const uint64_t window =
        bytes < kReplayChunkBytes ? bytes : kReplayChunkBytes;
    return TransferMicros(window);
  }

 private:
  static constexpr uint64_t kReplayChunkBytes = 4ull << 20;

  double bytes_per_micro_;
  double per_dma_latency_us_;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_PCIE_MODEL_H_
