#ifndef FCAE_FPGA_BLOCK_PARSE_H_
#define FCAE_FPGA_BLOCK_PARSE_H_

#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace fcae {
namespace fpga {

/// One fully reconstructed block entry (prefix decompression applied).
struct ParsedEntry {
  std::string key;
  std::string value;
};

/// Functional model of the engine's on-chip block decode path: verifies
/// the 5-byte trailer (type + masked CRC32C), applies Snappy
/// decompression when the type byte says so, and stores the plain block
/// contents in *contents.
Status DecodeStoredBlock(const Slice& stored_block, bool verify_checksum,
                         std::string* contents);

/// Walks a plain (decompressed) SSTable block, undoing the restart-point
/// prefix compression, and appends every entry to *out.
Status ParseBlockEntries(const Slice& contents,
                         std::vector<ParsedEntry>* out);

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_BLOCK_PARSE_H_
