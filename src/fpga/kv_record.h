#ifndef FCAE_FPGA_KV_RECORD_H_
#define FCAE_FPGA_KV_RECORD_H_

#include <cstdint>
#include <string>

namespace fcae {
namespace fpga {

/// One decoded key-value pair flowing through the engine pipeline. The
/// key is a full internal key: user key bytes followed by the 8-byte
/// mark field ((sequence << 8) | type), exactly the paper's "real key
/// plus mark fields ... treated as a whole in Decoder and Encoder".
struct KvRecord {
  std::string internal_key;
  std::string value;

  size_t key_length() const { return internal_key.size(); }
  size_t value_length() const { return value.size(); }
};

/// The Comparer's selection result handed to the Key-Value Transfer
/// module: which input holds the current smallest key, and whether the
/// Validity Check decided to drop it (paper Section V-A: "the Drop flag
/// is sent to Key-Value Transfer ... the Input No. should be sent as
/// well").
struct Selection {
  int input_no = 0;
  bool drop = false;
  // Service-time parameters captured at selection time.
  uint32_t key_length = 0;
  uint32_t value_length = 0;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_KV_RECORD_H_
