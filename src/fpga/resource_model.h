#ifndef FCAE_FPGA_RESOURCE_MODEL_H_
#define FCAE_FPGA_RESOURCE_MODEL_H_

#include <string>

#include "fpga/config.h"

namespace fcae {
namespace fpga {

/// Estimated utilization of the target FPGA, in percent of the
/// KCU1500's available resources (as Vivado reports it; >100 % means
/// the design does not fit).
struct ResourceUsage {
  double bram_pct = 0;
  double ff_pct = 0;
  double lut_pct = 0;

  /// A design is implementable only when everything fits on the chip.
  bool Fits() const {
    return bram_pct <= 100.0 && ff_pct <= 100.0 && lut_pct <= 100.0;
  }

  std::string ToString() const;
};

/// An area model of the engine on the Xilinx KCU1500 (paper Table VII).
///
/// Structure: a fixed control/AXI base plus one decode lane per input;
/// each lane's cost grows with the AXI input width W_in (burst buffers,
/// FIFO width), the value datapath width V, and an interaction term for
/// the Stream Downsizer, whose W_in -> V conversion network is the
/// dominant LUT consumer ("the Stream Downsizer module on FPGA consumes
/// considerable LUT resource", Section VII-C1). Coefficients are
/// least-squares calibrated to the six synthesis points of Table VII
/// (max residual < 1 %).
class ResourceModel {
 public:
  /// Estimates utilization for the given engine configuration.
  static ResourceUsage Estimate(const EngineConfig& config);

  /// Convenience: whether a configuration fits on the device.
  static bool Fits(const EngineConfig& config) {
    return Estimate(config).Fits();
  }

  /// Searches the (W_in, V) grid for the highest-bandwidth configuration
  /// that fits for the given input count, preferring larger W_in then
  /// larger V (the paper picked W_in = 8, V = 8 for N = 9 this way).
  static EngineConfig LargestFittingConfig(int num_inputs);
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_RESOURCE_MODEL_H_
