#ifndef FCAE_FPGA_SIM_FIFO_H_
#define FCAE_FPGA_SIM_FIFO_H_

#include <cassert>
#include <cstddef>
#include <deque>

namespace fcae {
namespace fpga {

/// A bounded FIFO connecting two pipeline modules. The paper builds the
/// inter-module channels from on-chip FIFOs because "the element in FIFO
/// can be used only once" and FIFOs "are easier to be synchronized"
/// (Section V-C); this model provides the same single-consumer,
/// backpressured semantics with 1-cycle access.
template <typename T>
class Fifo {
 public:
  explicit Fifo(size_t capacity) : capacity_(capacity) {}

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  bool CanPush() const { return items_.size() < capacity_; }
  bool CanPop() const { return !items_.empty(); }
  bool Empty() const { return items_.empty(); }
  bool Full() const { return items_.size() >= capacity_; }
  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }

  void Push(T item) {
    assert(CanPush());
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) {
      high_water_ = items_.size();
    }
  }

  const T& Front() const {
    assert(CanPop());
    return items_.front();
  }

  T Pop() {
    assert(CanPop());
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Maximum occupancy observed; used for BRAM sizing in the resource
  /// model and for diagnostics.
  size_t HighWater() const { return high_water_; }

 private:
  const size_t capacity_;
  size_t high_water_ = 0;
  std::deque<T> items_;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_SIM_FIFO_H_
