#ifndef FCAE_FPGA_OUTPUT_TO_INPUT_H_
#define FCAE_FPGA_OUTPUT_TO_INPUT_H_

#include "fpga/device_memory.h"

namespace fcae {
namespace fpga {

/// Re-stages an engine output as a new engine input without leaving the
/// card: the output data blocks are adopted verbatim and each table's
/// index entries are re-encoded as a stored index block (restart
/// interval 1 + trailer), producing exactly the layout the Index Block
/// Decoder consumes. This is what makes tournament scheduling of
/// >N-input compactions possible inside the card's 16 GB DRAM.
Status ConvertOutputToInput(const DeviceOutput& output, DeviceInput* input);

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_OUTPUT_TO_INPUT_H_
