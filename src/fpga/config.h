#ifndef FCAE_FPGA_CONFIG_H_
#define FCAE_FPGA_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/slice.h"

namespace fcae {
namespace fpga {

/// Optional user-key range restriction for one kernel run, used when a
/// sharded compaction offloads its key-disjoint sub-compactions: the
/// shard owns the user-key range (lower, upper]. The host stager trims
/// whole data blocks outside the range (conservatively — boundary
/// blocks stay staged), and the Key-Value Transfer module drops any
/// surviving record whose user key falls outside, the on-chip
/// equivalent of the DB's bounded shard iterator. Comparisons are
/// bytewise, matching the engine's hard-coded BytewiseComparator.
struct KeyBounds {
  bool has_lower = false;  // Exclusive lower bound when set.
  bool has_upper = false;  // Inclusive upper bound when set.
  std::string lower;
  std::string upper;

  bool active() const { return has_lower || has_upper; }

  /// True iff `user_key` lies inside (lower, upper].
  bool Contains(const Slice& user_key) const {
    if (has_lower && user_key.Compare(Slice(lower)) <= 0) return false;
    if (has_upper && user_key.Compare(Slice(upper)) > 0) return false;
    return true;
  }
};

/// Progressive optimization levels of the compaction engine, matching the
/// paper's design narrative (Sections V-A .. V-D). Used for the ablation
/// study in bench_ablation_pipeline.
enum class OptLevel {
  /// Fig. 2: combined Decoder/Encoder, one read pointer per SSTable
  /// (decode pauses for each index-block round trip), key and value move
  /// through every module, 1 byte/cycle datapaths.
  kBasic = 0,
  /// Fig. 3: + index/data block separation. Two read pointers; data
  /// blocks are prefetched and streamed, index decode time hidden;
  /// index entries written back eagerly by the Index Block Encoder.
  kBlockSeparation = 1,
  /// Fig. 4: + key-value separation. The Comparer sees keys only;
  /// values bypass to the Key-Value Transfer / output buffer.
  kKeyValueSeparation = 2,
  /// Fig. 5: + data transmission bandwidth. Value datapath widened to V
  /// bytes/cycle; AXI input/output run at W_in/W_out bytes/cycle with
  /// stream downsizers/upsizers.
  kFullBandwidth = 3,
};

/// Static configuration of one engine instance. Defaults correspond to
/// the paper's 2-input configuration (Section VII-B).
struct EngineConfig {
  /// Number of inputs N the engine is synthesized for. 2 for ordinary
  /// leveled compaction, 9 for Level-0 / lazy-compaction support
  /// (Section VII-C).
  int num_inputs = 2;

  /// Value datapath width V in bytes/cycle (paper: 8..64). Only
  /// effective at OptLevel::kFullBandwidth; narrower levels use 1.
  int value_width = 16;

  /// AXI read width W_in in bytes/cycle for data block fetch (<= 64).
  int input_width = 64;

  /// AXI write width W_out in bytes/cycle for output blocks (<= 64).
  int output_width = 64;

  /// Engine clock. The KCU1500 design runs at 200 MHz.
  double clock_mhz = 200.0;

  /// Data block flush threshold (paper Section V-A: e.g. 4 KB).
  size_t data_block_threshold = 4 * 1024;

  /// SSTable rollover threshold (paper Section V-A: e.g. 2 MB).
  size_t sstable_threshold = 2 * 1024 * 1024;

  /// DRAM read latency in cycles (paper Section V-B: 7-8 cycles at
  /// 200-300 MHz).
  int dram_read_latency = 8;

  /// Per-input decoded-record FIFO depth (records buffered between the
  /// Data Block Decoder and the Comparer / Key-Value Transfer).
  int record_fifo_depth = 32;

  /// Number of data blocks the fetcher may prefetch ahead of the
  /// decoder (>= 2 enables streaming; 1 models the basic design's
  /// fetch-on-demand behaviour).
  int block_prefetch_depth = 4;

  /// Snappy-compress output data blocks (matches LevelDB's on-disk
  /// format; can be disabled for experiments).
  bool compress_output = true;

  /// Kernel watchdog: if a run exceeds this many simulated cycles the
  /// host declares a kernel timeout and kills the job (0 = no deadline).
  /// Sized from the input bytes by the host executor; a hung kernel on a
  /// real card is detected exactly this way.
  uint64_t kernel_deadline_cycles = 0;

  OptLevel opt_level = OptLevel::kFullBandwidth;

  /// Returns the effective value datapath width for the configured
  /// optimization level.
  int EffectiveValueWidth() const {
    return opt_level == OptLevel::kFullBandwidth ? value_width : 1;
  }

  /// Returns the effective AXI input width (pre-bandwidth designs
  /// consumed the stream at datapath width).
  int EffectiveInputWidth() const {
    return opt_level == OptLevel::kFullBandwidth ? input_width : 8;
  }

  int EffectiveOutputWidth() const {
    return opt_level == OptLevel::kFullBandwidth ? output_width : 8;
  }

  bool KeyValueSeparated() const {
    return opt_level >= OptLevel::kKeyValueSeparation;
  }

  bool BlocksSeparated() const {
    return opt_level >= OptLevel::kBlockSeparation;
  }

  double CyclesToMicros(uint64_t cycles) const {
    return static_cast<double>(cycles) / clock_mhz;
  }
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_CONFIG_H_
