#include "fpga/timing_model.h"

#include <algorithm>

namespace fcae {
namespace fpga {

namespace {

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

uint64_t CeilLog2(uint64_t n) {
  uint64_t result = 0;
  uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    result++;
  }
  return result;
}

}  // namespace

uint64_t TimingModel::DecoderPeriod(uint64_t key_len,
                                    uint64_t value_len) const {
  return key_len + CeilDiv(value_len, config_.EffectiveValueWidth());
}

uint64_t TimingModel::ComparerPeriod(uint64_t key_len,
                                     uint64_t value_len) const {
  uint64_t unit = key_len;
  if (!config_.KeyValueSeparated()) {
    unit += value_len;
  }
  return (2 + CeilLog2(static_cast<uint64_t>(config_.num_inputs))) * unit;
}

uint64_t TimingModel::TransferPeriod(uint64_t key_len,
                                     uint64_t value_len) const {
  if (config_.KeyValueSeparated()) {
    return std::max(key_len,
                    CeilDiv(value_len, config_.EffectiveValueWidth()));
  }
  return key_len + value_len;
}

uint64_t TimingModel::EncoderPeriod(uint64_t key_len,
                                    uint64_t value_len) const {
  if (config_.KeyValueSeparated()) {
    return key_len;
  }
  return key_len + value_len;
}

uint64_t TimingModel::BottleneckPeriod(uint64_t key_len,
                                       uint64_t value_len) const {
  return std::max({DecoderPeriod(key_len, value_len),
                   ComparerPeriod(key_len, value_len),
                   TransferPeriod(key_len, value_len),
                   EncoderPeriod(key_len, value_len)});
}

Bottleneck TimingModel::BottleneckModule(uint64_t key_len,
                                         uint64_t value_len) const {
  const uint64_t period = BottleneckPeriod(key_len, value_len);
  if (period == DecoderPeriod(key_len, value_len)) {
    return Bottleneck::kDataBlockDecoder;
  }
  if (period == ComparerPeriod(key_len, value_len)) {
    return Bottleneck::kComparer;
  }
  if (period == TransferPeriod(key_len, value_len)) {
    return Bottleneck::kKeyValueTransfer;
  }
  return Bottleneck::kDataBlockEncoder;
}

double TimingModel::PredictMicros(uint64_t num_records, uint64_t key_len,
                                  uint64_t value_len) const {
  return config_.CyclesToMicros(num_records *
                                BottleneckPeriod(key_len, value_len));
}

double TimingModel::PredictPipelinedMicros(int shards,
                                           uint64_t records_per_shard,
                                           uint64_t key_len,
                                           uint64_t value_len,
                                           double dma_in_micros,
                                           double dma_out_micros) const {
  if (shards <= 0) return 0;
  const double kernel = PredictMicros(records_per_shard, key_len, value_len);
  const double fill = dma_in_micros + kernel + dma_out_micros;
  const double beat = std::max({dma_in_micros, kernel, dma_out_micros});
  return fill + (shards - 1) * beat;
}

double TimingModel::PredictSpeedMBps(uint64_t key_len,
                                     uint64_t value_len) const {
  // Bytes of input consumed per record vs. cycles per record.
  const double bytes_per_record = static_cast<double>(key_len + value_len);
  const double cycles = static_cast<double>(
      BottleneckPeriod(key_len, value_len));
  const double bytes_per_second =
      bytes_per_record / cycles * config_.clock_mhz * 1e6;
  return bytes_per_second / (1024.0 * 1024.0);
}

bool TimingModel::DecoderBound(uint64_t key_len, uint64_t value_len) const {
  // Section V-D1: L_key + L_value/V > (2 + ceil(log2 N)) * L_key
  //           <=> L_key < L_value / ((1 + ceil(log2 N)) * V).
  return DecoderPeriod(key_len, value_len) >
         ComparerPeriod(key_len, value_len);
}

const char* TimingModel::BottleneckName(Bottleneck b) {
  switch (b) {
    case Bottleneck::kDataBlockDecoder:
      return "DataBlockDecoder";
    case Bottleneck::kComparer:
      return "Comparer";
    case Bottleneck::kKeyValueTransfer:
      return "KeyValueTransfer";
    case Bottleneck::kDataBlockEncoder:
      return "DataBlockEncoder";
  }
  return "unknown";
}

}  // namespace fpga
}  // namespace fcae
