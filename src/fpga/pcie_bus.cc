#include "fpga/pcie_bus.h"

#include <algorithm>

namespace fcae {
namespace fpga {

void PcieBus::BeginJob(int card_id) {
  MutexLock lock(&mutex_);
  CardActivity& card = active_[card_id];
  if (card.jobs == 0) {
    card.in_micros = 0;
    card.out_micros = 0;
  }
  card.jobs++;
}

void PcieBus::EndJob(int card_id) {
  MutexLock lock(&mutex_);
  auto it = active_.find(card_id);
  if (it == active_.end()) return;
  if (--it->second.jobs <= 0) {
    active_.erase(it);
  }
}

double PcieBus::Charge(int card_id, double micros, bool inbound) {
  if (micros <= 0) return 0;
  MutexLock lock(&mutex_);
  double others = 0;
  for (const auto& entry : active_) {
    if (entry.first == card_id) continue;
    if (entry.second.jobs <= 0) continue;
    others += inbound ? entry.second.in_micros : entry.second.out_micros;
  }
  CardActivity& card = active_[card_id];
  if (inbound) {
    card.in_micros += micros;
  } else {
    card.out_micros += micros;
  }
  const double wait = std::min(micros, others);
  if (wait > 0) {
    contended_bursts_++;
    contention_micros_ += wait;
  }
  return wait;
}

double PcieBus::ChargeIn(int card_id, double micros) {
  return Charge(card_id, micros, /*inbound=*/true);
}

double PcieBus::ChargeOut(int card_id, double micros) {
  return Charge(card_id, micros, /*inbound=*/false);
}

uint64_t PcieBus::contended_bursts() const {
  MutexLock lock(&mutex_);
  return contended_bursts_;
}

double PcieBus::contention_micros() const {
  MutexLock lock(&mutex_);
  return contention_micros_;
}

}  // namespace fpga
}  // namespace fcae
