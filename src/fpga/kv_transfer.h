#ifndef FCAE_FPGA_KV_TRANSFER_H_
#define FCAE_FPGA_KV_TRANSFER_H_

#include <cstdint>
#include <vector>

#include "fpga/config.h"
#include "fpga/kv_record.h"
#include "fpga/sim/fifo.h"

namespace fcae {
namespace fpga {

class Comparer;
class InputDecoder;

/// The Key-Value Transfer module (paper Fig. 4): consumes the Comparer's
/// selections, pops the matching record from the selected input's
/// copy-key/value FIFOs, and forwards surviving records toward the
/// Encoder. Dropped records are consumed and discarded here — the FIFO
/// element can be used only once, so even dropped entries must be
/// popped.
///
/// Timing: with key-value separation the key and value move on parallel
/// paths, so the period is max(L_key, ceil(L_value / V)); without it the
/// record moves serially: L_key + L_value (Tables II/III).
class KeyValueTransfer {
 public:
  /// `bounds`, when non-null and active, restricts the output to user
  /// keys in (bounds->lower, bounds->upper]: records outside are
  /// consumed and discarded exactly like validity-check drops (staging
  /// trims at block granularity only, so boundary blocks leak a few
  /// out-of-shard records the transfer must filter). Borrowed; must
  /// outlive the run.
  KeyValueTransfer(const EngineConfig& config, Comparer* comparer,
                   std::vector<InputDecoder*> inputs,
                   const KeyBounds* bounds = nullptr);

  KeyValueTransfer(const KeyValueTransfer&) = delete;
  KeyValueTransfer& operator=(const KeyValueTransfer&) = delete;

  void Tick();

  bool Done() const;

  /// Surviving records headed to the Data Block Encoder.
  Fifo<KvRecord>& output() { return out_fifo_; }

  uint64_t transferred() const { return transferred_; }
  uint64_t busy_cycles() const { return busy_cycles_; }
  uint64_t dropped() const { return dropped_; }
  /// Subset of dropped(): records discarded by the shard bounds filter
  /// rather than by the Validity Check.
  uint64_t bounds_dropped() const { return bounds_dropped_; }

 private:
  const EngineConfig& config_;
  Comparer* comparer_;
  std::vector<InputDecoder*> inputs_;
  const KeyBounds* const bounds_;

  Fifo<KvRecord> out_fifo_;

  uint64_t busy_ = 0;
  bool record_ready_ = false;
  bool pending_drop_ = false;
  KvRecord pending_record_;

  uint64_t transferred_ = 0;
  uint64_t busy_cycles_ = 0;
  uint64_t dropped_ = 0;
  uint64_t bounds_dropped_ = 0;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_KV_TRANSFER_H_
