#ifndef FCAE_FPGA_DEVICE_MEMORY_H_
#define FCAE_FPGA_DEVICE_MEMORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace fcae {
namespace fpga {

// The host/device memory interface of Section VI-B (Figs. 7 and 8).
// Because the engine's Index and Data Block Decoders/Encoders are
// separated, index blocks and data blocks live in distinct memory
// regions, and a MetaIn/MetaOut block carries the bookkeeping.

/// Placement of one input SSTable inside the staged memory regions.
/// Offsets are relative to the owning DeviceInput's region starts. The
/// staged bytes are the *unmodified* on-disk representation: the index
/// block as stored in the file (with its compression trailer), and the
/// file's data-block region verbatim, so the BlockHandles inside the
/// index block address the data region directly.
struct SstableDescriptor {
  uint64_t index_offset = 0;  // Into the input's index block memory.
  uint64_t index_size = 0;    // Block bytes + 5-byte trailer.
  uint64_t data_offset = 0;   // Into the input's data block memory.
  uint64_t data_size = 0;     // Whole data-block region of the file.
};

/// One compaction input: a sorted run of one or more SSTables (level-0
/// inputs have exactly one table each; a level>=1 input concatenates the
/// level's participating tables, paper Section IV step 2).
struct DeviceInput {
  std::vector<SstableDescriptor> sstables;  // MetaIn contents.
  std::string index_memory;                 // Fig. 7 Index Block Memory.
  std::string data_memory;                  // Fig. 7 Data Block Memory.

  uint64_t TotalBytes() const {
    return index_memory.size() + data_memory.size();
  }
};

/// One index entry produced by the Index Block Encoder: the largest key
/// in the block plus the handle of the block in the output data memory.
struct OutputIndexEntry {
  std::string last_key;  // Internal key (user key + mark).
  uint64_t offset = 0;   // Into the owning output table's data memory.
  uint64_t size = 0;     // Block bytes (without trailer).
};

/// One output SSTable assembled on the device. MetaOut additionally
/// records the smallest and largest key of each table, which the host
/// needs for the version edit (paper Section V-A: "the smallest and the
/// largest key of each SSTable are also recorded").
struct DeviceOutputTable {
  std::string data_memory;  // Encoded data blocks + trailers.
  std::vector<OutputIndexEntry> index_entries;
  std::string smallest_key;  // Internal keys.
  std::string largest_key;
  uint64_t num_entries = 0;  // Key-value pairs in the table.
};

/// MetaOut: everything returned to the host besides the raw block bytes.
struct DeviceOutput {
  std::vector<DeviceOutputTable> tables;

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const DeviceOutputTable& t : tables) {
      total += t.data_memory.size();
      for (const OutputIndexEntry& e : t.index_entries) {
        total += e.last_key.size() + 16;
      }
    }
    return total;
  }
};

/// Serializes MetaIn descriptors to the flat layout DMA'd to the card
/// (Fig. 8): #SSTables then per-table offsets/sizes.
void EncodeMetaIn(const std::vector<SstableDescriptor>& sstables,
                  std::string* dst);
Status DecodeMetaIn(const Slice& src, std::vector<SstableDescriptor>* out);

/// Serializes one output table's index entries for the return DMA.
void EncodeOutputIndex(const std::vector<OutputIndexEntry>& entries,
                       std::string* dst);
Status DecodeOutputIndex(const Slice& src,
                         std::vector<OutputIndexEntry>* out);

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_DEVICE_MEMORY_H_
