#include "fpga/compaction_engine.h"

#include <algorithm>

#include "fpga/comparer.h"
#include "fpga/decoder.h"
#include "fpga/encoder.h"
#include "fpga/kv_transfer.h"
#include "lsm/dbformat.h"
#include "util/comparator.h"

namespace fcae {
namespace fpga {

/// Owns the module graph and the Options the encoder's BlockBuilder
/// needs (keys flowing through the engine are internal keys, so the
/// builder is configured with the internal key comparator).
struct CompactionEngine::Pipeline {
  Pipeline(const EngineConfig& config,
           const std::vector<const DeviceInput*>& inputs,
           uint64_t smallest_snapshot, bool drop_deletions,
           DeviceOutput* output, const KeyBounds* bounds)
      : icmp(BytewiseComparator()) {
    table_options.comparator = &icmp;
    table_options.block_restart_interval = 16;
    table_options.block_size = config.data_block_threshold;

    for (size_t i = 0; i < inputs.size(); i++) {
      decoders.push_back(std::make_unique<InputDecoder>(
          config, inputs[i], static_cast<int>(i)));
    }
    std::vector<InputDecoder*> decoder_ptrs;
    for (auto& d : decoders) decoder_ptrs.push_back(d.get());

    comparer = std::make_unique<Comparer>(config, decoder_ptrs,
                                          smallest_snapshot, drop_deletions);
    transfer = std::make_unique<KeyValueTransfer>(config, comparer.get(),
                                                  decoder_ptrs, bounds);
    encoder = std::make_unique<OutputEncoder>(config, table_options,
                                              transfer.get(), output);
  }

  InternalKeyComparator icmp;
  Options table_options;
  std::vector<std::unique_ptr<InputDecoder>> decoders;
  std::unique_ptr<Comparer> comparer;
  std::unique_ptr<KeyValueTransfer> transfer;
  std::unique_ptr<OutputEncoder> encoder;
};

CompactionEngine::CompactionEngine(const EngineConfig& config,
                                   std::vector<const DeviceInput*> inputs,
                                   uint64_t smallest_snapshot,
                                   bool drop_deletions, DeviceOutput* output,
                                   const KeyBounds* bounds)
    : config_(config),
      inputs_(std::move(inputs)),
      smallest_snapshot_(smallest_snapshot),
      drop_deletions_(drop_deletions),
      output_(output),
      bounds_(bounds) {
  assert(static_cast<int>(inputs_.size()) <= config_.num_inputs);
  pipeline_ = std::make_unique<Pipeline>(config_, inputs_, smallest_snapshot_,
                                         drop_deletions_, output_, bounds_);
}

CompactionEngine::~CompactionEngine() = default;

Status CompactionEngine::Run() {
  Pipeline& p = *pipeline_;

  for (const DeviceInput* input : inputs_) {
    stats_.input_bytes += input->TotalBytes();
  }

  // Hard bound: even a fully serialized pipeline processes at least one
  // byte every few cycles; anything beyond this is a wiring bug.
  const uint64_t kCycleBound =
      1000000 + 400ull * (stats_.input_bytes + 1024) *
                    static_cast<uint64_t>(config_.num_inputs);

  bool upstream_done_notified = false;
  while (!p.encoder->Done()) {
    // Downstream to upstream so freed space propagates next cycle.
    p.encoder->Tick();
    p.transfer->Tick();
    p.comparer->Tick();
    for (auto& decoder : p.decoders) {
      decoder->Tick();
    }
    stats_.cycles++;

    if (!upstream_done_notified && p.transfer->Done()) {
      p.encoder->NotifyUpstreamDone();
      upstream_done_notified = true;
    }

    for (auto& decoder : p.decoders) {
      if (!decoder->status().ok()) {
        return decoder->status();
      }
    }
    if (stats_.cycles > kCycleBound) {
      return Status::Corruption("engine wedged: cycle bound exceeded");
    }
  }

  for (auto& decoder : p.decoders) {
    stats_.records_in += decoder->records_decoded();
    stats_.decoder_fetch_stalls += decoder->fetch_stall_cycles();
    stats_.decoder_backpressure += decoder->backpressure_cycles();
    stats_.decoder_busy += decoder->busy_cycles();
    stats_.fifo_key_stream_peak =
        std::max<uint64_t>(stats_.fifo_key_stream_peak,
                           decoder->key_stream().HighWater());
    stats_.fifo_transfer_peak =
        std::max<uint64_t>(stats_.fifo_transfer_peak,
                           decoder->records_for_transfer().HighWater());
  }
  stats_.records_out = p.transfer->transferred();
  stats_.records_dropped = p.transfer->dropped();
  stats_.records_bounds_dropped = p.transfer->bounds_dropped();
  stats_.comparer_waits = p.comparer->wait_cycles();
  stats_.encoder_write_stalls = p.encoder->write_stall_cycles();
  stats_.comparer_busy = p.comparer->busy_cycles();
  stats_.transfer_busy = p.transfer->busy_cycles();
  stats_.encoder_busy = p.encoder->busy_cycles();
  stats_.fifo_selection_peak = p.comparer->selections().HighWater();
  stats_.fifo_output_peak = p.transfer->output().HighWater();
  stats_.fifo_write_queue_peak = p.encoder->write_queue_high_water();
  for (const DeviceOutputTable& t : output_->tables) {
    stats_.output_bytes += t.data_memory.size();
  }
  return Status::OK();
}

BottleneckReport AttributeBottleneck(const EngineStats& stats,
                                     int num_lanes) {
  BottleneckReport report;
  if (stats.cycles == 0) return report;
  const double lanes = num_lanes > 0 ? num_lanes : 1;
  report.decoder_share =
      stats.Utilization(stats.decoder_busy) / lanes;
  report.comparer_share = stats.Utilization(stats.comparer_busy);
  report.transfer_share = stats.Utilization(stats.transfer_busy);
  report.encoder_share = stats.Utilization(stats.encoder_busy);

  report.module = "decoder";
  report.share = report.decoder_share;
  if (report.comparer_share > report.share) {
    report.module = "comparer";
    report.share = report.comparer_share;
  }
  if (report.transfer_share > report.share) {
    report.module = "transfer";
    report.share = report.transfer_share;
  }
  if (report.encoder_share > report.share) {
    report.module = "encoder";
    report.share = report.encoder_share;
  }
  return report;
}

}  // namespace fpga
}  // namespace fcae
