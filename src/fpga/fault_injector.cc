#include "fpga/fault_injector.h"

namespace fcae {
namespace fpga {

const char* DeviceFaultClassName(DeviceFaultClass cls) {
  switch (cls) {
    case DeviceFaultClass::kNone:
      return "none";
    case DeviceFaultClass::kDmaCorruption:
      return "dma-corruption";
    case DeviceFaultClass::kKernelTimeout:
      return "kernel-timeout";
    case DeviceFaultClass::kDeviceBusy:
      return "device-busy";
    case DeviceFaultClass::kCardDropped:
      return "card-dropped";
  }
  return "unknown";
}

DeviceFaultInjector::DeviceFaultInjector(const DeviceFaultConfig& config)
    : config_(config), rng_(config.seed) {}

FaultDecision DeviceFaultInjector::NextLaunch() {
  MutexLock lock(&mutex_);
  launches_++;

  FaultDecision decision;
  // Sticky state dominates everything else.
  if (card_dropped_) {
    decision.cls = DeviceFaultClass::kCardDropped;
    counts_[static_cast<int>(decision.cls)]++;
    return decision;
  }
  if (config_.card_drop_at_launch != 0 &&
      launches_ == config_.card_drop_at_launch) {
    card_dropped_ = true;
    decision.cls = DeviceFaultClass::kCardDropped;
    counts_[static_cast<int>(decision.cls)]++;
    return decision;
  }

  // One-shots override the random stream for their launch ordinal.
  for (auto it = one_shots_.begin(); it != one_shots_.end(); ++it) {
    if (it->first == launches_) {
      decision = it->second;
      one_shots_.erase(it);
      if (decision.cls == DeviceFaultClass::kCardDropped) {
        card_dropped_ = true;
      }
      if (decision.cls == DeviceFaultClass::kDmaCorruption) {
        decision.corruption_seed = rng_.Next64();
      }
      counts_[static_cast<int>(decision.cls)]++;
      return decision;
    }
  }

  // The random transient stream. Every launch consumes exactly one
  // top-level draw so the fault positions depend only on (seed, launch
  // ordinal), not on which classes were drawn before.
  const double p = rng_.NextDouble();
  if (config_.transient_rate <= 0 || p >= config_.transient_rate) {
    return decision;  // kNone.
  }
  const double total = config_.dma_corruption_weight +
                       config_.kernel_timeout_weight +
                       config_.device_busy_weight;
  if (total <= 0) {
    return decision;
  }
  double pick = rng_.NextDouble() * total;
  if (pick < config_.dma_corruption_weight) {
    decision.cls = DeviceFaultClass::kDmaCorruption;
    decision.silent = rng_.NextDouble() < config_.silent_corruption_fraction;
    decision.corruption_seed = rng_.Next64();
  } else if (pick <
             config_.dma_corruption_weight + config_.kernel_timeout_weight) {
    decision.cls = DeviceFaultClass::kKernelTimeout;
  } else {
    decision.cls = DeviceFaultClass::kDeviceBusy;
  }
  counts_[static_cast<int>(decision.cls)]++;
  return decision;
}

void DeviceFaultInjector::ArmOneShot(DeviceFaultClass cls,
                                     uint64_t launches_from_now,
                                     bool silent) {
  MutexLock lock(&mutex_);
  FaultDecision decision;
  decision.cls = cls;
  decision.silent = silent;
  one_shots_.emplace_back(launches_ + launches_from_now, decision);
}

void DeviceFaultInjector::RepairCard() {
  MutexLock lock(&mutex_);
  card_dropped_ = false;
}

bool DeviceFaultInjector::card_dropped() const {
  MutexLock lock(&mutex_);
  return card_dropped_;
}

uint64_t DeviceFaultInjector::launches() const {
  MutexLock lock(&mutex_);
  return launches_;
}

uint64_t DeviceFaultInjector::count(DeviceFaultClass cls) const {
  MutexLock lock(&mutex_);
  return counts_[static_cast<int>(cls)];
}

uint64_t DeviceFaultInjector::total_faults() const {
  MutexLock lock(&mutex_);
  uint64_t total = 0;
  for (int i = 1; i < kNumDeviceFaultClasses; i++) {
    total += counts_[i];
  }
  return total;
}

}  // namespace fpga
}  // namespace fcae
