#ifndef FCAE_FPGA_COMPARER_H_
#define FCAE_FPGA_COMPARER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/config.h"
#include "fpga/kv_record.h"
#include "fpga/sim/fifo.h"

namespace fcae {
namespace fpga {

class InputDecoder;

/// The Comparer module (paper Section V-A): the Key Compare tree selects
/// the smallest key across the N input key streams and the Validity
/// Check inspects its mark fields to decide whether the record survives
/// (drop superseded versions and obsolete deletion markers). The result
/// — input number + drop flag — feeds the Key-Value Transfer.
///
/// Timing: (2 + ceil(log2 N)) * L_key cycles per selection ("key read +
/// key compare + check key if existing", Table II); when key-value
/// separation is disabled the whole record (key + value) moves through
/// the compare datapath, inflating L_key to L_key + L_value.
class Comparer {
 public:
  Comparer(const EngineConfig& config, std::vector<InputDecoder*> inputs,
           uint64_t smallest_snapshot, bool drop_deletions);

  Comparer(const Comparer&) = delete;
  Comparer& operator=(const Comparer&) = delete;

  void Tick();

  /// True when all inputs are exhausted and no selection is pending.
  bool Done() const;

  Fifo<Selection>& selections() { return selection_fifo_; }

  uint64_t selections_made() const { return selections_made_; }
  uint64_t busy_cycles() const { return busy_cycles_; }
  uint64_t drops() const { return drops_; }
  uint64_t wait_cycles() const { return wait_cycles_; }

 private:
  /// Compares two internal keys: user key ascending, mark descending.
  static int CompareInternalKeys(const std::string& a, const std::string& b);

  /// The Validity Check: decides whether the selected record is dropped.
  bool CheckDrop(const std::string& internal_key);

  const EngineConfig& config_;
  std::vector<InputDecoder*> inputs_;
  const uint64_t smallest_snapshot_;
  const bool drop_deletions_;

  Fifo<Selection> selection_fifo_;

  uint64_t busy_ = 0;
  bool selection_ready_ = false;
  Selection pending_;

  // Validity Check state: tracks the user key last seen and the
  // sequence of its previous occurrence (identical rule to the CPU
  // executor so both paths produce the same output tables).
  std::string current_user_key_;
  bool has_current_user_key_ = false;
  uint64_t last_sequence_for_key_ = ~0ull;

  uint64_t selections_made_ = 0;
  uint64_t busy_cycles_ = 0;
  uint64_t drops_ = 0;
  uint64_t wait_cycles_ = 0;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_COMPARER_H_
