#ifndef FCAE_FPGA_TIMING_MODEL_H_
#define FCAE_FPGA_TIMING_MODEL_H_

#include <cstdint>
#include <string>

#include "fpga/config.h"

namespace fcae {
namespace fpga {

/// Which module bounds the pipeline's steady-state rate.
enum class Bottleneck {
  kDataBlockDecoder,
  kComparer,
  kKeyValueTransfer,
  kDataBlockEncoder,
};

/// The closed-form pipeline model of Tables II and III: per-module
/// periods in cycles per key-value pair, as a function of key length
/// (including the 8-byte mark field), value length, datapath width V and
/// input count N. Cross-checked against the cycle simulator in
/// tests/timing_model_test.cc.
class TimingModel {
 public:
  explicit TimingModel(const EngineConfig& config) : config_(config) {}

  /// Table III, row "Data Block Decoder": L_key + ceil(L_value / V).
  uint64_t DecoderPeriod(uint64_t key_len, uint64_t value_len) const;

  /// Table III, row "Comparer": (2 + ceil(log2 N)) * L_key.
  uint64_t ComparerPeriod(uint64_t key_len, uint64_t value_len) const;

  /// Table III, row "Key-Value Transfer": max(L_key, ceil(L_value/V)).
  uint64_t TransferPeriod(uint64_t key_len, uint64_t value_len) const;

  /// Table III, row "Data Block Encoder": L_key.
  uint64_t EncoderPeriod(uint64_t key_len, uint64_t value_len) const;

  /// The longest per-record period across the pipeline.
  uint64_t BottleneckPeriod(uint64_t key_len, uint64_t value_len) const;

  Bottleneck BottleneckModule(uint64_t key_len, uint64_t value_len) const;

  /// Predicted kernel time for merging `num_records` records.
  double PredictMicros(uint64_t num_records, uint64_t key_len,
                       uint64_t value_len) const;

  /// Predicted end-to-end time for `shards` equal sub-compaction shards
  /// streamed through the transfer-in -> kernel -> transfer-out device
  /// pipeline with double-buffered DMA (the host's
  /// FcaeDevice::ModelPipeline): the first shard fills the pipeline and
  /// every further shard adds only the slowest stage,
  ///   total = d_in + d_kernel + d_out
  ///         + (shards - 1) * max(d_in, d_kernel, d_out).
  /// `dma_in_micros` / `dma_out_micros` are the per-shard transfer times
  /// (see fpga::PcieModel::TransferMicros). With shards == 1 this is the
  /// plain serial sum — pipelining needs a successor to overlap with.
  double PredictPipelinedMicros(int shards, uint64_t records_per_shard,
                                uint64_t key_len, uint64_t value_len,
                                double dma_in_micros,
                                double dma_out_micros) const;

  /// Predicted compaction speed (input MB/s) for fixed-size records.
  double PredictSpeedMBps(uint64_t key_len, uint64_t value_len) const;

  /// The paper's crossover condition (Section V-D1): the Data Block
  /// Decoder is the bottleneck iff
  ///   L_key < L_value / ((1 + ceil(log2 N)) * V).
  bool DecoderBound(uint64_t key_len, uint64_t value_len) const;

  static const char* BottleneckName(Bottleneck b);

 private:
  EngineConfig config_;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_TIMING_MODEL_H_
