#ifndef FCAE_FPGA_FAULT_INJECTOR_H_
#define FCAE_FPGA_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace fcae {
namespace fpga {

/// The fault classes a PCIe-attached accelerator exhibits in production.
/// Transient classes clear on retry; kCardDropped is sticky: every
/// subsequent kernel launch fails until RepairCard() (a hot reset /
/// driver rebind in the real world).
enum class DeviceFaultClass {
  kNone = 0,
  /// Bytes of the output DMA arrive corrupted. A detected corruption is
  /// caught by the link-level LCRC and costs one retransfer; a *silent*
  /// corruption evades it and must be caught by host-side verification
  /// before the result reaches the manifest.
  kDmaCorruption = 1,
  /// The kernel missed its simulated-cycle deadline (a hang or a
  /// pathological input); the host kills and may relaunch it.
  kKernelTimeout = 2,
  /// The DMA engine or kernel queue refused the job; immediately
  /// retryable.
  kDeviceBusy = 3,
  /// The card dropped off the bus (surprise link-down). Sticky.
  kCardDropped = 4,
};

constexpr int kNumDeviceFaultClasses = 5;

const char* DeviceFaultClassName(DeviceFaultClass cls);

/// Configuration of the seeded fault model.
struct DeviceFaultConfig {
  /// Seed of the deterministic fault stream: the same seed and the same
  /// sequence of kernel launches reproduce the same faults.
  uint32_t seed = 1;

  /// Probability that any given kernel launch draws a transient fault.
  double transient_rate = 0.0;

  /// Relative weights of the transient classes drawn on a fault.
  double dma_corruption_weight = 1.0;
  double kernel_timeout_weight = 1.0;
  double device_busy_weight = 1.0;

  /// Fraction of DMA corruptions that evade the link CRC (silent): the
  /// transfer "succeeds" with flipped bytes and only host verification
  /// can catch it. The remainder are detected and retransferred.
  double silent_corruption_fraction = 0.5;

  /// If non-zero, the card drops off the bus (sticky) on this 1-based
  /// kernel launch ordinal.
  uint64_t card_drop_at_launch = 0;
};

/// What the injector decided for one kernel launch.
struct FaultDecision {
  DeviceFaultClass cls = DeviceFaultClass::kNone;
  /// Only meaningful for kDmaCorruption.
  bool silent = false;
  /// Seed for choosing which output bytes a silent corruption flips.
  uint64_t corruption_seed = 0;
};

/// DeviceFaultInjector is the fault hook of FcaeDevice: the device draws
/// one FaultDecision per kernel launch (ExecuteCompaction or each
/// tournament pass) and simulates the drawn fault. Deterministic from
/// the seed, thread-safe, with per-class counters.
class DeviceFaultInjector {
 public:
  explicit DeviceFaultInjector(const DeviceFaultConfig& config);

  DeviceFaultInjector(const DeviceFaultInjector&) = delete;
  DeviceFaultInjector& operator=(const DeviceFaultInjector&) = delete;

  /// Draws the fault decision for the next kernel launch and counts it.
  FaultDecision NextLaunch() EXCLUDES(mutex_);

  /// Arms a one-shot fault on the Nth launch *from now* (1 = the very
  /// next launch). One-shots override the random stream for that launch;
  /// used by tests to hit a precise tournament pass.
  void ArmOneShot(DeviceFaultClass cls, uint64_t launches_from_now,
                  bool silent = false) EXCLUDES(mutex_);

  /// Clears a sticky card-drop (models a hot reset + driver rebind).
  void RepairCard() EXCLUDES(mutex_);

  bool card_dropped() const EXCLUDES(mutex_);
  uint64_t launches() const EXCLUDES(mutex_);
  uint64_t count(DeviceFaultClass cls) const EXCLUDES(mutex_);
  uint64_t total_faults() const EXCLUDES(mutex_);

 private:
  const DeviceFaultConfig config_;

  mutable Mutex mutex_;
  Random rng_ GUARDED_BY(mutex_);
  uint64_t launches_ GUARDED_BY(mutex_) = 0;
  bool card_dropped_ GUARDED_BY(mutex_) = false;
  std::array<uint64_t, kNumDeviceFaultClasses> counts_ GUARDED_BY(mutex_){};
  // One-shot faults by launch ordinal.
  std::vector<std::pair<uint64_t, FaultDecision>> one_shots_
      GUARDED_BY(mutex_);
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_FAULT_INJECTOR_H_
