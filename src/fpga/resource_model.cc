#include "fpga/resource_model.h"

#include <cstdio>
#include <vector>

namespace fcae {
namespace fpga {

std::string ResourceUsage::ToString() const {
  char buf[100];
  std::snprintf(buf, sizeof(buf), "BRAM %.0f%%  FF %.0f%%  LUT %.0f%%%s",
                bram_pct, ff_pct, lut_pct, Fits() ? "" : "  (does not fit)");
  return buf;
}

namespace {

// Calibrated to Table VII. Terms: constant (control, PCIe/AXI shell,
// comparer tree, encoder), per-input lane, lane x W_in (burst buffer),
// lane x V (value datapath), and the Stream Downsizer network, whose
// cost scales with W_in x min(V, W_in - V): a W_in -> V converter is
// largest at intermediate ratios and degenerates to a passthrough as V
// approaches W_in. Max residual against Table VII: < 0.3 %.
struct Coefficients {
  double base;
  double per_input;
  double per_input_win;
  double per_input_v;
  double per_input_downsizer;

  double Eval(int n, int win, int v) const {
    const double dn = n;
    const double downsizer = static_cast<double>(win) *
                             static_cast<double>(v < win - v ? v : win - v);
    return base + per_input * dn + per_input_win * dn * win +
           per_input_v * dn * v + per_input_downsizer * dn * downsizer;
  }
};

constexpr Coefficients kBram = {11.990604, 0.840202, 0.020443, 0.052258,
                                -0.000027};
constexpr Coefficients kFf = {3.877364, 0.672758, 0.022037, 0.034012,
                              0.000417};
constexpr Coefficients kLut = {22.146901, 2.315504, 0.212741, 0.356802,
                               0.003208};

}  // namespace

ResourceUsage ResourceModel::Estimate(const EngineConfig& config) {
  ResourceUsage usage;
  const int n = config.num_inputs;
  const int win = config.EffectiveInputWidth();
  const int v = config.EffectiveValueWidth();
  usage.bram_pct = kBram.Eval(n, win, v);
  usage.ff_pct = kFf.Eval(n, win, v);
  usage.lut_pct = kLut.Eval(n, win, v);
  return usage;
}

EngineConfig ResourceModel::LargestFittingConfig(int num_inputs) {
  static const int kWidths[] = {64, 32, 16, 8};
  EngineConfig best;
  best.num_inputs = num_inputs;
  bool found = false;
  for (int win : kWidths) {
    for (int v : kWidths) {
      if (v > win) continue;  // Downsizer narrows; V <= W_in.
      EngineConfig candidate;
      candidate.num_inputs = num_inputs;
      candidate.input_width = win;
      candidate.value_width = v;
      if (!Fits(candidate)) continue;
      if (!found || candidate.input_width > best.input_width ||
          (candidate.input_width == best.input_width &&
           candidate.value_width > best.value_width)) {
        best = candidate;
        found = true;
      }
    }
  }
  return best;
}

}  // namespace fpga
}  // namespace fcae
