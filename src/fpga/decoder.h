#ifndef FCAE_FPGA_DECODER_H_
#define FCAE_FPGA_DECODER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fpga/block_parse.h"
#include "fpga/config.h"
#include "fpga/device_memory.h"
#include "fpga/kv_record.h"
#include "fpga/sim/fifo.h"

namespace fcae {
namespace fpga {

/// The decode side of one engine input, combining the three hardware
/// modules of Fig. 3: Index Block Decoder, the AXI fetch path with its
/// Stream Downsizer, and the Data Block Decoder.
///
/// Timing model (cycles at the engine clock):
///  - Index block load: dram_read_latency + ceil(index_bytes / 8); in the
///    block-separated designs this runs concurrently with data decoding
///    (prefetched), hiding its latency; in the basic design every data
///    block fetch first waits for its index entry round trip.
///  - Data block fetch: dram_read_latency + ceil(block_bytes / W_in).
///  - Record decode: key_len + ceil(value_len / V) per record
///    (Table II/III: "decoding key + value read"), where V = 1 below
///    OptLevel::kFullBandwidth.
///
/// Functionally the decoder performs the real work: trailer check,
/// Snappy decompression and restart-point expansion of every staged
/// block, yielding exact key-value records.
class InputDecoder {
 public:
  /// `input` must outlive the decoder.
  InputDecoder(const EngineConfig& config, const DeviceInput* input,
               int input_no);

  InputDecoder(const InputDecoder&) = delete;
  InputDecoder& operator=(const InputDecoder&) = delete;

  /// Advances one cycle.
  void Tick();

  /// True when every record of every staged SSTable has been pushed.
  bool Exhausted() const;

  /// Decoded records waiting for the Comparer (key stream). The paper
  /// splits this into an original key stream and a copy; the copy is
  /// consumed by the Key-Value Transfer from records_for_transfer().
  Fifo<KvRecord>& key_stream() { return key_fifo_; }

  /// Records (key copy + value) waiting for the Key-Value Transfer.
  Fifo<KvRecord>& records_for_transfer() { return transfer_fifo_; }

  /// Non-ok if staged data failed to parse (host-visible as an engine
  /// error interrupt).
  const Status& status() const { return status_; }

  uint64_t records_decoded() const { return records_decoded_; }
  uint64_t busy_cycles() const { return busy_cycles_; }
  uint64_t bytes_fetched() const { return bytes_fetched_; }
  uint64_t fetch_stall_cycles() const { return fetch_stall_cycles_; }
  uint64_t backpressure_cycles() const { return backpressure_cycles_; }

 private:
  struct PendingBlock {
    uint64_t stored_size = 0;           // Bytes incl. trailer (fetch cost).
    std::vector<ParsedEntry> entries;   // Functional contents.
  };

  /// Loads the next SSTable's index block (functional part); returns
  /// false when no tables remain.
  bool LoadNextIndexBlock();

  /// Starts fetching the next data block if one is known and the block
  /// FIFO has room.
  void TickFetcher();

  /// Consumes fetched blocks and emits records.
  void TickDecoder();

  const EngineConfig& config_;
  const DeviceInput* input_;
  const int input_no_;
  Status status_;

  // --- Index Block Decoder state ---
  size_t next_sstable_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> block_handles_;  // offset,size
  size_t next_handle_ = 0;
  uint64_t index_busy_ = 0;      // Cycles left loading an index block.
  uint64_t sstable_data_base_ = 0;  // Data offset of the current table.

  // --- Fetch path state ---
  Fifo<PendingBlock> block_fifo_;
  uint64_t fetch_busy_ = 0;      // Cycles left on the in-flight fetch.
  bool fetch_in_flight_ = false;
  PendingBlock fetching_block_;

  // --- Data Block Decoder state ---
  std::vector<ParsedEntry> current_entries_;
  size_t next_entry_ = 0;
  uint64_t decode_busy_ = 0;     // Cycles left on the current record.
  bool record_ready_ = false;    // Decoded record awaiting FIFO space.
  KvRecord pending_record_;

  // Statistics.
  uint64_t records_decoded_ = 0;
  uint64_t busy_cycles_ = 0;
  uint64_t bytes_fetched_ = 0;
  uint64_t fetch_stall_cycles_ = 0;
  uint64_t backpressure_cycles_ = 0;

  Fifo<KvRecord> key_fifo_;
  Fifo<KvRecord> transfer_fifo_;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_DECODER_H_
