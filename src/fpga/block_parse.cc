#include "fpga/block_parse.h"

#include "compress/snappy.h"
#include "table/format.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace fcae {
namespace fpga {

Status DecodeStoredBlock(const Slice& stored_block, bool verify_checksum,
                         std::string* contents) {
  contents->clear();
  if (stored_block.size() < kBlockTrailerSize) {
    return Status::Corruption("stored block shorter than trailer");
  }
  const size_t n = stored_block.size() - kBlockTrailerSize;
  const char* data = stored_block.data();

  if (verify_checksum) {
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != crc) {
      return Status::Corruption("block checksum mismatch in engine");
    }
  }

  switch (static_cast<CompressionType>(data[n])) {
    case kNoCompression:
      contents->assign(data, n);
      return Status::OK();
    case kSnappyCompression:
      if (!snappy::Uncompress(data, n, contents)) {
        return Status::Corruption("corrupted compressed block in engine");
      }
      return Status::OK();
    default:
      return Status::Corruption("bad block type in engine");
  }
}

Status ParseBlockEntries(const Slice& contents,
                         std::vector<ParsedEntry>* out) {
  if (contents.size() < sizeof(uint32_t)) {
    return Status::Corruption("block too small for restart count");
  }
  const uint32_t num_restarts =
      DecodeFixed32(contents.data() + contents.size() - sizeof(uint32_t));
  const size_t restart_bytes = (1 + num_restarts) * sizeof(uint32_t);
  if (restart_bytes > contents.size()) {
    return Status::Corruption("bad restart array");
  }
  const char* p = contents.data();
  const char* limit = contents.data() + contents.size() - restart_bytes;

  std::string last_key;
  while (p < limit) {
    uint32_t shared, non_shared, value_length;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p == nullptr) return Status::Corruption("bad entry (shared)");
    p = GetVarint32Ptr(p, limit, &non_shared);
    if (p == nullptr) return Status::Corruption("bad entry (non_shared)");
    p = GetVarint32Ptr(p, limit, &value_length);
    if (p == nullptr) return Status::Corruption("bad entry (value_length)");
    if (static_cast<size_t>(limit - p) < non_shared + value_length ||
        shared > last_key.size()) {
      return Status::Corruption("bad entry (lengths)");
    }
    ParsedEntry entry;
    entry.key.assign(last_key.data(), shared);
    entry.key.append(p, non_shared);
    entry.value.assign(p + non_shared, value_length);
    last_key = entry.key;
    p += non_shared + value_length;
    out->push_back(std::move(entry));
  }
  return Status::OK();
}

}  // namespace fpga
}  // namespace fcae
