#include "fpga/comparer.h"

#include <cstring>

#include "fpga/decoder.h"
#include "lsm/dbformat.h"

namespace fcae {
namespace fpga {

namespace {

uint64_t CeilLog2(uint64_t n) {
  uint64_t result = 0;
  uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    result++;
  }
  return result;
}

}  // namespace

Comparer::Comparer(const EngineConfig& config,
                   std::vector<InputDecoder*> inputs,
                   uint64_t smallest_snapshot, bool drop_deletions)
    : config_(config),
      inputs_(std::move(inputs)),
      smallest_snapshot_(smallest_snapshot),
      drop_deletions_(drop_deletions),
      selection_fifo_(static_cast<size_t>(config.record_fifo_depth)) {}

int Comparer::CompareInternalKeys(const std::string& a,
                                  const std::string& b) {
  // Hardware-friendly bytewise compare of the user keys, then the mark
  // field compared in reverse (larger sequence/type first).
  Slice ua = ExtractUserKey(a);
  Slice ub = ExtractUserKey(b);
  int r = ua.Compare(ub);
  if (r != 0) {
    return r;
  }
  uint64_t ma = ExtractMark(a);
  uint64_t mb = ExtractMark(b);
  if (ma > mb) return -1;
  if (ma < mb) return +1;
  return 0;
}

bool Comparer::CheckDrop(const std::string& internal_key) {
  ParsedInternalKey parsed;
  if (!ParseInternalKey(internal_key, &parsed)) {
    // Do not hide corruption: forward unparsable keys untouched.
    has_current_user_key_ = false;
    last_sequence_for_key_ = kMaxSequenceNumber;
    return false;
  }

  bool drop = false;
  if (!has_current_user_key_ ||
      parsed.user_key.Compare(Slice(current_user_key_)) != 0) {
    current_user_key_.assign(parsed.user_key.data(), parsed.user_key.size());
    has_current_user_key_ = true;
    last_sequence_for_key_ = kMaxSequenceNumber;
  }

  if (last_sequence_for_key_ <= smallest_snapshot_) {
    drop = true;  // Shadowed by a newer record for the same user key.
  } else if (parsed.type == kTypeDeletion &&
             parsed.sequence <= smallest_snapshot_ && drop_deletions_) {
    drop = true;  // Obsolete deletion marker with no deeper data.
  }
  last_sequence_for_key_ = parsed.sequence;
  return drop;
}

void Comparer::Tick() {
  if (selection_ready_) {
    if (selection_fifo_.CanPush()) {
      selection_fifo_.Push(pending_);
      selection_ready_ = false;
    } else {
      return;
    }
  }

  if (busy_ > 0) {
    busy_--;
    busy_cycles_++;
    if (busy_ > 0) return;
    selection_ready_ = true;
    if (selection_fifo_.CanPush()) {
      selection_fifo_.Push(pending_);
      selection_ready_ = false;
    }
    return;
  }

  // Start a new selection: every non-exhausted input must present a key
  // at its stream head (the compare tree needs all lanes valid).
  int best = -1;
  for (size_t i = 0; i < inputs_.size(); i++) {
    InputDecoder* input = inputs_[i];
    if (input->key_stream().Empty()) {
      if (!input->Exhausted()) {
        wait_cycles_++;
        return;  // Lane not ready yet; wait.
      }
      continue;  // Fully drained lane: excluded from the tree.
    }
    if (best < 0 ||
        CompareInternalKeys(input->key_stream().Front().internal_key,
                            inputs_[best]->key_stream().Front().internal_key) <
            0) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    return;  // Everything exhausted.
  }

  KvRecord record = inputs_[best]->key_stream().Pop();
  pending_.input_no = best;
  pending_.key_length = static_cast<uint32_t>(record.key_length());
  pending_.value_length = static_cast<uint32_t>(record.value_length());
  pending_.drop = CheckDrop(record.internal_key);

  selections_made_++;
  if (pending_.drop) {
    drops_++;
  }

  // Table II/III period. Without key-value separation the full record
  // width moves through the compare network.
  uint64_t unit = record.key_length();
  if (!config_.KeyValueSeparated()) {
    unit += record.value_length();
  }
  busy_ = (2 + CeilLog2(static_cast<uint64_t>(config_.num_inputs))) * unit;
  if (busy_ == 0) busy_ = 1;
}

bool Comparer::Done() const {
  if (busy_ > 0 || selection_ready_) return false;
  for (const InputDecoder* input : inputs_) {
    if (!input->Exhausted()) return false;
    if (!const_cast<InputDecoder*>(input)->key_stream().Empty()) return false;
  }
  return true;
}

}  // namespace fpga
}  // namespace fcae
