#include "fpga/kv_transfer.h"

#include <algorithm>

#include "fpga/comparer.h"
#include "fpga/decoder.h"

namespace fcae {
namespace fpga {

namespace {
uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Internal key = user key + 8-byte mark ((sequence << 8) | type).
Slice UserKeyOf(const std::string& internal_key) {
  return internal_key.size() >= 8
             ? Slice(internal_key.data(), internal_key.size() - 8)
             : Slice(internal_key);
}
}  // namespace

KeyValueTransfer::KeyValueTransfer(const EngineConfig& config,
                                   Comparer* comparer,
                                   std::vector<InputDecoder*> inputs,
                                   const KeyBounds* bounds)
    : config_(config),
      comparer_(comparer),
      inputs_(std::move(inputs)),
      bounds_(bounds != nullptr && bounds->active() ? bounds : nullptr),
      out_fifo_(static_cast<size_t>(config.record_fifo_depth)) {}

void KeyValueTransfer::Tick() {
  if (record_ready_) {
    if (pending_drop_) {
      record_ready_ = false;  // Discarded; nothing to forward.
    } else if (out_fifo_.CanPush()) {
      out_fifo_.Push(std::move(pending_record_));
      record_ready_ = false;
    } else {
      return;  // Encoder backpressure.
    }
  }

  if (busy_ > 0) {
    busy_--;
    busy_cycles_++;
    if (busy_ > 0) return;
    record_ready_ = true;
    // Try to complete in the same cycle the timer expires.
    if (pending_drop_) {
      record_ready_ = false;
    } else if (out_fifo_.CanPush()) {
      out_fifo_.Push(std::move(pending_record_));
      record_ready_ = false;
    }
    return;
  }

  if (!comparer_->selections().CanPop()) {
    return;
  }
  const Selection& sel = comparer_->selections().Front();
  Fifo<KvRecord>& source = inputs_[sel.input_no]->records_for_transfer();
  if (source.Empty()) {
    // The copy stream lags the key stream by at most the decoder's
    // publish step; wait for it.
    return;
  }
  Selection selection = comparer_->selections().Pop();
  pending_record_ = source.Pop();
  if (!selection.drop && bounds_ != nullptr &&
      !bounds_->Contains(UserKeyOf(pending_record_.internal_key))) {
    // Out-of-shard record leaked in by block-granular staging: discard
    // it here, exactly where a validity-check drop is discarded.
    selection.drop = true;
    bounds_dropped_++;
  }
  pending_drop_ = selection.drop;
  if (selection.drop) {
    dropped_++;
  } else {
    transferred_++;
  }

  const uint64_t key_cycles = selection.key_length;
  const uint64_t value_cycles =
      CeilDiv(selection.value_length, config_.EffectiveValueWidth());
  if (config_.KeyValueSeparated()) {
    busy_ = std::max(key_cycles, value_cycles);
  } else {
    busy_ = key_cycles + selection.value_length;
  }
  if (busy_ == 0) busy_ = 1;
}

bool KeyValueTransfer::Done() const {
  return busy_ == 0 && !record_ready_ && comparer_->Done() &&
         comparer_->selections().Empty();
}

}  // namespace fpga
}  // namespace fcae
