#ifndef FCAE_FPGA_ENCODER_H_
#define FCAE_FPGA_ENCODER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fpga/config.h"
#include "fpga/device_memory.h"
#include "fpga/kv_record.h"
#include "fpga/sim/fifo.h"
#include "table/block_builder.h"
#include "util/options.h"

namespace fcae {
namespace fpga {

class KeyValueTransfer;

/// The encode side of the engine: Data Block Encoder, Index Block
/// Encoder and the output AXI path with its Stream Upsizer (paper
/// Figs. 3 and 5).
///
/// Functionally, records are re-encoded into standard SSTable data
/// blocks (restart-point prefix compression + optional Snappy), flushed
/// at the data-block threshold and rolled into a new output table at the
/// SSTable threshold; the Index Block Encoder records (last_key, handle)
/// per block and the smallest/largest key per table for MetaOut.
///
/// Timing:
///  - Record encode: L_key cycles (Table II "encoding key"); without
///    key-value separation the value also crosses the encoder
///    (L_key + L_value).
///  - Block writeback: blocks queue to the output writer which occupies
///    the AXI write port for ceil(bytes / W_out) cycles per block plus
///    the DRAM latency.
///  - Index entries: with block separation they are written back
///    eagerly (2 cycles each on the write port); the basic design
///    buffers the whole index block in BRAM and pays a bulk write when
///    the table completes, stalling the encoder.
class OutputEncoder {
 public:
  OutputEncoder(const EngineConfig& config, const Options& table_options,
                KeyValueTransfer* transfer, DeviceOutput* output);

  OutputEncoder(const OutputEncoder&) = delete;
  OutputEncoder& operator=(const OutputEncoder&) = delete;

  ~OutputEncoder();

  void Tick();

  /// True once all upstream records are consumed, the final table is
  /// finalized and the write port is idle. Finalization only happens
  /// after the upstream pipeline reports Done().
  bool Done() const;

  /// Signals that no further records will arrive so the tail block and
  /// table can be flushed.
  void NotifyUpstreamDone();

  uint64_t records_encoded() const { return records_encoded_; }
  uint64_t busy_cycles() const { return busy_cycles_; }
  uint64_t blocks_emitted() const { return blocks_emitted_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t write_stall_cycles() const { return write_stall_cycles_; }
  size_t bram_index_bytes_peak() const { return bram_index_bytes_peak_; }
  size_t write_queue_high_water() const { return write_queue_.HighWater(); }

 private:
  struct QueuedWrite {
    uint64_t bytes = 0;  // Payload going through the upsizer.
  };

  /// Finishes the current data block: compress, append to the output
  /// table's data memory, emit the index entry, queue the AXI write.
  void FlushBlock();

  /// Finishes the current output table (index block writeback for the
  /// basic design, MetaOut bookkeeping) and opens a fresh one.
  void FinishTable();

  void TickWriter();

  const EngineConfig& config_;
  const Options& table_options_;
  KeyValueTransfer* transfer_;
  DeviceOutput* output_;

  std::unique_ptr<BlockBuilder> block_builder_;
  DeviceOutputTable current_table_;
  bool table_open_ = false;
  std::string block_first_key_;
  std::string block_last_key_;
  size_t bram_index_bytes_ = 0;  // Basic design: buffered index block.
  size_t bram_index_bytes_peak_ = 0;

  uint64_t busy_ = 0;
  bool upstream_done_ = false;
  bool finalized_ = false;

  // Output AXI write port.
  Fifo<QueuedWrite> write_queue_;
  uint64_t write_busy_ = 0;

  uint64_t records_encoded_ = 0;
  uint64_t busy_cycles_ = 0;
  uint64_t blocks_emitted_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t write_stall_cycles_ = 0;

  std::string compression_scratch_;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_ENCODER_H_
