#include "fpga/device_memory.h"

#include "util/coding.h"

namespace fcae {
namespace fpga {

void EncodeMetaIn(const std::vector<SstableDescriptor>& sstables,
                  std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(sstables.size()));
  for (const SstableDescriptor& s : sstables) {
    PutVarint64(dst, s.index_offset);
    PutVarint64(dst, s.index_size);
    PutVarint64(dst, s.data_offset);
    PutVarint64(dst, s.data_size);
  }
}

Status DecodeMetaIn(const Slice& src, std::vector<SstableDescriptor>* out) {
  out->clear();
  Slice input = src;
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("MetaIn: bad table count");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    SstableDescriptor s;
    if (!GetVarint64(&input, &s.index_offset) ||
        !GetVarint64(&input, &s.index_size) ||
        !GetVarint64(&input, &s.data_offset) ||
        !GetVarint64(&input, &s.data_size)) {
      return Status::Corruption("MetaIn: truncated descriptor");
    }
    out->push_back(s);
  }
  if (!input.empty()) {
    return Status::Corruption("MetaIn: trailing bytes");
  }
  return Status::OK();
}

void EncodeOutputIndex(const std::vector<OutputIndexEntry>& entries,
                       std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(entries.size()));
  for (const OutputIndexEntry& e : entries) {
    PutLengthPrefixedSlice(dst, e.last_key);
    PutVarint64(dst, e.offset);
    PutVarint64(dst, e.size);
  }
}

Status DecodeOutputIndex(const Slice& src,
                         std::vector<OutputIndexEntry>* out) {
  out->clear();
  Slice input = src;
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("OutputIndex: bad entry count");
  }
  out->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    OutputIndexEntry e;
    Slice key;
    if (!GetLengthPrefixedSlice(&input, &key) ||
        !GetVarint64(&input, &e.offset) || !GetVarint64(&input, &e.size)) {
      return Status::Corruption("OutputIndex: truncated entry");
    }
    e.last_key = key.ToString();
    out->push_back(std::move(e));
  }
  if (!input.empty()) {
    return Status::Corruption("OutputIndex: trailing bytes");
  }
  return Status::OK();
}

}  // namespace fpga
}  // namespace fcae
