#ifndef FCAE_FPGA_PCIE_BUS_H_
#define FCAE_FPGA_PCIE_BUS_H_

#include <cstdint>
#include <map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {
namespace fpga {

/// PcieBus models the shared host bridge in front of a multi-card
/// deployment. Every card has its own DMA engine and its own x8 slot,
/// but upstream of the switch the cards contend for the root-complex
/// bandwidth whenever their bursts coincide.
///
/// The model is deliberately conservative and event-free: a card
/// brackets each job with BeginJob/EndJob, and charges each DMA burst
/// with ChargeIn/ChargeOut. A burst is delayed only when *other cards*
/// have a job on the bus at the same wall instant — i.e. only genuine
/// concurrency across cards produces contention, never two jobs queued
/// behind one card's own mutex. The delay charged is
///
///     wait = min(own burst, sum of the other active cards' bursts
///                           charged so far in the same direction)
///
/// capped at the burst's own duration: in the worst case a burst takes
/// twice as long, matching a fair round-robin arbiter that halves each
/// card's share under 2-way collision. In and out are independent lanes
/// (PCIe is full duplex).
class PcieBus {
 public:
  PcieBus() = default;

  PcieBus(const PcieBus&) = delete;
  PcieBus& operator=(const PcieBus&) = delete;

  /// Marks `card_id` as having a job actively using the bus. A card's
  /// burst charges are reset when it goes idle->active so stale history
  /// never inflates a later collision.
  void BeginJob(int card_id) EXCLUDES(mutex_);
  void EndJob(int card_id) EXCLUDES(mutex_);

  /// Charges one host-to-card DMA burst of `micros` modeled duration.
  /// Returns the extra wait (modeled micros) due to bus contention.
  double ChargeIn(int card_id, double micros) EXCLUDES(mutex_);

  /// Same for card-to-host.
  double ChargeOut(int card_id, double micros) EXCLUDES(mutex_);

  /// Bursts that collided with at least one other active card.
  uint64_t contended_bursts() const EXCLUDES(mutex_);

  /// Total modeled micros of contention delay handed out.
  double contention_micros() const EXCLUDES(mutex_);

 private:
  double Charge(int card_id, double micros, bool inbound) EXCLUDES(mutex_);

  struct CardActivity {
    int jobs = 0;          // Nested Begin/End depth (normally 0 or 1).
    double in_micros = 0;  // Burst micros charged during the active job.
    double out_micros = 0;
  };

  mutable Mutex mutex_;
  std::map<int, CardActivity> active_ GUARDED_BY(mutex_);
  uint64_t contended_bursts_ GUARDED_BY(mutex_) = 0;
  double contention_micros_ GUARDED_BY(mutex_) = 0;
};

}  // namespace fpga
}  // namespace fcae

#endif  // FCAE_FPGA_PCIE_BUS_H_
