#ifndef FCAE_SYSSIM_SIMULATOR_H_
#define FCAE_SYSSIM_SIMULATOR_H_

#include <cstdint>
#include <string>

#include "fpga/config.h"
#include "lsm/dbformat.h"
#include "syssim/cost_model.h"
#include "syssim/lsm_state.h"
#include "workload/ycsb.h"

namespace fcae {

namespace obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace obs

namespace syssim {

/// Execution mode of the simulated system.
enum class ExecMode {
  /// Stock LevelDB: 2 CPU cores — the client runs on one, the single
  /// background thread (flush + compaction) on the other (the paper's
  /// baseline configuration, Section VII-A).
  kLevelDbCpu,
  /// LevelDB-FCAE: 1 CPU core + the FPGA card. Client and host-side
  /// background work share the core; compaction kernels run on the
  /// device, overlapping host flushes (Fig. 6's scheduling win).
  kLevelDbFcae,
};

/// Simulation parameters (defaults = paper Table IV + Section VII-A).
struct SimConfig {
  ExecMode mode = ExecMode::kLevelDbCpu;
  CostModel cost = CostModel::PaperCalibrated();
  fpga::EngineConfig engine;  // Used in kLevelDbFcae mode.

  // LevelDB settings.
  uint64_t key_length = 16;
  uint64_t value_length = 128;
  int leveling_ratio = 10;
  uint64_t block_size = 4096;
  uint64_t memtable_bytes = 4ull << 20;
  uint64_t file_size = 2ull << 20;

  /// Average next-level overlap per compacted file (see LsmState).
  /// LevelDB's compaction-pointer round-robin keeps the effective
  /// average well below the worst case (the full leveling ratio).
  double overlap_files = 7.0;

  /// Write-stall thresholds, defaulted from the engine's own constants
  /// (lsm/dbformat.h) so the simulator and the storage engine cannot
  /// silently disagree about when backpressure kicks in. The simulated
  /// client uses the same WriteController delay curve as DBImpl's
  /// MakeRoomForWrite (util/write_controller.h): delay ramps with L0
  /// debt from `l0_slowdown_trigger`, writes stop at `l0_stop_trigger`.
  int l0_slowdown_trigger = kL0SlowdownWritesTrigger;
  int l0_stop_trigger = kL0StopWritesTrigger;

  /// Paper Section VII-E future work: near-storage compaction. The
  /// engine sits inside the SSD as an embedded controller, so compaction
  /// inputs/outputs move over the drive's internal channels instead of
  /// host DMA: the host-side staging read/write phases and the PCIe
  /// round trip disappear (only control metadata crosses the bus). Only
  /// meaningful in kLevelDbFcae mode.
  bool near_storage = false;

  /// Host scheduler policy for jobs needing more inputs than the
  /// engine's N: true = decompose into a tournament of N-input merge
  /// passes on the card (intermediates stay in the 16 GB on-card DRAM);
  /// false = the strict Fig. 6 policy (complete software fallback).
  /// The paper's Table VI results with the 2-input engine are only
  /// reachable with the tournament scheduler (see DESIGN.md).
  bool multipass_offload = true;

  /// Fault-tolerant offload modeling (mirrors the host path's retry +
  /// CPU-fallback pipeline): probability an offloaded job's kernel run
  /// fails with a transient fault. Each failed attempt wastes its
  /// kernel time plus the host's exponential backoff; after
  /// `device_retry_limit` failed attempts the job falls back to the
  /// software path (reusing the already-staged inputs' read cost).
  double device_fault_rate = 0.0;
  int device_retry_limit = 3;
  uint32_t fault_seed = 1;

  /// Background compaction workers (mirrors Options::compaction_threads):
  /// up to this many compactions in flight at once, on disjoint level
  /// pairs. The single background core still runs host-side stages one
  /// at a time and kernels queue FIFO per card — the win is overlap:
  /// one job's kernel runs while another stages or writes back.
  int compaction_threads = 1;

  /// Offload cards (mirrors Options::num_offload_cards). Each card runs
  /// one kernel at a time with its own FIFO lane; staged jobs are placed
  /// on the card with the least outstanding work (the host
  /// DeviceSet::PickCard policy). Cards share the PCIe bus: concurrent
  /// runs on sibling cards stretch each other by their overlapping DMA
  /// share (SimResult::bus_contention_seconds).
  int num_cards = 1;

  /// Model the per-card double-buffered DMA engines (the host's
  /// FcaeDevice::ModelPipeline): a job staged while its card is still
  /// busy hides its inbound transfer behind the predecessor's kernel,
  /// up to the card's remaining backlog. Disable for the ablation
  /// (bench_ablation_scheduler's pipelined-DMA column).
  bool pipelined_dma = true;

  /// Optional observability (obs/): when set, the simulator emits
  /// flush/compaction spans in *simulated* time (ts/dur are simulated
  /// microseconds, not wall time) and event counters (`syssim.*`).
  /// Borrowed, not owned.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// Results of one simulated run.
struct SimResult {
  double elapsed_seconds = 0;
  double throughput_mbps = 0;   // User bytes written / elapsed.
  double throughput_kops = 0;   // Operations / elapsed (YCSB runs).

  double stall_seconds = 0;     // Client fully stopped.
  double slowdown_seconds = 0;  // Client in the delayed-write regime.
  double pcie_seconds = 0;      // Total DMA time.
  double device_seconds = 0;    // Kernel-busy time on the card.
  double cpu_compaction_seconds = 0;  // SW merge time.
  double flush_seconds = 0;

  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t compactions_offloaded = 0;
  uint64_t compactions_sw = 0;
  uint64_t compactions_retried = 0;   // Offloads saved by a retry.
  uint64_t compactions_fallback = 0;  // Offloads rerun in software.
  double fault_backoff_seconds = 0;   // Host retry backoff time.
  double fault_wasted_device_seconds = 0;  // Kernel time of failed tries.
  double device_queue_seconds = 0;    // Staged jobs waiting for a card.
  double pipeline_overlap_seconds = 0;  // Inbound DMA hidden by kernels.
  double bus_contention_seconds = 0;    // Cross-card PCIe bursts colliding.
  double bytes_compacted_in = 0;
  double bytes_compacted_out = 0;
  double user_bytes = 0;

  /// Compaction write amplification: on-disk bytes written (flush +
  /// compaction outputs) per user byte.
  double WriteAmplification() const {
    if (user_bytes <= 0) return 0;
    return bytes_compacted_out / user_bytes + 1.0;
  }

  /// Share of total run time spent in PCIe transfers (Table VIII).
  double PciePercent() const {
    if (elapsed_seconds <= 0) return 0;
    return 100.0 * pcie_seconds / elapsed_seconds;
  }
};

/// Discrete-event simulator of the whole write path: client ingest,
/// memtable rotation, flush, leveled compaction cascade, write stalls
/// (WriteController delay ramp from SimConfig::l0_slowdown_trigger,
/// stop at l0_stop_trigger), core contention and — in FCAE mode —
/// compaction offload with PCIe transfers and flush/kernel overlap.
/// Used to regenerate Figs. 10/14/15/16 and Tables VI/VIII.
class Simulator {
 public:
  explicit Simulator(const SimConfig& config);

  /// db_bench fillrandom: writes `total_user_bytes` of random-key
  /// records as fast as the system admits.
  SimResult RunFillRandom(double total_user_bytes);

  /// YCSB: loads `record_count` records (instantly, modeling a
  /// pre-loaded store of that size), then runs `op_count` operations of
  /// the given workload and reports kops/s.
  SimResult RunYcsb(workload::YcsbWorkload w, uint64_t record_count,
                    uint64_t op_count, uint32_t seed = 42);

 private:
  struct Engine;  // Internal event machinery.

  SimConfig config_;
};

}  // namespace syssim
}  // namespace fcae

#endif  // FCAE_SYSSIM_SIMULATOR_H_
