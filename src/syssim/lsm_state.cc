#include "syssim/lsm_state.h"

#include <algorithm>
#include <cassert>

namespace fcae {
namespace syssim {

namespace {
constexpr int kL0Trigger = 4;
}  // namespace

LsmState::LsmState(double file_size_bytes, int leveling_ratio,
                   double overlap_files)
    : file_size_(file_size_bytes),
      ratio_(leveling_ratio),
      overlap_files_(overlap_files) {}

void LsmState::AddL0File(double bytes) {
  l0_files_++;
  bytes_[0] += bytes;
}

double LsmState::TotalBytes() const {
  double total = 0;
  for (double b : bytes_) total += b;
  return total;
}

int LsmState::DeepestLevel() const {
  for (int level = kSimLevels - 1; level >= 0; level--) {
    if (bytes_[level] > 0) return level;
  }
  return -1;
}

int LsmState::PopulatedLevels() const {
  int populated = 0;
  for (double b : bytes_) {
    if (b > 0) populated++;
  }
  return populated;
}

double LsmState::MaxBytesForLevel(int level) const {
  assert(level >= 1);
  double result = 10.0 * 1048576.0;
  for (int l = 1; l < level; l++) {
    result *= ratio_;
  }
  return result;
}

bool LsmState::PickCompaction(CompactionWork* work, int max_l0_files,
                              uint32_t busy_levels) const {
  int best_level = -1;
  double best_score = 0;
  for (int level = 0; level < kSimLevels - 1; level++) {
    if ((busy_levels & (3u << level)) != 0) continue;
    double score;
    if (level == 0) {
      score = static_cast<double>(l0_files_) / kL0Trigger;
    } else {
      score = bytes_[level] / MaxBytesForLevel(level);
    }
    if (score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  if (best_score < 1.0 || best_level < 0) {
    return false;
  }

  work->level = best_level;
  if (best_level == 0) {
    // All L0 files overlap (random keys span the space) and drag in the
    // whole of L1. A capped job takes the oldest files only.
    int consumed = l0_files_;
    if (max_l0_files > 0 && consumed > max_l0_files) {
      consumed = max_l0_files;
    }
    work->l0_files_consumed = consumed;
    work->upper_bytes =
        bytes_[0] * (static_cast<double>(consumed) / l0_files_);
    work->lower_bytes = bytes_[1];
    work->device_inputs = consumed + (bytes_[1] > 0 ? 1 : 0);
  } else {
    work->l0_files_consumed = 0;
    work->upper_bytes = std::min(file_size_, bytes_[best_level]);
    work->lower_bytes = std::min(
        bytes_[best_level + 1],
        std::min<double>(ratio_, overlap_files_) * file_size_);
    work->device_inputs =
        (work->upper_bytes > 0 ? 1 : 0) + (work->lower_bytes > 0 ? 1 : 0);
  }
  work->input_bytes = work->upper_bytes + work->lower_bytes;
  work->output_bytes = work->input_bytes * kSurvival;
  return true;
}

void LsmState::ApplyCompaction(const CompactionWork& work) {
  // Amounts were snapshotted at pick time: flushes that landed in L0
  // while the compaction ran stay behind for the next round, exactly as
  // new files do in the real engine.
  if (work.level == 0) {
    l0_files_ -= work.l0_files_consumed;
    assert(l0_files_ >= 0);
    bytes_[0] = std::max(0.0, bytes_[0] - work.upper_bytes);
    bytes_[1] = bytes_[1] - work.lower_bytes + work.output_bytes;
  } else {
    bytes_[work.level] =
        std::max(0.0, bytes_[work.level] - work.upper_bytes);
    bytes_[work.level + 1] =
        bytes_[work.level + 1] - work.lower_bytes + work.output_bytes;
  }
}

}  // namespace syssim
}  // namespace fcae
