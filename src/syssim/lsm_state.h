#ifndef FCAE_SYSSIM_LSM_STATE_H_
#define FCAE_SYSSIM_LSM_STATE_H_

#include <cstdint>

namespace fcae {
namespace syssim {

/// Number of levels, as in the storage engine.
constexpr int kSimLevels = 7;

/// One table-merging compaction in the abstract LSM model.
struct CompactionWork {
  int level = -1;          // Inputs from `level` and `level + 1`.
  double input_bytes = 0;   // On-disk bytes read and merged.
  double output_bytes = 0;  // On-disk bytes written into level + 1.
  double upper_bytes = 0;   // Bytes taken from `level` (snapshot at pick).
  double lower_bytes = 0;   // Bytes taken from `level + 1`.
  int l0_files_consumed = 0;
  int device_inputs = 0;    // Engine inputs needed (paper Section VI-A).
};

/// File/byte-granularity model of LevelDB's leveled shape: level 0 is
/// bounded by file count (4/8/12 triggers), deeper levels by bytes with
/// the configurable leveling ratio (Fig. 15d). Key ranges are treated as
/// uniformly spread, so an L0 compaction overlaps all of L1 and an
/// L>=1 file overlaps ~ratio files below — the average-case geometry of
/// a random-write workload.
class LsmState {
 public:
  /// `overlap_files`: average number of next-level files a compaction
  /// input file overlaps. The worst case equals the leveling ratio;
  /// boundary trimming and compaction-pointer round-robin make the
  /// average lower (calibration knob; LevelDB practice ~6-8 at ratio
  /// 10).
  LsmState(double file_size_bytes, int leveling_ratio,
           double overlap_files = 7.0);

  /// A memtable flush adds one level-0 file of the given on-disk size.
  void AddL0File(double bytes);

  int l0_files() const { return l0_files_; }
  double level_bytes(int level) const { return bytes_[level]; }
  double TotalBytes() const;

  /// Deepest non-empty level (0 when only L0 holds data, -1 when empty).
  int DeepestLevel() const;
  /// Number of populated levels (for the read-cost model).
  int PopulatedLevels() const;

  double MaxBytesForLevel(int level) const;

  /// Picks the highest-score compaction (score >= 1), as
  /// VersionSet::Finalize does. Returns false when nothing is needed.
  /// `max_l0_files` > 0 caps how many level-0 files one job consumes
  /// (the oldest ones — newer files shadow them, so the subset is
  /// correct); the paper's FPGA-optimized scheduler uses N-1 so level-0
  /// jobs fit the device. `busy_levels` excludes levels claimed by
  /// in-flight compactions: a job at L occupies bits {L, L+1}, matching
  /// the storage engine's CompactionScheduler mask.
  bool PickCompaction(CompactionWork* work, int max_l0_files = 0,
                      uint32_t busy_levels = 0) const;

  /// Applies the state change of a completed compaction.
  void ApplyCompaction(const CompactionWork& work);

 private:
  double file_size_;
  int ratio_;
  double overlap_files_;
  int l0_files_ = 0;
  double bytes_[kSimLevels] = {0};

  /// Fraction of merged bytes surviving a compaction (dedup of
  /// overwritten keys; mild for random-key workloads).
  static constexpr double kSurvival = 0.97;
};

}  // namespace syssim
}  // namespace fcae

#endif  // FCAE_SYSSIM_LSM_STATE_H_
