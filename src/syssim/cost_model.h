#ifndef FCAE_SYSSIM_COST_MODEL_H_
#define FCAE_SYSSIM_COST_MODEL_H_

#include <cstdint>

#include "fpga/config.h"

namespace fcae {
namespace syssim {

/// CostModel supplies the rates the discrete-event system simulator
/// charges for each activity. Two presets:
///
///  - PaperCalibrated(): compaction kernel speeds follow the paper's
///    measurements (Table V for the 2-input engine and its CPU baseline,
///    Figs. 12/13 for the 9-input engine), and the host-side constants
///    (front-end ingest, flush, disk, PCIe) are fitted so the end-to-end
///    write throughput lands in the band of Table VI. This is the preset
///    the reproduction benches use: the paper's end-to-end results are a
///    function of the *ratios* between these rates on the authors'
///    testbed.
///
///  - Simulated(): compaction speeds come from this repository's own
///    cycle-level engine model (fpga::TimingModel) and a CPU speed
///    matching this host, for comparing the two worlds.
class CostModel {
 public:
  /// Single-thread software compaction speed in MB/s for records of the
  /// given shape, merging `num_inputs` runs (Table V "CPU" column; the
  /// deeper compare tree of a 9-input merge slows the CPU further).
  double CpuCompactionMBps(int num_inputs, uint64_t key_len,
                           uint64_t value_len) const;

  /// Engine kernel speed in MB/s (Table V / Fig. 12).
  double FpgaCompactionMBps(const fpga::EngineConfig& config,
                            uint64_t key_len, uint64_t value_len) const;

  /// Host ingest path: WAL append + memtable insert, MB/s of user data
  /// for the given value length (per-op fixed cost + byte cost).
  double FrontendMBps(uint64_t key_len, uint64_t value_len) const;

  /// Memtable -> level-0 SSTable build rate (encode + write), MB/s.
  double FlushMBps() const { return flush_mbps_; }

  double DiskReadMBps() const { return disk_read_mbps_; }
  double DiskWriteMBps() const { return disk_write_mbps_; }

  /// PCIe effective bandwidth (GB/s scale, in MB/s units here).
  double PcieMBps() const { return pcie_mbps_; }

  /// Fixed per-kernel invocation overhead (buffer setup, DMA descriptor
  /// programming, end-signal interrupt), microseconds.
  double KernelInvokeMicros() const { return kernel_invoke_micros_; }

  /// Host backoff before device retry `attempt` (1-based), microseconds.
  /// Mirrors FcaeExecutorOptions::backoff_base_micros's exponential
  /// schedule so simulated fault runs charge what the host path would.
  double RetryBackoffMicros(int attempt) const {
    int shift = attempt - 1;
    if (shift < 0) shift = 0;
    if (shift > 20) shift = 20;
    return retry_backoff_base_micros_ * static_cast<double>(1u << shift);
  }

  /// Point-read service times for the YCSB model (microseconds).
  double CacheHitMicros() const { return cache_hit_micros_; }
  double BlockMissMicros() const { return block_miss_micros_; }
  double ScanNextMicros() const { return scan_next_micros_; }
  /// Probability a zipfian/latest read is served from memory.
  double CacheHitRate(bool latest_distribution) const {
    return latest_distribution ? 0.92 : 0.80;
  }

  /// On-disk bytes per user byte after block compression (Snappy on
  /// db_bench-style half-compressible values).
  double CompressedFraction() const { return compressed_fraction_; }

  static CostModel PaperCalibrated();
  static CostModel Simulated();

 private:
  CostModel() = default;

  bool paper_speeds_ = true;
  double frontend_fixed_micros_ = 0;
  double frontend_byte_mbps_ = 0;
  double flush_mbps_ = 0;
  double disk_read_mbps_ = 0;
  double disk_write_mbps_ = 0;
  double pcie_mbps_ = 0;
  double kernel_invoke_micros_ = 0;
  double retry_backoff_base_micros_ = 100.0;
  double cache_hit_micros_ = 0;
  double block_miss_micros_ = 0;
  double scan_next_micros_ = 0;
  double compressed_fraction_ = 0.55;
  double simulated_cpu_mbps_ = 0;  // Simulated preset only.
};

}  // namespace syssim
}  // namespace fcae

#endif  // FCAE_SYSSIM_COST_MODEL_H_
