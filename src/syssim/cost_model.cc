#include "syssim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "fpga/timing_model.h"

namespace fcae {
namespace syssim {

namespace {

/// Piecewise-linear interpolation in log2(x) over tabulated points.
double InterpLog2(const double* xs, const double* ys, int n, double x) {
  if (x <= xs[0]) return ys[0];
  if (x >= xs[n - 1]) return ys[n - 1];
  for (int i = 1; i < n; i++) {
    if (x <= xs[i]) {
      double t = (std::log2(x) - std::log2(xs[i - 1])) /
                 (std::log2(xs[i]) - std::log2(xs[i - 1]));
      return ys[i - 1] + t * (ys[i] - ys[i - 1]);
    }
  }
  return ys[n - 1];
}

constexpr double kValuePoints[] = {64, 128, 256, 512, 1024, 2048};
constexpr int kNumValuePoints = 6;

// Table V, CPU column (MB/s), 2-input merge, key 16 B.
constexpr double kPaperCpuSpeed[] = {5.3, 6.9, 9.0, 12.2, 14.8, 13.3};

// Table V, FCAE columns (MB/s), 2-input engine, key 16 B.
constexpr double kPaperFpgaV8[] = {178.5, 260.1, 343.9, 446.9, 448.5, 506.3};
constexpr double kPaperFpgaV16[] = {164.5, 312.1, 451.6, 627.9, 739.5, 709.0};
constexpr double kPaperFpgaV32[] = {181.8, 311.8, 510.7, 672.8, 896.7,
                                    1077.4};
constexpr double kPaperFpgaV64[] = {175.8, 291.7, 524.9, 745.4, 1026.3,
                                    1205.6};

// Fig. 12: 9-input engine (W_in=8, V=8) speed relative to the 2-input
// V=8 engine — about 70% degradation for small values, narrowing as the
// value grows (the bottleneck moves to the Data Block Decoder whose
// period is nearly N-independent).
constexpr double kNineInputFactor[] = {0.30, 0.40, 0.55, 0.70, 0.85, 0.95};


}  // namespace

double CostModel::CpuCompactionMBps(int num_inputs, uint64_t key_len,
                                    uint64_t value_len) const {
  double base;
  if (paper_speeds_) {
    base = InterpLog2(kValuePoints, kPaperCpuSpeed, kNumValuePoints,
                      static_cast<double>(value_len));
  } else {
    base = simulated_cpu_mbps_;
  }
  // LevelDB's MergingIterator performs a linear scan over all N
  // children for every record (FindSmallest), so the software merge
  // slows roughly linearly in the input count — which is why the paper's
  // 9-input acceleration ratios (Fig. 13) exceed the 2-input ones even
  // though the 9-input engine itself is slower. Normalized to 1.0 at
  // N = 2 (the Table V baseline).
  const int n = std::max(2, num_inputs);
  return base * 3.0 / (n + 1);
}

double CostModel::FpgaCompactionMBps(const fpga::EngineConfig& config,
                                     uint64_t key_len,
                                     uint64_t value_len) const {
  const double v = static_cast<double>(value_len);
  if (!paper_speeds_) {
    fpga::TimingModel model(config);
    return model.PredictSpeedMBps(key_len + 8, value_len);
  }

  const double* column = kPaperFpgaV16;
  switch (config.EffectiveValueWidth()) {
    case 8:
      column = kPaperFpgaV8;
      break;
    case 16:
      column = kPaperFpgaV16;
      break;
    case 32:
      column = kPaperFpgaV32;
      break;
    default:
      column = kPaperFpgaV64;
      break;
  }
  double speed = InterpLog2(kValuePoints, column, kNumValuePoints, v);

  if (config.num_inputs > 2) {
    speed *= InterpLog2(kValuePoints, kNineInputFactor, kNumValuePoints, v);
  }

  // Key-length correction (Fig. 15a): the engine's per-record period
  // grows with L_key while the bytes moved grow more slowly; apply the
  // analytic ratio against the 16-byte baseline.
  if (key_len != 16) {
    fpga::TimingModel model(config);
    const double period_base =
        static_cast<double>(model.BottleneckPeriod(16 + 8, value_len));
    const double period_now =
        static_cast<double>(model.BottleneckPeriod(key_len + 8, value_len));
    const double bytes_base = static_cast<double>(16 + 8 + value_len);
    const double bytes_now = static_cast<double>(key_len + 8 + value_len);
    speed *= (period_base / period_now) * (bytes_now / bytes_base);
  }
  return speed;
}

double CostModel::FrontendMBps(uint64_t key_len, uint64_t value_len) const {
  const double op_bytes = static_cast<double>(key_len + value_len);
  const double micros_per_op =
      frontend_fixed_micros_ + op_bytes / frontend_byte_mbps_;  // MB/s==B/us
  return op_bytes / micros_per_op;  // bytes/us == MB/s.
}

CostModel CostModel::PaperCalibrated() {
  CostModel m;
  m.paper_speeds_ = true;
  // Host constants fitted so the end-to-end write throughput lands in
  // Table VI's band (LevelDB 2.3-2.9 MB/s; LevelDB-FCAE 5.4-14.4 MB/s).
  m.frontend_fixed_micros_ = 15.0;  // WAL framing + skiplist insert.
  m.frontend_byte_mbps_ = 160.0;    // WAL append bandwidth.
  m.flush_mbps_ = 25.0;             // Memtable -> L0 table build (encode-bound).
  m.disk_read_mbps_ = 320.0;        // SATA SSD w/ filesystem overhead.
  m.disk_write_mbps_ = 300.0;
  m.pcie_mbps_ = 12000.0;           // gen3 x16 effective.
  m.kernel_invoke_micros_ = 40000.0;
  m.cache_hit_micros_ = 3.0;
  m.block_miss_micros_ = 110.0;     // 4 KB random read + decompress.
  m.scan_next_micros_ = 1.0;
  return m;
}

CostModel CostModel::Simulated() {
  CostModel m = PaperCalibrated();
  m.paper_speeds_ = false;
  // A modern core merging with Snappy decode+encode sustains on the
  // order of 10^2 MB/s; used when comparing against this repository's
  // cycle-accurate engine speeds instead of the paper's testbed.
  m.simulated_cpu_mbps_ = 120.0;
  return m;
}

}  // namespace syssim
}  // namespace fcae
