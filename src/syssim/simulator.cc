#include "syssim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"
#include "util/write_controller.h"

namespace fcae {
namespace syssim {

namespace {
constexpr double kMB = 1e6;           // Rates are quoted in MB/s = B/us.
constexpr double kEps = 1e-12;

/// The simulated client runs the exact delay curve DBImpl's
/// MakeRoomForWrite applies, with the thresholds coming from SimConfig
/// (which itself defaults to the engine's dbformat.h constants).
WriteControllerConfig ControllerConfigFor(const SimConfig& cfg) {
  WriteControllerConfig wc;
  wc.l0_slowdown_trigger = cfg.l0_slowdown_trigger;
  wc.l0_stop_trigger = cfg.l0_stop_trigger;
  return wc;
}
}  // namespace

/// The event machinery: one client thread, one background CPU thread
/// (flush has priority and preempts a software merge, as LevelDB's
/// DoCompactionWork does between keys), and the device pipeline
/// host-read -> DMA/kernel/DMA -> host-write. With
/// SimConfig::compaction_threads > 1, up to that many compactions are
/// in flight on disjoint level pairs; host-side stages still share the
/// one background core (earliest job first) and kernels queue FIFO per
/// card (SimConfig::num_cards, least-queued placement), mirroring the
/// storage engine's DeviceSet scheduler.
struct Simulator::Engine {
  explicit Engine(const SimConfig& config)
      : cfg(config),
        wc(ControllerConfigFor(config)),
        lsm(static_cast<double>(config.file_size), config.leveling_ratio,
            config.overlap_files),
        num_cards(std::max(1, config.num_cards)),
        device_jobs(static_cast<size_t>(std::max(1, config.num_cards)),
                    nullptr) {
    op_bytes = static_cast<double>(cfg.key_length + cfg.value_length);
    frontend_rate = cfg.cost.FrontendMBps(cfg.key_length, cfg.value_length);
  }

  const SimConfig& cfg;
  const WriteControllerConfig wc;
  LsmState lsm;
  SimResult result;

  double now = 0;  // Seconds.
  double op_bytes = 0;
  double frontend_rate = 0;  // MB/s of user data, dedicated core.

  // Client state.
  double mem_bytes = 0;  // User bytes in the active memtable.
  bool has_imm = false;

  // Background CPU work (seconds of remaining single-core time).
  double flush_rem = 0;

  /// One in-flight compaction job. At most one of the stage remainders
  /// is nonzero at a time; the job walks host_read -> device ->
  /// host_write (offload) or just sw (software merge).
  struct Job {
    CompactionWork work;
    bool offloaded = false;
    bool fallback_pending = false;  // Device attempts exhausted: SW rerun.
    int passes = 1;             // Tournament passes for >N-input jobs.
    double host_read_rem = 0;   // Offload: staging reads from disk.
    double host_write_rem = 0;  // Offload: writing outputs to disk.
    double sw_rem = 0;          // Software compaction (read+merge+write).
    double device_rem = 0;      // Running on the card right now.
    double device_need = 0;     // Card time computed at staging end.
    double device_pcie = 0;     // DMA share of device_need (bus model).
    int card = 0;               // Card the job is placed on.
    bool device_queued = false;  // Staged, waiting for its card turn.
    double queue_since = 0;
    // Observability bookkeeping: span starts in simulated seconds.
    double compaction_start = 0;
    double stage_start = 0;
    uint64_t tid = 0;  // Track 0 carries flushes.
  };
  // In-flight jobs, arrival order. unique_ptr keeps Job addresses
  // stable across vector growth/erase (handlers hold raw pointers).
  std::vector<std::unique_ptr<Job>> jobs;
  const int num_cards;
  std::vector<Job*> device_jobs;  // Per card: the job owning its kernel.
  std::vector<Job*> active_runs;  // Step() scratch: runs advancing now.
  uint32_t busy_levels = 0;    // Level-pair claims, (3u << level) bits.

  // Fault-tolerant offload model (see SimConfig::device_fault_rate).
  Random fault_rng{cfg.fault_seed == 0 ? 1 : cfg.fault_seed};

  double flush_start = 0;

  uint64_t SimMicros(double seconds) const {
    return static_cast<uint64_t>(seconds * 1e6);
  }

  /// Records a simulated-time span from `start_s` to now.
  void Span(const char* name, double start_s, uint64_t tid) {
    if (cfg.trace == nullptr) return;
    cfg.trace->RecordSpan(name, "syssim", SimMicros(start_s),
                          SimMicros(now) - SimMicros(start_s), tid,
                          {{"simulated", "true"}});
  }

  void Count(const char* name) {
    if (cfg.metrics != nullptr) cfg.metrics->counter(name)->Increment();
  }

  // ---- Derived helpers ----

  bool CpuBusy() const {
    if (flush_rem > kEps) return true;
    for (const auto& j : jobs) {
      if (j->host_read_rem > kEps || j->host_write_rem > kEps ||
          j->sw_rem > kEps) {
        return true;
      }
    }
    return false;
  }

  bool DeviceBusy() const {
    for (const Job* j : device_jobs) {
      if (j != nullptr && j->device_rem > kEps) return true;
    }
    return false;
  }

  /// Outstanding device work bound to `card`: the active run's
  /// remainder plus every staged job waiting in that card's FIFO lane.
  double CardBacklog(int card) const {
    double backlog = 0;
    if (device_jobs[card] != nullptr) {
      backlog += device_jobs[card]->device_rem;
    }
    for (const auto& j : jobs) {
      if (j->device_queued && j->card == card) backlog += j->device_need;
    }
    return backlog;
  }

  /// Least-queued placement, ties to the lowest card id (the host
  /// DeviceSet::PickCard policy).
  int PickCard() const {
    int best = 0;
    double best_backlog = CardBacklog(0);
    for (int c = 1; c < num_cards; c++) {
      const double backlog = CardBacklog(c);
      if (backlog < best_backlog - kEps) {
        best = c;
        best_backlog = backlog;
      }
    }
    return best;
  }

  /// Which background bucket the CPU is currently burning, plus the job
  /// it belongs to (null for the flush bucket).
  struct CpuTaskRef {
    double* rem = nullptr;
    Job* job = nullptr;
    enum Kind { kFlush, kHostWrite, kHostRead, kSw } kind = kFlush;
  };

  /// Flush first (it gates the client), then in-flight jobs in arrival
  /// order with the same write > read > merge priority the single-job
  /// model used.
  CpuTaskRef CpuTask() {
    CpuTaskRef ref;
    if (flush_rem > kEps) {
      ref.rem = &flush_rem;
      return ref;
    }
    for (auto& j : jobs) {
      if (j->host_write_rem > kEps) {
        ref = {&j->host_write_rem, j.get(), CpuTaskRef::kHostWrite};
        return ref;
      }
      if (j->host_read_rem > kEps) {
        ref = {&j->host_read_rem, j.get(), CpuTaskRef::kHostRead};
        return ref;
      }
      if (j->sw_rem > kEps) {
        ref = {&j->sw_rem, j.get(), CpuTaskRef::kSw};
        return ref;
      }
    }
    return ref;
  }

  /// Core share of the client / background thread under the mode's core
  /// budget.
  double ClientShare(bool client_running) const {
    if (cfg.mode == ExecMode::kLevelDbCpu) return 1.0;  // Own core.
    return (client_running && CpuBusy()) ? 0.5 : 1.0;
  }
  double CpuShare(bool client_running) const {
    if (cfg.mode == ExecMode::kLevelDbCpu) return 1.0;
    return (client_running && CpuBusy()) ? 0.5 : 1.0;
  }

  /// Client ingest rate (MB/s of user bytes) given stall state; 0 when
  /// fully stopped.
  double ClientRate() const {
    if (mem_bytes >= cfg.memtable_bytes && has_imm) return 0;  // Wait.
    if (lsm.l0_files() >= cfg.l0_stop_trigger) return 0;       // Stop.
    double rate = frontend_rate;
    WriteStallConditions cond;
    cond.l0_files = lsm.l0_files();
    const double debt = WriteController::DebtScore(cond, wc);
    if (debt > 0) {
      // Every write pays the controller's debt-proportional delay on
      // top of its frontend service time (MakeRoomForWrite's ramp).
      const double delay_us = static_cast<double>(
          WriteController::DelayMicrosForDebt(debt, wc));
      const double slow = op_bytes / (delay_us + op_bytes / frontend_rate);
      rate = std::min(rate, slow);
    }
    return rate;
  }

  // ---- State transitions ----

  void MaybeRotateMemtable() {
    if (mem_bytes >= cfg.memtable_bytes - kEps && !has_imm) {
      mem_bytes -= cfg.memtable_bytes;
      if (mem_bytes < 0) mem_bytes = 0;
      has_imm = true;
      flush_rem = cfg.memtable_bytes / (cfg.cost.FlushMBps() * kMB);
      result.flush_seconds += flush_rem;
      flush_start = now;
    }
  }

  void OnFlushDone() {
    has_imm = false;
    lsm.AddL0File(static_cast<double>(cfg.memtable_bytes) *
                  cfg.cost.CompressedFraction());
    result.flushes++;
    Span("flush", flush_start, 0);
    Count("syssim.flushes");
    MaybeRotateMemtable();  // A stalled client may rotate immediately.
    MaybeScheduleCompaction();
  }

  void MaybeScheduleCompaction() {
    const int max_jobs = std::max(1, cfg.compaction_threads);
    while (static_cast<int>(jobs.size()) < max_jobs) {
      CompactionWork work;
      // Under the strict Fig. 6 policy the scheduler sizes level-0 jobs
      // to the device (oldest N-1 files), as the paper's "eight SSTables
      // on Level 0 and Level 1 ... which means N = 9" implies.
      int max_l0 = 0;
      if (cfg.mode == ExecMode::kLevelDbFcae && !cfg.multipass_offload &&
          cfg.engine.num_inputs > 2) {
        max_l0 = cfg.engine.num_inputs - 1;
      }
      if (!lsm.PickCompaction(&work, max_l0, busy_levels)) return;
      StartCompaction(work);
    }
  }

  void StartCompaction(const CompactionWork& work) {
    auto owned = std::make_unique<Job>();
    Job* job = owned.get();
    jobs.push_back(std::move(owned));
    job->work = work;
    busy_levels |= (3u << work.level);
    result.compactions++;
    result.bytes_compacted_in += work.input_bytes;
    result.bytes_compacted_out += work.output_bytes;
    job->compaction_start = now;
    job->stage_start = now;
    job->tid = result.compactions;  // Track 0 is the flush track.
    Count("syssim.compactions");

    bool offloadable = cfg.mode == ExecMode::kLevelDbFcae &&
                       work.device_inputs >= 1 &&
                       work.device_inputs <= cfg.engine.num_inputs;
    job->passes = 1;
    if (!offloadable && cfg.mode == ExecMode::kLevelDbFcae &&
        cfg.multipass_offload && work.device_inputs >= 1) {
      // Tournament scheduling: merge N runs at a time on the card until
      // one run remains; intermediate runs never leave device DRAM.
      offloadable = true;
      int runs = work.device_inputs;
      const int n = std::max(2, cfg.engine.num_inputs);
      while (runs > n) {
        job->passes++;
        runs = (runs + n - 1) / n;
      }
    }
    job->offloaded = offloadable;
    if (offloadable) {
      result.compactions_offloaded++;
      if (cfg.near_storage) {
        // Near-storage: no host staging; the kernel starts immediately
        // on the drive's internal channels.
        job->host_read_rem = 0;
        OnHostReadDone(job);
      } else {
        job->host_read_rem =
            work.input_bytes / (cfg.cost.DiskReadMBps() * kMB);
      }
    } else {
      result.compactions_sw++;
      const double cpu_speed = cfg.cost.CpuCompactionMBps(
          work.device_inputs, cfg.key_length, cfg.value_length);
      job->sw_rem = work.input_bytes / (cfg.cost.DiskReadMBps() * kMB) +
                    work.input_bytes / (cpu_speed * kMB) +
                    work.output_bytes / (cfg.cost.DiskWriteMBps() * kMB);
      result.cpu_compaction_seconds += job->sw_rem;
    }
  }

  void OnHostReadDone(Job* job) {
    if (!cfg.near_storage) {
      Span("input_build", job->stage_start, job->tid);
    }
    job->stage_start = now;
    // DMA in, kernel, DMA out all happen on the card side. Near-storage
    // mode reads/writes the drive's internal channels instead of the
    // PCIe link (modeled at the same internal bandwidth the channels
    // give sequential I/O; the interesting difference is that the host
    // core and external bus stay idle).
    const double pcie_in =
        cfg.near_storage
            ? 0.0
            : job->work.input_bytes / (cfg.cost.PcieMBps() * kMB);
    const double pcie_out =
        cfg.near_storage
            ? 0.0
            : job->work.output_bytes / (cfg.cost.PcieMBps() * kMB);
    const double pcie = pcie_in + pcie_out;
    const double kernel_speed = cfg.cost.FpgaCompactionMBps(
        cfg.engine, cfg.key_length, cfg.value_length);
    double kernel =
        job->passes * job->work.input_bytes / (kernel_speed * kMB);
    if (cfg.near_storage) {
      // Internal channel transfers serialize with the kernel.
      kernel += (job->work.input_bytes + job->work.output_bytes) /
                (3.0 * cfg.cost.DiskReadMBps() * kMB);
    }
    job->device_need =
        pcie + kernel + cfg.cost.KernelInvokeMicros() * 1e-6;
    job->device_pcie = pcie;
    result.pcie_seconds += pcie;
    result.device_seconds += kernel;

    // Fault-tolerant offload model: each attempt fails independently
    // with the configured probability. Failed attempts waste their
    // kernel run plus the host's exponential backoff; exhausting the
    // retry budget reruns the job in software once the card gives up.
    if (cfg.device_fault_rate > 0) {
      const int limit = std::max(1, cfg.device_retry_limit);
      int failed = 0;
      while (failed < limit &&
             fault_rng.NextDouble() < cfg.device_fault_rate) {
        failed++;
      }
      if (failed > 0) {
        double waste = failed * kernel;
        double backoff = 0;
        for (int attempt = 1; attempt <= failed && attempt < limit;
             attempt++) {
          backoff += cfg.cost.RetryBackoffMicros(attempt) * 1e-6;
        }
        job->device_need += waste + backoff;
        result.device_seconds += waste;
        result.fault_wasted_device_seconds += waste;
        result.fault_backoff_seconds += backoff;
        if (failed >= limit) {
          // All attempts burned: the software path takes over after the
          // wasted device time elapses (see OnDeviceDone).
          job->fallback_pending = true;
          job->device_need -= kernel + pcie;  // The good run never happened.
          job->device_pcie = 0;
          result.device_seconds -= kernel;
          result.pcie_seconds -= pcie;
        } else {
          result.compactions_retried++;
          Count("syssim.compactions_retried");
          if (cfg.trace != nullptr) {
            cfg.trace->RecordInstant("retry", "syssim", SimMicros(now),
                                     job->tid,
                                     {{"failed_attempts",
                                       std::to_string(failed)}});
          }
        }
      }
    }

    // Place the shard on the least-loaded card, then run now if that
    // card is free, else line up FIFO in its lane (the host executor's
    // per-card ticket queues).
    job->card = PickCard();
    const double backlog = CardBacklog(job->card);
    if (cfg.pipelined_dma && !job->fallback_pending && pcie_in > 0 &&
        backlog > kEps) {
      // Double-buffered DMA: the staging slot fills while the
      // predecessor still owns the card, hiding up to the whole inbound
      // burst behind its remaining run (FcaeDevice::ModelPipeline). The
      // bus time is still spent (pcie_seconds keeps it); only the
      // job's serialized card occupancy shrinks.
      const double hidden = std::min(pcie_in, backlog);
      job->device_need -= hidden;
      result.pipeline_overlap_seconds += hidden;
    }
    if (device_jobs[job->card] == nullptr) {
      StartDeviceRun(job);
    } else {
      job->device_queued = true;
      job->queue_since = now;
      Count("syssim.device_queue_waits");
    }
  }

  void StartDeviceRun(Job* job) {
    assert(device_jobs[job->card] == nullptr);
    device_jobs[job->card] = job;
    job->device_rem = job->device_need;
    // Shared-bus contention: a sibling card's concurrent run carries a
    // proportional share of its own DMA; bursts that coincide stretch
    // this job by the overlapping transfer time (fpga::PcieBus).
    if (job->device_pcie > kEps) {
      double wait = 0;
      for (int c = 0; c < num_cards; c++) {
        if (c == job->card) continue;
        const Job* other = device_jobs[c];
        if (other == nullptr || other->device_rem <= kEps) continue;
        const double other_dma =
            other->device_pcie *
            (other->device_rem / std::max(other->device_need, kEps));
        wait += std::min(job->device_pcie, other_dma);
      }
      if (wait > 0) {
        job->device_rem += wait;
        result.bus_contention_seconds += wait;
      }
    }
    if (job->device_queued) {
      job->device_queued = false;
      result.device_queue_seconds += now - job->queue_since;
      job->stage_start = now;  // The queue wait is not device time.
    }
  }

  void OnDeviceDone(Job* job) {
    assert(device_jobs[job->card] == job);
    device_jobs[job->card] = nullptr;
    Span("device_run", job->stage_start, job->tid);
    job->stage_start = now;

    // Hand the card to the next staged job in its lane, FIFO by
    // arrival.
    for (auto& j : jobs) {
      if (j->device_queued && j->card == job->card) {
        StartDeviceRun(j.get());
        break;
      }
    }

    if (job->fallback_pending) {
      // Device attempts exhausted: rerun completely in software, like
      // DBImpl's CPU fallback. Inputs are re-read from disk (the real
      // fallback re-drives the input iterators too).
      job->fallback_pending = false;
      job->offloaded = false;
      result.compactions_offloaded--;
      result.compactions_sw++;
      result.compactions_fallback++;
      Count("syssim.compactions_fallback");
      if (cfg.trace != nullptr) {
        cfg.trace->RecordInstant("cpu_fallback", "syssim", SimMicros(now),
                                 job->tid);
      }
      const double cpu_speed = cfg.cost.CpuCompactionMBps(
          job->work.device_inputs, cfg.key_length, cfg.value_length);
      job->sw_rem =
          job->work.input_bytes / (cfg.cost.DiskReadMBps() * kMB) +
          job->work.input_bytes / (cpu_speed * kMB) +
          job->work.output_bytes / (cfg.cost.DiskWriteMBps() * kMB);
      result.cpu_compaction_seconds += job->sw_rem;
      return;
    }
    job->host_write_rem =
        cfg.near_storage
            ? 0.0
            : job->work.output_bytes / (cfg.cost.DiskWriteMBps() * kMB);
    if (cfg.near_storage) {
      OnCompactionInstalled(job);
    }
  }

  void OnCompactionInstalled(Job* job) {
    // The tail stage: host writeback for an offload, the whole software
    // merge otherwise (near-storage offloads have no host tail).
    if (job->offloaded) {
      if (!cfg.near_storage) Span("assemble", job->stage_start, job->tid);
      Count("syssim.compactions_offloaded");
    } else {
      Span("merge", job->stage_start, job->tid);
      Count("syssim.compactions_sw");
    }
    Span("compaction", job->compaction_start, job->tid);
    lsm.ApplyCompaction(job->work);
    busy_levels &= ~(3u << job->work.level);
    for (size_t i = 0; i < jobs.size(); i++) {
      if (jobs[i].get() == job) {
        jobs.erase(jobs.begin() + i);
        break;
      }
    }
    MaybeScheduleCompaction();
  }

  /// Advances simulated time by up to `dt` seconds with the client
  /// either ingesting (fill mode) or idle (`client_rate` = 0 while it
  /// executes a read, whose cost the caller accounts separately).
  /// Returns the time actually advanced (an event may cut it short).
  double Step(double dt, bool client_ingesting, double* ingested) {
    const double client_rate = client_ingesting ? ClientRate() : 0;
    const bool client_running = client_ingesting && client_rate > 0;

    const double client_share = ClientShare(client_running);
    const double cpu_share = CpuShare(client_running);

    double step = dt;
    // Clip at the memtable boundary.
    if (client_running) {
      const double to_fill =
          (cfg.memtable_bytes - mem_bytes) /
          (client_rate * kMB * client_share);
      step = std::min(step, to_fill);
    }
    // Clip at the active CPU task boundary.
    CpuTaskRef task = CpuTask();
    if (task.rem != nullptr) {
      step = std::min(step, *task.rem / cpu_share);
    }
    // Clip at device completions. Only runs active at the start of the
    // step advance (a kernel a handler starts below begins next step).
    active_runs.clear();
    for (Job* j : device_jobs) {
      if (j != nullptr && j->device_rem > kEps) {
        active_runs.push_back(j);
        step = std::min(step, j->device_rem);
      }
    }
    if (step < 0) step = 0;

    // Advance.
    now += step;
    if (client_running) {
      const double bytes = client_rate * kMB * client_share * step;
      mem_bytes += bytes;
      if (ingested != nullptr) *ingested += bytes;
      if (lsm.l0_files() >= cfg.l0_slowdown_trigger) {
        result.slowdown_seconds += step;
      }
    } else if (client_ingesting) {
      result.stall_seconds += step;
    }
    if (task.rem != nullptr) {
      *task.rem -= cpu_share * step;
      if (*task.rem < kEps) {
        *task.rem = 0;
        switch (task.kind) {
          case CpuTaskRef::kFlush:
            OnFlushDone();
            break;
          case CpuTaskRef::kHostRead:
            OnHostReadDone(task.job);
            break;
          case CpuTaskRef::kHostWrite:
          case CpuTaskRef::kSw:
            OnCompactionInstalled(task.job);  // Frees task.job.
            break;
        }
      }
    }
    for (Job* dev : active_runs) {
      dev->device_rem -= step;
      if (dev->device_rem < kEps) {
        dev->device_rem = 0;
        OnDeviceDone(dev);  // May start a queued run; it advances next step.
      }
    }
    if (client_running) {
      MaybeRotateMemtable();
      MaybeScheduleCompaction();
    }
    return step;
  }

  /// Advances the clock by a client-side read of `service_us` while
  /// background work progresses concurrently; in the 1-core FCAE mode
  /// an active background task halves the read's effective speed.
  /// (Background progress during reads is modeled at full speed — a
  /// small optimism that affects both modes' read phases equally.)
  void AdvanceReadTime(double service_us) {
    double work = service_us * 1e-6;  // Dedicated-core seconds needed.
    int guard = 0;
    while (work > kEps && ++guard < 1000000) {
      const bool fcae = cfg.mode == ExecMode::kLevelDbFcae;
      const double share = (fcae && CpuBusy()) ? 0.5 : 1.0;
      const double stepped = Step(work / share, false, nullptr);
      if (stepped <= kEps) {
        now += work / share;
        break;
      }
      work -= stepped * share;
    }
  }

  /// Drives time forward until the client can make progress again (or
  /// nothing is pending — a liveness bug guard).
  bool WaitWhileStalled(bool ingesting) {
    int guard = 0;
    while (ingesting && ClientRate() <= 0) {
      MaybeScheduleCompaction();
      if (!CpuBusy() && !DeviceBusy()) {
        return false;  // Deadlock: nothing will unblock the client.
      }
      Step(1e9, /*client_ingesting=*/true, nullptr);
      if (++guard > 100000000) return false;
    }
    return true;
  }
};

Simulator::Simulator(const SimConfig& config) : config_(config) {}

SimResult Simulator::RunFillRandom(double total_user_bytes) {
  Engine engine(config_);
  double ingested = 0;

  while (ingested < total_user_bytes) {
    if (!engine.WaitWhileStalled(true)) {
      break;  // Deadlock guard; should not happen.
    }
    const double remaining_bytes = total_user_bytes - ingested;
    const double rate = engine.ClientRate() *
                        engine.ClientShare(true) * kMB;
    const double dt = rate > 0 ? remaining_bytes / rate : 1e9;
    engine.Step(dt, /*client_ingesting=*/true, &ingested);
  }

  SimResult result = engine.result;
  result.user_bytes = ingested;
  result.elapsed_seconds = engine.now;
  result.throughput_mbps =
      engine.now > 0 ? ingested / kMB / engine.now : 0;
  return result;
}

SimResult Simulator::RunYcsb(workload::YcsbWorkload w, uint64_t record_count,
                             uint64_t op_count, uint32_t seed) {
  Engine engine(config_);
  Random rnd(seed);

  // Model the pre-loaded store: record_count records laid out in the
  // fully compacted leveled shape (deepest levels carry the bulk).
  {
    double remaining = static_cast<double>(record_count) *
                       engine.op_bytes * config_.cost.CompressedFraction();
    // Find the minimal depth whose cumulative capacity holds the data.
    int depth = 1;
    double cumulative = 0;
    for (int level = 1; level < kSimLevels; level++) {
      cumulative += engine.lsm.MaxBytesForLevel(level);
      depth = level;
      if (cumulative >= remaining) break;
    }
    for (int level = depth; level >= 1 && remaining > 0; level--) {
      const double put =
          std::min(engine.lsm.MaxBytesForLevel(level), remaining);
      // Poke the level through a synthetic zero-input compaction.
      CompactionWork work;
      work.level = level - 1;
      work.output_bytes = put;
      work.input_bytes = put;
      engine.lsm.ApplyCompaction(work);
      remaining -= put;
    }
  }

  workload::YcsbGenerator gen(w, record_count, seed);
  const bool latest = (w == workload::YcsbWorkload::kD);
  const double hit_rate = config_.cost.CacheHitRate(latest);

  double ingested = 0;
  const double write_service_us =
      engine.op_bytes / engine.frontend_rate;  // B / (B/us).

  for (uint64_t i = 0; i < op_count; i++) {
    workload::YcsbGenerator::Op op = gen.Next();

    auto read_cost_us = [&]() -> double {
      if (rnd.NextDouble() < hit_rate) {
        return config_.cost.CacheHitMicros();
      }
      // Bloomless LevelDB probes L0 files newest-first plus one file
      // per deeper level until the key is found.
      const double probes = 1.0 + 0.5 * engine.lsm.l0_files() +
                            0.4 * std::max(0, engine.lsm.PopulatedLevels() -
                                                  1);
      return probes * config_.cost.BlockMissMicros();
    };

    double service_us = 0;
    bool is_write = false;
    switch (op.type) {
      case workload::YcsbOp::kRead:
        service_us = read_cost_us();
        break;
      case workload::YcsbOp::kScan:
        service_us = read_cost_us() +
                     op.scan_length * config_.cost.ScanNextMicros();
        break;
      case workload::YcsbOp::kUpdate:
      case workload::YcsbOp::kInsert:
        is_write = true;
        service_us = write_service_us;
        break;
      case workload::YcsbOp::kReadModifyWrite:
        is_write = true;
        service_us = read_cost_us() + write_service_us;
        break;
    }

    if (is_write) {
      // The write's bytes flow into the memtable; its service time is
      // the frontend cost embedded in ClientRate, so charge the bytes.
      double need = engine.op_bytes;
      bool live = true;
      while (need > kEps && live) {
        live = engine.WaitWhileStalled(true);
        if (!live) break;
        const double rate =
            engine.ClientRate() * engine.ClientShare(true) * kMB;
        if (rate <= 0) continue;
        double got = 0;
        engine.Step(need / rate, true, &got);
        need -= got;
      }
      // Reads embedded in RMW still cost time on the client core.
      if (op.type == workload::YcsbOp::kReadModifyWrite) {
        engine.AdvanceReadTime(service_us - write_service_us);
      }
      ingested += engine.op_bytes;
    } else {
      engine.AdvanceReadTime(service_us);
    }
  }

  SimResult result = engine.result;
  result.user_bytes = ingested;
  result.elapsed_seconds = engine.now;
  result.throughput_mbps =
      engine.now > 0 ? ingested / kMB / engine.now : 0;
  result.throughput_kops =
      engine.now > 0 ? static_cast<double>(op_count) / 1e3 / engine.now : 0;
  return result;
}

}  // namespace syssim
}  // namespace fcae
