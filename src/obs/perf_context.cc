#include "obs/perf_context.h"

#include <cstdio>

#include "obs/trace.h"

namespace fcae {
namespace obs {

namespace perf_internal {
thread_local PerfLevel tls_perf_level = PerfLevel::kDisable;
thread_local PerfContext tls_perf_context;
thread_local IOStatsContext tls_io_stats;
}  // namespace perf_internal

void SetPerfLevel(PerfLevel level) {
  perf_internal::tls_perf_level = level;
}

uint64_t PerfNowMicros() { return TraceNowMicros(); }

void PerfContext::Reset() { *this = PerfContext(); }

void IOStatsContext::Reset() { *this = IOStatsContext(); }

namespace {

void AppendField(std::string* out, const char* name, uint64_t value) {
  if (value == 0) {
    return;
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s%s=%llu", out->empty() ? "" : " ", name,
                static_cast<unsigned long long>(value));
  out->append(buf);
}

}  // namespace

std::string PerfContext::ToString() const {
  std::string out;
  AppendField(&out, "bloom_filter_hits", bloom_filter_hits);
  AppendField(&out, "bloom_filter_negatives", bloom_filter_negatives);
  AppendField(&out, "block_cache_hits", block_cache_hits);
  AppendField(&out, "block_cache_misses", block_cache_misses);
  AppendField(&out, "block_read_count", block_read_count);
  AppendField(&out, "block_read_bytes", block_read_bytes);
  AppendField(&out, "block_read_micros", block_read_micros);
  AppendField(&out, "memtable_probes", memtable_probes);
  AppendField(&out, "immutable_memtable_probes", immutable_memtable_probes);
  AppendField(&out, "sst_probes", sst_probes);
  AppendField(&out, "table_cache_hits", table_cache_hits);
  AppendField(&out, "table_cache_misses", table_cache_misses);
  AppendField(&out, "internal_keys_skipped", internal_keys_skipped);
  AppendField(&out, "merge_iterator_seeks", merge_iterator_seeks);
  AppendField(&out, "wal_appends", wal_appends);
  AppendField(&out, "wal_append_micros", wal_append_micros);
  AppendField(&out, "wal_syncs", wal_syncs);
  AppendField(&out, "wal_sync_micros", wal_sync_micros);
  AppendField(&out, "write_delays", write_delays);
  AppendField(&out, "write_delay_micros", write_delay_micros);
  AppendField(&out, "write_stops", write_stops);
  AppendField(&out, "write_stop_micros", write_stop_micros);
  AppendField(&out, "offload_queue_wait_micros", offload_queue_wait_micros);
  AppendField(&out, "offload_device_attempts", offload_device_attempts);
  AppendField(&out, "offload_device_micros", offload_device_micros);
  AppendField(&out, "offload_verify_micros", offload_verify_micros);
  AppendField(&out, "offload_cpu_fallbacks", offload_cpu_fallbacks);
  AppendField(&out, "offload_cpu_fallback_micros",
              offload_cpu_fallback_micros);
  return out;
}

std::string IOStatsContext::ToString() const {
  std::string out;
  AppendField(&out, "bytes_read", bytes_read);
  AppendField(&out, "bytes_written", bytes_written);
  AppendField(&out, "read_micros", read_micros);
  AppendField(&out, "write_micros", write_micros);
  AppendField(&out, "sync_micros", sync_micros);
  return out;
}

}  // namespace obs
}  // namespace fcae
