#include "obs/logger.h"

#include <cstdio>

namespace fcae {
namespace obs {

const char* LogLevelName(LogRecord::Level level) {
  switch (level) {
    case LogRecord::Level::kInfo:
      return "INFO";
    case LogRecord::Level::kWarn:
      return "WARN";
    case LogRecord::Level::kError:
      return "ERROR";
  }
  return "INFO";
}

std::string FormatLogRecord(const LogRecord& record) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu [%s] ",
                static_cast<unsigned long long>(record.ts_micros),
                LogLevelName(record.level));
  std::string out = buf;
  out += record.tag;
  for (const auto& field : record.fields) {
    out += " " + field.first + "=" + field.second;
  }
  if (!record.message.empty()) {
    // Keep multi-line messages (the stats table) grouped under the
    // header line rather than interleaved with other log output.
    out += "\n";
    for (char c : record.message) {
      out += c;
      if (c == '\n') {
        out += "  ";
      }
    }
  }
  return out;
}

void StderrLogger::Log(const LogRecord& record) {
  std::string line = FormatLogRecord(record);
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace obs
}  // namespace fcae
