#include "obs/trace.h"

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace fcae {
namespace obs {

uint64_t TraceNowMicros() {
  // Trace timestamps are display-only (relative event ordering in dump
  // output); they never feed the crash model or fake-clock tests, so a
  // direct steady_clock read is acceptable here.
  // fcae-check: allow(raw-io): display-only trace timestamps
  auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(since_epoch)
          .count());
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRecorder::set_sink(TraceSink* sink) {
  MutexLock lock(&mutex_);
  sink_ = sink;
}

void TraceRecorder::Record(TraceEvent event) {
  TraceSink* sink;
  {
    MutexLock lock(&mutex_);
    sink = sink_;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[next_] = event;
      next_ = (next_ + 1) % capacity_;
      dropped_++;
    }
  }
  // Sink runs outside the lock so a slow sink (file write) never
  // stalls other recording threads, and so sinks may call back in.
  if (sink != nullptr) {
    sink->Append(event);
  }
}

void TraceRecorder::RecordSpan(
    std::string name, std::string cat, uint64_t ts_micros,
    uint64_t dur_micros, uint64_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.phase = 'X';
  event.ts_micros = ts_micros;
  event.dur_micros = dur_micros;
  event.tid = tid;
  event.args = std::move(args);
  Record(std::move(event));
}

void TraceRecorder::RecordInstant(
    std::string name, std::string cat, uint64_t ts_micros, uint64_t tid,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.phase = 'i';
  event.ts_micros = ts_micros;
  event.tid = tid;
  event.args = std::move(args);
  Record(std::move(event));
}

std::string TraceRecorder::ToJson() const {
  std::vector<TraceEvent> events;
  uint64_t dropped;
  {
    MutexLock lock(&mutex_);
    events.reserve(ring_.size());
    // Oldest retained first: once the ring wrapped, next_ points at
    // the oldest slot.
    for (size_t i = 0; i < ring_.size(); i++) {
      events.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    dropped = dropped_;
  }

  std::string out = "{\"traceEvents\": [";
  char buf[128];
  for (size_t i = 0; i < events.size(); i++) {
    const TraceEvent& e = events[i];
    out += (i == 0) ? "\n" : ",\n";
    out += "  {\"name\": \"" + JsonEscape(e.name) + "\", \"cat\": \"" +
           JsonEscape(e.cat) + "\", \"ph\": \"";
    out += e.phase;
    std::snprintf(buf, sizeof(buf),
                  "\", \"ts\": %llu, \"pid\": 1, \"tid\": %llu",
                  static_cast<unsigned long long>(e.ts_micros),
                  static_cast<unsigned long long>(e.tid));
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ", \"dur\": %llu",
                    static_cast<unsigned long long>(e.dur_micros));
      out += buf;
    } else if (e.phase == 'i') {
      out += ", \"s\": \"t\"";  // instant scoped to its thread track
    }
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (size_t a = 0; a < e.args.size(); a++) {
        if (a > 0) out += ", ";
        out += "\"" + JsonEscape(e.args[a].first) +
               "\": " + e.args[a].second;
      }
      out += "}";
    }
    out += "}";
  }
  out += events.empty() ? "]" : "\n]";
  std::snprintf(buf, sizeof(buf),
                ", \"displayTimeUnit\": \"ms\", \"eventsDropped\": %llu}",
                static_cast<unsigned long long>(dropped));
  out += buf;
  return out;
}

size_t TraceRecorder::size() const {
  MutexLock lock(&mutex_);
  return ring_.size();
}

uint64_t TraceRecorder::events_dropped() const {
  MutexLock lock(&mutex_);
  return dropped_;
}

std::string TraceRecorder::Quote(const std::string& value) {
  return "\"" + JsonEscape(value) + "\"";
}

SpanTimer::SpanTimer(TraceRecorder* recorder, std::string name,
                     std::string cat, uint64_t tid)
    : recorder_(recorder),
      name_(std::move(name)),
      cat_(std::move(cat)),
      tid_(tid),
      start_micros_(recorder == nullptr ? 0 : TraceNowMicros()) {}

SpanTimer::~SpanTimer() { Finish(); }

void SpanTimer::AddArg(std::string key, std::string raw_json_value) {
  args_.emplace_back(std::move(key), std::move(raw_json_value));
}

void SpanTimer::Finish() {
  if (finished_ || recorder_ == nullptr) {
    finished_ = true;
    return;
  }
  finished_ = true;
  uint64_t end = TraceNowMicros();
  recorder_->RecordSpan(std::move(name_), std::move(cat_), start_micros_,
                        end - start_micros_, tid_, std::move(args_));
}

}  // namespace obs
}  // namespace fcae
