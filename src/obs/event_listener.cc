#include "obs/event_listener.h"

namespace fcae {
namespace obs {

const char* WriteStallCauseName(WriteStallCause cause) {
  switch (cause) {
    case WriteStallCause::kCompactionDebt:
      return "compaction-debt";
    case WriteStallCause::kMemtableFull:
      return "memtable-full";
    case WriteStallCause::kL0Stop:
      return "l0-stop";
  }
  return "unknown";
}

EventNotifier::EventNotifier(const std::vector<EventListener*>& listeners) {
  for (EventListener* listener : listeners) {
    if (listener != nullptr) {
      listeners_.push_back(listener);
    }
  }
}

void EventNotifier::NotifyFlushBegin(const FlushJobInfo& info) const {
  for (EventListener* l : listeners_) l->OnFlushBegin(info);
}

void EventNotifier::NotifyFlushCompleted(const FlushJobInfo& info) const {
  for (EventListener* l : listeners_) l->OnFlushCompleted(info);
}

void EventNotifier::NotifyCompactionBegin(const CompactionJobInfo& info) const {
  for (EventListener* l : listeners_) l->OnCompactionBegin(info);
}

void EventNotifier::NotifyCompactionCompleted(
    const CompactionJobInfo& info) const {
  for (EventListener* l : listeners_) l->OnCompactionCompleted(info);
}

void EventNotifier::NotifyOffloadRetry(const OffloadRetryInfo& info) const {
  for (EventListener* l : listeners_) l->OnOffloadRetry(info);
}

void EventNotifier::NotifyOffloadFallback(
    const OffloadFallbackInfo& info) const {
  for (EventListener* l : listeners_) l->OnOffloadFallback(info);
}

void EventNotifier::NotifyWriteStallBegin(const WriteStallInfo& info) const {
  for (EventListener* l : listeners_) l->OnWriteStallBegin(info);
}

void EventNotifier::NotifyWriteStallEnd(const WriteStallInfo& info) const {
  for (EventListener* l : listeners_) l->OnWriteStallEnd(info);
}

void EventNotifier::NotifyBackgroundError(
    const BackgroundErrorInfo& info) const {
  for (EventListener* l : listeners_) l->OnBackgroundError(info);
}

void EventNotifier::NotifyBackgroundErrorResumed() const {
  for (EventListener* l : listeners_) l->OnBackgroundErrorResumed();
}

void EventNotifier::NotifyDeviceHealthChange(
    const DeviceHealthChangeInfo& info) const {
  for (EventListener* l : listeners_) l->OnDeviceHealthChange(info);
}

void EventNotifier::NotifyCorruptionDetected(const CorruptionInfo& info) const {
  for (EventListener* l : listeners_) l->OnCorruptionDetected(info);
}

void EventNotifier::NotifyFileQuarantined(
    const FileQuarantineInfo& info) const {
  for (EventListener* l : listeners_) l->OnFileQuarantined(info);
}

void EventNotifier::NotifyScrubCompleted(const ScrubCycleInfo& info) const {
  for (EventListener* l : listeners_) l->OnScrubCompleted(info);
}

}  // namespace obs
}  // namespace fcae
