#ifndef FCAE_OBS_EVENT_LISTENER_H_
#define FCAE_OBS_EVENT_LISTENER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fcae {
namespace obs {

/// Event payloads. Every struct is a value snapshot taken while the DB
/// mutex was held; by the time a listener sees it the DB may have
/// moved on, so fields are facts about the event, not live state.

struct FlushJobInfo {
  std::string db_name;
  uint64_t output_file_number = 0;  // 0 until the table is built.
  uint64_t output_bytes = 0;
  uint64_t micros = 0;  // Completed only.
  Status status;        // Completed only; begin events carry OK.
};

struct CompactionJobInfo {
  std::string db_name;
  int base_level = 0;    // Inputs come from base_level and base_level+1.
  int output_level = 0;  // base_level + 1.
  int input_files = 0;
  int shards = 1;         // Key-range shards the job was split into.
  bool offloaded = false;  // At least one shard completed on the device.
  bool fell_back = false;  // A device attempt failed; CPU rerun happened.
  uint64_t input_bytes = 0;   // Completed only.
  uint64_t output_bytes = 0;  // Completed only.
  uint64_t micros = 0;        // Completed only.
  Status status;              // Completed only.
};

struct OffloadRetryInfo {
  int attempt = 0;  // 1-based attempt that just failed.
  std::string reason;
};

struct OffloadFallbackInfo {
  bool sticky = false;  // Device fault no retry can clear.
  std::string reason;
};

enum class WriteStallCause : unsigned char {
  kCompactionDebt = 0,  // Slowdown: L0 near trigger or controller delay.
  kMemtableFull = 1,    // Stop: both memtables full, flush pending.
  kL0Stop = 2,          // Stop: L0 file count at the hard limit.
};

const char* WriteStallCauseName(WriteStallCause cause);

struct WriteStallInfo {
  WriteStallCause cause = WriteStallCause::kCompactionDebt;
  uint64_t micros = 0;  // End only: how long this pass blocked.
};

struct BackgroundErrorInfo {
  Status status;
  bool hard = false;  // Hard errors do not auto-resume.
};

struct DeviceHealthChangeInfo {
  /// Which card's breaker changed state. -1 for a single-device setup
  /// whose monitor was not bound to a card id.
  int card_id = -1;
  bool quarantined = false;  // New breaker state.
  int consecutive_failures = 0;
};

/// A table failed an integrity check (DESIGN.md §14) — raised by the
/// background scrubber, a compaction that tripped over a bad input, or
/// any other detector, always before the file is quarantined.
struct CorruptionInfo {
  uint64_t file_number = 0;
  int level = -1;
  uint64_t file_size = 0;
  /// Which detector found it: "scrub", "compaction", ...
  std::string source;
  Status status;  // The corruption status with the stage detail.
};

/// A corrupt table was quarantined: reads now route around it and a
/// repair job owns it until the repair edit lands.
struct FileQuarantineInfo {
  uint64_t file_number = 0;
  int level = -1;
};

/// One full scrub cycle finished examining every live table it set out
/// to check.
struct ScrubCycleInfo {
  uint64_t files_scanned = 0;
  uint64_t bytes_scanned = 0;
  uint64_t corruptions_found = 0;
  uint64_t micros = 0;
};

/// User callback interface, registered via Options::listeners.
///
/// Threading contract: callbacks fire on DB background or writer
/// threads with NO DB lock held. They may read event fields and record
/// them anywhere, but must not call back into the emitting DB (the
/// write path is blocked behind some of these events) and should
/// return quickly — a slow listener delays flushes, compactions, and
/// stalled writers. Default implementations are no-ops so subclasses
/// override only what they watch.
class EventListener {
 public:
  virtual ~EventListener() = default;

  virtual void OnFlushBegin(const FlushJobInfo& info) {}
  virtual void OnFlushCompleted(const FlushJobInfo& info) {}
  virtual void OnCompactionBegin(const CompactionJobInfo& info) {}
  virtual void OnCompactionCompleted(const CompactionJobInfo& info) {}
  virtual void OnOffloadRetry(const OffloadRetryInfo& info) {}
  virtual void OnOffloadFallback(const OffloadFallbackInfo& info) {}
  virtual void OnWriteStallBegin(const WriteStallInfo& info) {}
  virtual void OnWriteStallEnd(const WriteStallInfo& info) {}
  virtual void OnBackgroundError(const BackgroundErrorInfo& info) {}
  virtual void OnBackgroundErrorResumed() {}
  virtual void OnDeviceHealthChange(const DeviceHealthChangeInfo& info) {}
  virtual void OnCorruptionDetected(const CorruptionInfo& info) {}
  virtual void OnFileQuarantined(const FileQuarantineInfo& info) {}
  virtual void OnScrubCompleted(const ScrubCycleInfo& info) {}
};

/// Fan-out helper the DB and executor share. Holds borrowed listener
/// pointers (null entries dropped at construction); immutable after
/// construction, so it is safe to call from any thread without a lock.
class EventNotifier {
 public:
  EventNotifier() = default;
  explicit EventNotifier(const std::vector<EventListener*>& listeners);

  /// False when no listeners are registered — callers skip building
  /// the info struct (and any mutex juggling) entirely.
  bool active() const { return !listeners_.empty(); }

  void NotifyFlushBegin(const FlushJobInfo& info) const;
  void NotifyFlushCompleted(const FlushJobInfo& info) const;
  void NotifyCompactionBegin(const CompactionJobInfo& info) const;
  void NotifyCompactionCompleted(const CompactionJobInfo& info) const;
  void NotifyOffloadRetry(const OffloadRetryInfo& info) const;
  void NotifyOffloadFallback(const OffloadFallbackInfo& info) const;
  void NotifyWriteStallBegin(const WriteStallInfo& info) const;
  void NotifyWriteStallEnd(const WriteStallInfo& info) const;
  void NotifyBackgroundError(const BackgroundErrorInfo& info) const;
  void NotifyBackgroundErrorResumed() const;
  void NotifyDeviceHealthChange(const DeviceHealthChangeInfo& info) const;
  void NotifyCorruptionDetected(const CorruptionInfo& info) const;
  void NotifyFileQuarantined(const FileQuarantineInfo& info) const;
  void NotifyScrubCompleted(const ScrubCycleInfo& info) const;

 private:
  std::vector<EventListener*> listeners_;
};

}  // namespace obs
}  // namespace fcae

#endif  // FCAE_OBS_EVENT_LISTENER_H_
