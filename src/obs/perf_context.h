#ifndef FCAE_OBS_PERF_CONTEXT_H_
#define FCAE_OBS_PERF_CONTEXT_H_

#include <cstdint>
#include <string>

namespace fcae {
namespace obs {

/// How much per-operation accounting the calling thread pays for.
/// kDisable reduces every tick site to a single thread-local load and
/// branch; kEnableCount adds counter increments; kEnableTime adds
/// clock reads around the timed sections (WAL sync, block reads,
/// device attempts), which is the only level that makes *_micros
/// fields nonzero.
enum class PerfLevel : unsigned char {
  kDisable = 0,
  kEnableCount = 1,
  kEnableTime = 2,
};

/// Per-operation counters for the calling thread. Reset() before an
/// operation, read the fields after; nothing here is shared between
/// threads, so no synchronisation is needed (or provided).
///
/// Field names are part of the observability contract:
/// bench/metrics_schema.json lists them under "perf_context" and
/// tools/analysis/fcae_check.py fails when the two drift.
struct PerfContext {
  // Read path.
  uint64_t bloom_filter_hits = 0;       // Filter said "maybe present".
  uint64_t bloom_filter_negatives = 0;  // Filter proved absence; no block read.
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_read_count = 0;  // Data blocks fetched from a table file.
  uint64_t block_read_bytes = 0;
  uint64_t block_read_micros = 0;
  uint64_t memtable_probes = 0;
  uint64_t immutable_memtable_probes = 0;
  uint64_t sst_probes = 0;  // Table files consulted by Version::Get.
  uint64_t table_cache_hits = 0;
  uint64_t table_cache_misses = 0;
  uint64_t internal_keys_skipped = 0;  // Hidden entries stepped over by DBIter.
  uint64_t merge_iterator_seeks = 0;

  // Write path.
  uint64_t wal_appends = 0;
  uint64_t wal_append_micros = 0;
  uint64_t wal_syncs = 0;
  uint64_t wal_sync_micros = 0;
  uint64_t write_delays = 0;  // MakeRoomForWrite slowdown passes.
  uint64_t write_delay_micros = 0;
  uint64_t write_stops = 0;  // Full stalls (memtable limit or L0 stop).
  uint64_t write_stop_micros = 0;

  // Offload executor (ticked on the compaction/shard thread).
  uint64_t offload_queue_wait_micros = 0;
  uint64_t offload_device_attempts = 0;
  uint64_t offload_device_micros = 0;
  uint64_t offload_verify_micros = 0;
  uint64_t offload_cpu_fallbacks = 0;
  uint64_t offload_cpu_fallback_micros = 0;

  void Reset();

  /// "name=value" pairs for every nonzero field, space-separated, in
  /// declaration order. Empty string when everything is zero.
  std::string ToString() const;
};

/// Per-thread file I/O accounting, ticked at the Env boundary users of
/// this layer care about (table block reads, WAL writes and syncs).
struct IOStatsContext {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_micros = 0;
  uint64_t write_micros = 0;
  uint64_t sync_micros = 0;

  void Reset();
  std::string ToString() const;
};

namespace perf_internal {
// Exposed so the tick macros compile to a TLS load + branch with no
// function call; treat as private to this header.
extern thread_local PerfLevel tls_perf_level;
extern thread_local PerfContext tls_perf_context;
extern thread_local IOStatsContext tls_io_stats;
}  // namespace perf_internal

inline PerfLevel GetPerfLevel() { return perf_internal::tls_perf_level; }
void SetPerfLevel(PerfLevel level);

inline PerfContext* GetPerfContext() {
  return &perf_internal::tls_perf_context;
}
inline IOStatsContext* GetIOStats() { return &perf_internal::tls_io_stats; }

/// Monotonic clock for perf timing. Same source as trace timestamps;
/// display/attribution only, never fed back into the crash model.
uint64_t PerfNowMicros();

/// Clock read gated on kEnableTime: returns 0 (and skips the clock)
/// unless the calling thread is timing. For tick sites that bracket a
/// call they cannot wrap in a PerfTimer scope.
inline uint64_t PerfNowMicrosIfEnabled() {
  return GetPerfLevel() >= PerfLevel::kEnableTime ? PerfNowMicros() : 0;
}

/// RAII timer charging wall micros to a PerfContext/IOStatsContext
/// field. Reads the clock only when the thread's level is kEnableTime,
/// so a disabled or count-only thread pays one branch per scope.
class PerfTimer {
 public:
  explicit PerfTimer(uint64_t* field)
      : field_(GetPerfLevel() >= PerfLevel::kEnableTime ? field : nullptr),
        start_(field_ == nullptr ? 0 : PerfNowMicros()) {}

  PerfTimer(const PerfTimer&) = delete;
  PerfTimer& operator=(const PerfTimer&) = delete;

  ~PerfTimer() {
    if (field_ != nullptr) {
      *field_ += PerfNowMicros() - start_;
    }
  }

 private:
  uint64_t* field_;
  uint64_t start_;
};

}  // namespace obs
}  // namespace fcae

/// Tick-site macros. Each expands to one TLS load + branch when the
/// calling thread's perf level is kDisable.
#define FCAE_PERF_COUNT(field, amount)                                  \
  do {                                                                  \
    if (::fcae::obs::GetPerfLevel() >=                                  \
        ::fcae::obs::PerfLevel::kEnableCount) {                         \
      ::fcae::obs::GetPerfContext()->field +=                           \
          static_cast<uint64_t>(amount);                                \
    }                                                                   \
  } while (0)

/// Adds externally measured wall micros (e.g. a duration the caller
/// already computed for its own metrics) to a *_micros field.
#define FCAE_PERF_TIME(field, micros)                                   \
  do {                                                                  \
    if (::fcae::obs::GetPerfLevel() >=                                  \
        ::fcae::obs::PerfLevel::kEnableTime) {                          \
      ::fcae::obs::GetPerfContext()->field +=                           \
          static_cast<uint64_t>(micros);                                \
    }                                                                   \
  } while (0)

/// Scoped timer charging the enclosing block's wall time to `field`.
#define FCAE_PERF_TIMER_GUARD(var, field)                               \
  ::fcae::obs::PerfTimer var(&::fcae::obs::GetPerfContext()->field)

#define FCAE_IOSTATS_COUNT(field, amount)                               \
  do {                                                                  \
    if (::fcae::obs::GetPerfLevel() >=                                  \
        ::fcae::obs::PerfLevel::kEnableCount) {                         \
      ::fcae::obs::GetIOStats()->field += static_cast<uint64_t>(amount); \
    }                                                                   \
  } while (0)

#define FCAE_IOSTATS_TIMER_GUARD(var, field)                            \
  ::fcae::obs::PerfTimer var(&::fcae::obs::GetIOStats()->field)

#endif  // FCAE_OBS_PERF_CONTEXT_H_
