#ifndef FCAE_OBS_LOGGER_H_
#define FCAE_OBS_LOGGER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fcae {
namespace obs {

/// One structured log line. `tag` names the record family (the stats
/// dumper emits "fcae.stats"); `fields` carries machine-readable
/// key/value pairs alongside the human-readable `message`.
struct LogRecord {
  enum class Level : unsigned char { kInfo = 0, kWarn = 1, kError = 2 };

  Level level = Level::kInfo;
  uint64_t ts_micros = 0;  // Trace clock (steady, process-relative).
  std::string tag;
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;
};

const char* LogLevelName(LogRecord::Level level);

/// "ts [LEVEL] tag key=value ... message" — the canonical one-line
/// rendering sinks can reuse. Multi-line messages are indented so a
/// stats table stays grouped under its header line.
std::string FormatLogRecord(const LogRecord& record);

/// Structured log sink (Options::info_log). Log() is called from DB
/// background threads with no DB lock held; implementations must be
/// thread-safe and must not call back into the DB.
class Logger {
 public:
  virtual ~Logger() = default;
  virtual void Log(const LogRecord& record) = 0;
};

/// Default sink: FormatLogRecord to stderr. Useful for benches and
/// examples that want stats dumps visible without custom plumbing.
class StderrLogger : public Logger {
 public:
  void Log(const LogRecord& record) override;
};

}  // namespace obs
}  // namespace fcae

#endif  // FCAE_OBS_LOGGER_H_
