#include "obs/stats_dumper.h"

#include <cassert>

#include "util/env.h"

namespace fcae {
namespace obs {

namespace {
// The loop sleeps in short chunks so Stop() never waits anywhere near
// a full period (periods are seconds; chunks are 10ms).
constexpr uint64_t kSleepChunkMicros = 10 * 1000;
}  // namespace

StatsDumper::StatsDumper(Env* env, uint64_t period_micros,
                         std::function<void(uint64_t)> dump)
    : env_(env),
      period_micros_(period_micros == 0 ? 1 : period_micros),
      dump_(std::move(dump)),
      cv_(&mutex_) {
  assert(env != nullptr);
  assert(dump_ != nullptr);
}

StatsDumper::~StatsDumper() { Stop(); }

void StatsDumper::Start() {
  {
    MutexLock lock(&mutex_);
    if (started_) {
      return;
    }
    started_ = true;
  }
  env_->SchedulePool("fcae-stats", 1, &StatsDumper::ThreadMain, this);
}

void StatsDumper::Stop() {
  MutexLock lock(&mutex_);
  if (!started_) {
    return;
  }
  stop_requested_ = true;
  while (!exited_) {
    cv_.Wait();
  }
}

void StatsDumper::ThreadMain(void* arg) {
  static_cast<StatsDumper*>(arg)->Loop();
}

void StatsDumper::Loop() {
  uint64_t slept = 0;
  for (;;) {
    {
      MutexLock lock(&mutex_);
      if (stop_requested_) {
        break;
      }
    }
    env_->SleepForMicroseconds(static_cast<int>(
        kSleepChunkMicros < period_micros_ ? kSleepChunkMicros
                                           : period_micros_));
    slept += kSleepChunkMicros < period_micros_ ? kSleepChunkMicros
                                                : period_micros_;
    if (slept < period_micros_) {
      continue;
    }
    slept = 0;
    {
      MutexLock lock(&mutex_);
      if (stop_requested_) {
        break;
      }
    }
    dump_(++dumps_);
  }
  MutexLock lock(&mutex_);
  exited_ = true;
  cv_.SignalAll();
}

}  // namespace obs
}  // namespace fcae
