#ifndef FCAE_OBS_METRICS_H_
#define FCAE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {
namespace obs {

/// A monotonically increasing counter. Increment is a relaxed atomic
/// add — safe from any thread, cheap enough for hot paths (single
/// uncontended RMW). Instances are owned by a MetricsRegistry and live
/// as long as it does; the pointer returned by registration is stable.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// A gauge: a value that can go up and down (queue depth, breaker
/// state). Last write wins.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// A log-bucketed histogram (util/histogram) behind its own leaf mutex.
/// Observe() is meant for per-event measurements (compaction, flush,
/// stall durations) — rare relative to the write path, so a brief
/// uncontended lock is acceptable.
class HistogramMetric {
 public:
  void Observe(double value) EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    histogram_.Add(value);
  }

  /// A consistent copy for percentile queries and export.
  Histogram snapshot() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return histogram_;
  }

 private:
  friend class MetricsRegistry;
  HistogramMetric() = default;
  mutable Mutex mutex_;
  Histogram histogram_ GUARDED_BY(mutex_);
};

/// A thread-safe registry of named metrics.
///
/// Naming scheme (see DESIGN.md §7): dotted lowercase
/// `<layer>.<subsystem>.<measure>[_<unit>]`, e.g.
/// `db.compaction.micros`, `fpga.decoder.fetch_stalls`,
/// `health.quarantines`. Registration (`counter()` / `gauge()` /
/// `histogram()`) takes the registry mutex once; callers on hot paths
/// should cache the returned pointer, which stays valid for the
/// registry's lifetime. Re-registering a name returns the existing
/// instrument, so independent components can share one time series.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name) EXCLUDES(mutex_);
  Gauge* gauge(const std::string& name) EXCLUDES(mutex_);
  HistogramMetric* histogram(const std::string& name) EXCLUDES(mutex_);

  /// One JSON object with every registered metric:
  ///   {"counters": {name: n, ...},
  ///    "gauges": {name: n, ...},
  ///    "histograms": {name: {"count": n, "min": x, "max": x,
  ///                          "mean": x, "p50": x, "p90": x, "p99": x},
  ///                   ...}}
  /// Names are emitted in sorted order so snapshots diff cleanly.
  std::string ToJson() const EXCLUDES(mutex_);

  /// A point-in-time copy of every instrument. Subtracting an earlier
  /// snapshot from current values yields the interval (windowed) view
  /// the stats dumper and GetProperty("fcae.stats") report.
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Histogram> histograms;

    /// Value this snapshot holds for a counter, 0 when it had not been
    /// registered yet — the right baseline for a delta.
    uint64_t CounterValue(const std::string& name) const;
  };
  Snapshot TakeSnapshot() const EXCLUDES(mutex_);

  /// Same JSON shape as ToJson(), but counters and histograms report
  /// the interval since `since`. Gauges are point-in-time by nature
  /// and are emitted unchanged. Instruments registered after the
  /// snapshot report their full value (baseline 0).
  std::string ToJsonSince(const Snapshot& since) const EXCLUDES(mutex_);

  /// Prometheus text exposition (format 0.0.4). Dotted names are
  /// mangled to `fcae_<name with non-alphanumerics as '_'>`; counters
  /// and gauges are plain samples with a `# TYPE` header, histograms
  /// are exposed as summaries (quantile="0.5|0.9|0.99" plus _sum and
  /// _count series). See DESIGN.md §12.
  std::string ExportPrometheus() const EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_
      GUARDED_BY(mutex_);
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by metrics and trace
/// emitters.
std::string JsonEscape(const std::string& in);

}  // namespace obs
}  // namespace fcae

#endif  // FCAE_OBS_METRICS_H_
