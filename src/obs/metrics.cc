#include "obs/metrics.h"

#include <cstdarg>
#include <cstdio>
#include <utility>

namespace fcae {
namespace obs {

namespace {

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out->append(buf);
}

/// %.17g round-trips doubles exactly while keeping integers short.
void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // JSON has no inf/nan literals; clamp to null (never expected here).
  if (buf[0] == 'i' || buf[0] == 'n' || buf[1] == 'i') {
    out->append("null");
  } else {
    out->append(buf);
  }
}

/// Shared histogram JSON body: {"count": n, "min": x, ...}.
void AppendHistogramJson(std::string* out, const Histogram& h) {
  AppendF(out, "{\"count\": %llu, ",
          static_cast<unsigned long long>(h.Count()));
  const bool empty = h.Count() == 0;
  *out += "\"min\": ";
  AppendDouble(out, empty ? 0 : h.Min());
  *out += ", \"max\": ";
  AppendDouble(out, empty ? 0 : h.Max());
  *out += ", \"mean\": ";
  AppendDouble(out, h.Average());
  *out += ", \"p50\": ";
  AppendDouble(out, empty ? 0 : h.Percentile(50));
  *out += ", \"p90\": ";
  AppendDouble(out, empty ? 0 : h.Percentile(90));
  *out += ", \"p99\": ";
  AppendDouble(out, empty ? 0 : h.Percentile(99));
  *out += "}";
}

/// Prometheus metric name: dotted lowercase -> fcae_ prefix with every
/// non-alphanumeric collapsed to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "fcae_";
  for (char c : name) {
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9');
    out += alnum ? c : '_';
  }
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter());
  }
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge());
  }
  return slot.get();
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new HistogramMetric());
  }
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    AppendF(&out, "%s\n    \"%s\": %llu", first ? "" : ",",
            JsonEscape(name).c_str(),
            static_cast<unsigned long long>(counter->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    AppendF(&out, "%s\n    \"%s\": %lld", first ? "" : ",",
            JsonEscape(name).c_str(),
            static_cast<long long>(gauge->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    // snapshot() would self-deadlock pattern-wise only if histogram
    // shared mutex_ — it has its own leaf lock, safe to take here.
    Histogram h = histogram->snapshot();
    AppendF(&out, "%s\n    \"%s\": ", first ? "" : ",",
            JsonEscape(name).c_str());
    AppendHistogramJson(&out, h);
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

uint64_t MetricsRegistry::Snapshot::CounterValue(
    const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  MutexLock lock(&mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

std::string MetricsRegistry::ToJsonSince(const Snapshot& since) const {
  MutexLock lock(&mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    const uint64_t now = counter->value();
    const uint64_t before = since.CounterValue(name);
    AppendF(&out, "%s\n    \"%s\": %llu", first ? "" : ",",
            JsonEscape(name).c_str(),
            static_cast<unsigned long long>(now >= before ? now - before
                                                          : 0));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    AppendF(&out, "%s\n    \"%s\": %lld", first ? "" : ",",
            JsonEscape(name).c_str(),
            static_cast<long long>(gauge->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    Histogram h = histogram->snapshot();
    auto it = since.histograms.find(name);
    if (it != since.histograms.end()) {
      h.Subtract(it->second);
    }
    AppendF(&out, "%s\n    \"%s\": ", first ? "" : ",",
            JsonEscape(name).c_str());
    AppendHistogramJson(&out, h);
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  MutexLock lock(&mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    AppendF(&out, "# TYPE %s counter\n", prom.c_str());
    AppendF(&out, "%s %llu\n", prom.c_str(),
            static_cast<unsigned long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    AppendF(&out, "# TYPE %s gauge\n", prom.c_str());
    AppendF(&out, "%s %lld\n", prom.c_str(),
            static_cast<long long>(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram h = histogram->snapshot();
    const std::string prom = PrometheusName(name);
    const bool empty = h.Count() == 0;
    AppendF(&out, "# TYPE %s summary\n", prom.c_str());
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"0.5", 50}, {"0.9", 90}, {"0.99", 99}};
    for (const auto& [label, p] : kQuantiles) {
      AppendF(&out, "%s{quantile=\"%s\"} ", prom.c_str(), label);
      AppendDouble(&out, empty ? 0 : h.Percentile(p));
      out += "\n";
    }
    AppendF(&out, "%s_sum ", prom.c_str());
    AppendDouble(&out, h.Average() * static_cast<double>(h.Count()));
    out += "\n";
    AppendF(&out, "%s_count %llu\n", prom.c_str(),
            static_cast<unsigned long long>(h.Count()));
  }
  return out;
}

}  // namespace obs
}  // namespace fcae
