#include "obs/metrics.h"

#include <cstdarg>
#include <cstdio>

namespace fcae {
namespace obs {

namespace {

void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out->append(buf);
}

/// %.17g round-trips doubles exactly while keeping integers short.
void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // JSON has no inf/nan literals; clamp to null (never expected here).
  if (buf[0] == 'i' || buf[0] == 'n' || buf[1] == 'i') {
    out->append("null");
  } else {
    out->append(buf);
  }
}

}  // namespace

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter());
  }
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge());
  }
  return slot.get();
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new HistogramMetric());
  }
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    AppendF(&out, "%s\n    \"%s\": %llu", first ? "" : ",",
            JsonEscape(name).c_str(),
            static_cast<unsigned long long>(counter->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    AppendF(&out, "%s\n    \"%s\": %lld", first ? "" : ",",
            JsonEscape(name).c_str(),
            static_cast<long long>(gauge->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    // snapshot() would self-deadlock pattern-wise only if histogram
    // shared mutex_ — it has its own leaf lock, safe to take here.
    Histogram h = histogram->snapshot();
    AppendF(&out, "%s\n    \"%s\": {\"count\": %llu, ", first ? "" : ",",
            JsonEscape(name).c_str(),
            static_cast<unsigned long long>(h.Count()));
    const bool empty = h.Count() == 0;
    out += "\"min\": ";
    AppendDouble(&out, empty ? 0 : h.Min());
    out += ", \"max\": ";
    AppendDouble(&out, empty ? 0 : h.Max());
    out += ", \"mean\": ";
    AppendDouble(&out, h.Average());
    out += ", \"p50\": ";
    AppendDouble(&out, empty ? 0 : h.Percentile(50));
    out += ", \"p90\": ";
    AppendDouble(&out, empty ? 0 : h.Percentile(90));
    out += ", \"p99\": ";
    AppendDouble(&out, empty ? 0 : h.Percentile(99));
    out += "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace fcae
