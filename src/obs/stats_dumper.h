#ifndef FCAE_OBS_STATS_DUMPER_H_
#define FCAE_OBS_STATS_DUMPER_H_

#include <cstdint>
#include <functional>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

class Env;

namespace obs {

/// Periodic background task driving continuous stats export
/// (Options::stats_dump_period_sec). Runs on the Env's worker pool
/// ("fcae-stats", one thread) and invokes the dump callback every
/// period until stopped. The callback runs with no lock of this class
/// held, so it may do arbitrary work (take the DB mutex, format stats,
/// write to a Logger); it receives the 1-based dump sequence number.
///
/// Stop() blocks until the loop has exited and is idempotent; the
/// destructor calls it, but owners whose callback touches state that
/// dies before the dumper (DBImpl) must call Stop() explicitly first.
class StatsDumper {
 public:
  StatsDumper(Env* env, uint64_t period_micros,
              std::function<void(uint64_t)> dump);
  ~StatsDumper();

  StatsDumper(const StatsDumper&) = delete;
  StatsDumper& operator=(const StatsDumper&) = delete;

  void Start() EXCLUDES(mutex_);
  void Stop() EXCLUDES(mutex_);

 private:
  static void ThreadMain(void* arg);
  void Loop() EXCLUDES(mutex_);

  Env* const env_;
  const uint64_t period_micros_;
  const std::function<void(uint64_t)> dump_;

  Mutex mutex_;
  CondVar cv_;
  bool started_ GUARDED_BY(mutex_) = false;
  bool stop_requested_ GUARDED_BY(mutex_) = false;
  bool exited_ GUARDED_BY(mutex_) = false;
  uint64_t dumps_ = 0;  // Loop-thread-local; read only after exit.
};

}  // namespace obs
}  // namespace fcae

#endif  // FCAE_OBS_STATS_DUMPER_H_
