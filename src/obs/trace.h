#ifndef FCAE_OBS_TRACE_H_
#define FCAE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {
namespace obs {

/// One structured trace event in the chrome://tracing event model.
/// phase 'X' is a complete span (ts + dur), phase 'i' an instant
/// annotation (retry, fallback, quarantine, ...).
struct TraceEvent {
  std::string name;  ///< e.g. "compaction", "merge", "dma_in"
  std::string cat;   ///< layer tag: "db", "host", "fpga", "syssim"
  char phase = 'X';  ///< 'X' = complete span, 'i' = instant
  uint64_t ts_micros = 0;
  uint64_t dur_micros = 0;  ///< 0 for instants
  uint64_t tid = 0;         ///< logical track (e.g. compaction sequence)
  /// Free-form key/value annotations, emitted under "args". Values are
  /// raw JSON fragments: pass "3" for a number, "\"cpu\"" for a string
  /// (see TraceRecorder::Quote).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Receives every event as it is recorded, in addition to (not instead
/// of) the ring buffer. Implementations must be thread-safe; they are
/// invoked outside the recorder's lock, so they may re-enter the
/// recorder (though there is rarely a reason to).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Append(const TraceEvent& event) = 0;
};

/// A bounded in-memory ring of trace events, exportable as
/// chrome://tracing JSON (load via chrome://tracing or Perfetto).
/// When the ring is full the oldest events are overwritten and
/// events_dropped() counts them, so a long-running DB keeps the most
/// recent window rather than failing or growing without bound.
class TraceRecorder {
 public:
  /// `capacity` is the max retained events; 4096 spans comfortably
  /// cover thousands of compactions between exports.
  explicit TraceRecorder(size_t capacity = 4096);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Installs a sink that observes every subsequent event. Pass
  /// nullptr to detach. The sink must outlive the recorder or be
  /// detached first.
  void set_sink(TraceSink* sink) EXCLUDES(mutex_);

  void Record(TraceEvent event) EXCLUDES(mutex_);

  /// Convenience: record a complete span.
  void RecordSpan(std::string name, std::string cat, uint64_t ts_micros,
                  uint64_t dur_micros, uint64_t tid,
                  std::vector<std::pair<std::string, std::string>> args = {})
      EXCLUDES(mutex_);

  /// Convenience: record an instant annotation.
  void RecordInstant(std::string name, std::string cat, uint64_t ts_micros,
                     uint64_t tid,
                     std::vector<std::pair<std::string, std::string>> args = {})
      EXCLUDES(mutex_);

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with events in
  /// recording order (oldest retained first).
  std::string ToJson() const EXCLUDES(mutex_);

  /// Events currently retained in the ring.
  size_t size() const EXCLUDES(mutex_);
  /// Events overwritten because the ring was full.
  uint64_t events_dropped() const EXCLUDES(mutex_);

  /// Wraps a string value as a JSON string literal for TraceEvent::args.
  static std::string Quote(const std::string& value);

 private:
  mutable Mutex mutex_;
  const size_t capacity_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mutex_);
  size_t next_ GUARDED_BY(mutex_) = 0;  ///< ring write index once full
  uint64_t dropped_ GUARDED_BY(mutex_) = 0;
  TraceSink* sink_ GUARDED_BY(mutex_) = nullptr;
};

/// Monotonic wall clock for span timestamps, microseconds. Distinct
/// from env time so obs stays usable without an Env (e.g. in the FPGA
/// simulator and unit tests).
uint64_t TraceNowMicros();

/// RAII helper: measures from construction to Finish()/destruction and
/// records one complete span. Annotations added via AddArg() between
/// construction and finish are attached to the span.
class SpanTimer {
 public:
  /// `recorder` may be null, making the timer a no-op.
  SpanTimer(TraceRecorder* recorder, std::string name, std::string cat,
            uint64_t tid);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  void AddArg(std::string key, std::string raw_json_value);

  /// Records the span now (idempotent); the destructor becomes a no-op.
  void Finish();

  uint64_t start_micros() const { return start_micros_; }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string cat_;
  uint64_t tid_;
  uint64_t start_micros_;
  std::vector<std::pair<std::string, std::string>> args_;
  bool finished_ = false;
};

}  // namespace obs
}  // namespace fcae

#endif  // FCAE_OBS_TRACE_H_
