#ifndef FCAE_UTIL_MUTEX_H_
#define FCAE_UTIL_MUTEX_H_

#include <cassert>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace fcae {

class CondVar;

/// A std::mutex wrapper carrying clang capability annotations, so
/// -Wthread-safety can statically check that GUARDED_BY members are only
/// touched with the right lock held. Zero-cost over std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// Tells the analysis to assume the lock is held from here on. A
  /// documentation aid for code reached only via locked paths the
  /// analysis cannot follow (e.g. through a std::function).
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Condition variable bound to a Mutex at construction, leveldb-port
/// style. Wait() must be called with the mutex held; it atomically
/// releases it while blocked and reacquires before returning, which is
/// invisible to the static analysis (the lock set is unchanged across
/// the call) — matching how callers reason about it.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) { assert(mu != nullptr); }
  ~CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }
  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

/// RAII lock holder: acquires in the constructor, releases in the
/// destructor. The SCOPED_CAPABILITY annotation lets the analysis track
/// the underlying mutex through the object's lifetime, including manual
/// Unlock()/Lock() spans on the mutex inside the scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace fcae

#endif  // FCAE_UTIL_MUTEX_H_
