#include "util/crash_env.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace fcae {

// ---------------------------------------------------------------------------
// CrashPointRegistry
// ---------------------------------------------------------------------------

CrashPointRegistry* CrashPointRegistry::Instance() {
  // Never destroyed: background threads may hit points during exit.
  static CrashPointRegistry* registry = new CrashPointRegistry;
  return registry;
}

void CrashPointRegistry::Arm(const std::string& point, int hit_count,
                             Handler handler) {
  assert(hit_count >= 1);
  MutexLock l(&mu_);
  auto it = armed_.find(point);
  if (it == armed_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
    it = armed_.emplace(point, ArmedPoint{}).first;
  }
  it->second.remaining = hit_count;
  it->second.handler = std::move(handler);
}

void CrashPointRegistry::Disarm(const std::string& point) {
  MutexLock l(&mu_);
  if (armed_.erase(point) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void CrashPointRegistry::DisarmAll() {
  MutexLock l(&mu_);
  armed_count_.fetch_sub(static_cast<int>(armed_.size()),
                         std::memory_order_relaxed);
  armed_.clear();
}

bool CrashPointRegistry::IsArmed(const std::string& point) {
  MutexLock l(&mu_);
  return armed_.find(point) != armed_.end();
}

void CrashPointRegistry::EnableHitCounting(bool on) {
  count_hits_.store(on, std::memory_order_relaxed);
}

uint64_t CrashPointRegistry::HitCount(const std::string& point) {
  MutexLock l(&mu_);
  auto it = hit_counts_.find(point);
  return it == hit_counts_.end() ? 0 : it->second;
}

void CrashPointRegistry::ResetHitCounts() {
  MutexLock l(&mu_);
  hit_counts_.clear();
}

void CrashPointRegistry::Hit(const char* point) {
  if (armed_count_.load(std::memory_order_relaxed) == 0 &&
      !count_hits_.load(std::memory_order_relaxed)) {
    return;  // hot path: nothing armed, nothing counted
  }
  Handler fire;
  {
    MutexLock l(&mu_);
    if (count_hits_.load(std::memory_order_relaxed)) {
      hit_counts_[point]++;
    }
    auto it = armed_.find(point);
    if (it != armed_.end() && --it->second.remaining <= 0) {
      fire = std::move(it->second.handler);
      armed_.erase(it);
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Outside the lock: the handler typically freezes a CrashInjectionEnv
  // and may re-enter the registry.
  if (fire) {
    fire(point);
  }
}

const std::vector<std::string>& CrashPointRegistry::KnownPoints() {
  // Keep in sync with the FCAE_CRASH_POINT call sites; the crash-matrix
  // test (tests/crash_recovery_test.cc) iterates exactly this list.
  static const std::vector<std::string>* points = new std::vector<std::string>{
      "wal:after_append",          // DBImpl::Write, record appended, pre-sync
      "wal:after_rotate_syncdir",  // MakeRoomForWrite, new log durable,
                                   // pre-writer-switch
      "flush:after_build",         // WriteLevel0Table, table built, pre-edit
      "manifest:after_append",     // LogAndApply, record appended, pre-sync
      "manifest:after_sync",       // LogAndApply, synced, pre-CURRENT switch
      "current:after_tmp_write",   // SetCurrentFile, tmp durable, pre-rename
      "current:after_rename",      // SetCurrentFile, renamed, pre-dir-sync
      "shard:between_installs",    // shards done, results not yet installed
      "compaction:after_install",  // version edit applied and durable
      "offload:after_device_write",  // device outputs staged to tables
      "scheduler:manifest_locked",   // manifest lock held by a worker
  };
  return *points;
}

// ---------------------------------------------------------------------------
// CrashInjectionEnv
// ---------------------------------------------------------------------------

namespace {

Status FrozenError(const char* what) {
  return Status::IOError(what, "simulated crash (env frozen)");
}

Status InjectedError(const char* what) {
  return Status::IOError(what, "injected write error");
}

Status StaleHandleError(const std::string& fname) {
  return Status::IOError(fname, "stale file handle after simulated crash");
}

}  // namespace

/// Forwards writes to the wrapped file while reporting Sync()s back to
/// the env so it can update the inode's durable content. Handles opened
/// before a Crash() carry a stale generation and fail every operation.
class CrashWritableFile : public WritableFile {
 public:
  CrashWritableFile(CrashInjectionEnv* env, std::string fname,
                    WritableFile* base, CrashInjectionEnv::NodeRef node)
      : env_(env),
        fname_(std::move(fname)),
        base_(base),
        node_(std::move(node)),
        generation_(env->generation()) {}

  ~CrashWritableFile() override { delete base_; }

  Status Append(const Slice& data) override {
    Status s = CheckWritable();
    if (!s.ok()) return s;
    return base_->Append(data);
  }

  Status Flush() override {
    Status s = CheckWritable();
    if (!s.ok()) return s;
    return base_->Flush();
  }

  Status Sync() override {
    Status s = CheckWritable();
    if (!s.ok()) return s;
    {
      MutexLock l(&env_->mu_);
      if (env_->fail_syncs_) return InjectedError(fname_.c_str());
    }
    s = base_->Sync();
    if (s.ok()) {
      env_->NoteFileSynced(fname_, node_);
    }
    return s;
  }

  Status Close() override {
    // Always release the underlying handle, even post-crash.
    return base_->Close();
  }

 private:
  Status CheckWritable() {
    if (env_->generation() != generation_) {
      return StaleHandleError(fname_);
    }
    MutexLock l(&env_->mu_);
    return env_->FailIfFrozenLocked(fname_.c_str());
  }

  CrashInjectionEnv* const env_;
  const std::string fname_;
  WritableFile* const base_;
  const CrashInjectionEnv::NodeRef node_;
  const uint64_t generation_;
};

CrashInjectionEnv::CrashInjectionEnv(Env* base) : base_(base) {}

CrashInjectionEnv::~CrashInjectionEnv() = default;

std::string CrashInjectionEnv::ParentDir(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status CrashInjectionEnv::FailIfFrozenLocked(const char* what) {
  if (crashed_) return FrozenError(what);
  if (fail_writes_) return InjectedError(what);
  return Status::OK();
}

Status CrashInjectionEnv::NewSequentialFile(const std::string& fname,
                                            SequentialFile** result) {
  return base_->NewSequentialFile(fname, result);
}

Status CrashInjectionEnv::NewRandomAccessFile(const std::string& fname,
                                              RandomAccessFile** result) {
  return base_->NewRandomAccessFile(fname, result);
}

Status CrashInjectionEnv::NewWritableFile(const std::string& fname,
                                          WritableFile** result) {
  *result = nullptr;
  MutexLock l(&mu_);
  Status s = FailIfFrozenLocked(fname.c_str());
  if (!s.ok()) return s;
  WritableFile* base_file = nullptr;
  s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) return s;
  // O_TRUNC semantics: the live name now refers to a fresh inode. The
  // durable namespace keeps whatever it pointed at until the dirent op
  // below is committed by SyncDir.
  NodeRef node = std::make_shared<FileNode>();
  live_[fname] = node;
  dirs_.insert(ParentDir(fname));
  pending_[ParentDir(fname)].push_back(
      PendingOp{PendingOp::kCreate, fname, "", node});
  *result = new CrashWritableFile(this, fname, base_file, node);
  return Status::OK();
}

Status CrashInjectionEnv::NewAppendableFile(const std::string& fname,
                                            WritableFile** result) {
  *result = nullptr;
  MutexLock l(&mu_);
  Status s = FailIfFrozenLocked(fname.c_str());
  if (!s.ok()) return s;
  WritableFile* base_file = nullptr;
  s = base_->NewAppendableFile(fname, &base_file);
  if (!s.ok()) return s;
  NodeRef node;
  auto it = live_.find(fname);
  if (it != live_.end()) {
    node = it->second;  // appending to the existing inode
  } else {
    node = std::make_shared<FileNode>();
    live_[fname] = node;
    dirs_.insert(ParentDir(fname));
    pending_[ParentDir(fname)].push_back(
        PendingOp{PendingOp::kCreate, fname, "", node});
  }
  *result = new CrashWritableFile(this, fname, base_file, node);
  return Status::OK();
}

bool CrashInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status CrashInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status CrashInjectionEnv::RemoveFile(const std::string& fname) {
  MutexLock l(&mu_);
  Status s = FailIfFrozenLocked(fname.c_str());
  if (!s.ok()) return s;
  s = base_->RemoveFile(fname);
  if (s.ok()) {
    live_.erase(fname);
    // The unlink is not durable until SyncDir: a crash before that
    // resurrects the file (that is how orphans appear on disk).
    pending_[ParentDir(fname)].push_back(
        PendingOp{PendingOp::kRemove, fname, "", nullptr});
  }
  return s;
}

Status CrashInjectionEnv::CreateDir(const std::string& dirname) {
  MutexLock l(&mu_);
  Status s = FailIfFrozenLocked(dirname.c_str());
  if (!s.ok()) return s;
  s = base_->CreateDir(dirname);
  if (s.ok()) dirs_.insert(dirname);
  return s;
}

Status CrashInjectionEnv::RemoveDir(const std::string& dirname) {
  MutexLock l(&mu_);
  Status s = FailIfFrozenLocked(dirname.c_str());
  if (!s.ok()) return s;
  return base_->RemoveDir(dirname);
}

Status CrashInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status CrashInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  MutexLock l(&mu_);
  Status s = FailIfFrozenLocked(src.c_str());
  if (!s.ok()) return s;
  s = base_->RenameFile(src, target);
  if (s.ok()) {
    auto it = live_.find(src);
    NodeRef node =
        (it != live_.end()) ? it->second : std::make_shared<FileNode>();
    if (it != live_.end()) live_.erase(it);
    live_[target] = node;
    dirs_.insert(ParentDir(target));
    pending_[ParentDir(target)].push_back(
        PendingOp{PendingOp::kRename, src, target, nullptr});
  }
  return s;
}

Status CrashInjectionEnv::SyncDir(const std::string& dir) {
  MutexLock l(&mu_);
  Status s = FailIfFrozenLocked(dir.c_str());
  if (!s.ok()) return s;
  s = base_->SyncDir(dir);
  if (!s.ok()) return s;
  // Commit the directory's pending metadata ops, in order.
  auto it = pending_.find(dir);
  if (it != pending_.end()) {
    for (const PendingOp& op : it->second) {
      switch (op.kind) {
        case PendingOp::kCreate:
          durable_[op.a] = op.node;
          break;
        case PendingOp::kRename: {
          auto src = durable_.find(op.a);
          if (src != durable_.end()) {
            durable_[op.b] = src->second;
            durable_.erase(op.a);
          }
          break;
        }
        case PendingOp::kRemove:
          durable_.erase(op.a);
          break;
      }
    }
    pending_.erase(it);
  }
  return Status::OK();
}

Status CrashInjectionEnv::LockFile(const std::string& fname, FileLock** lock) {
  {
    MutexLock l(&mu_);
    Status s = FailIfFrozenLocked(fname.c_str());
    if (!s.ok()) return s;
  }
  return base_->LockFile(fname, lock);
}

Status CrashInjectionEnv::UnlockFile(FileLock* lock) {
  return base_->UnlockFile(lock);
}

void CrashInjectionEnv::Schedule(void (*function)(void*), void* arg) {
  base_->Schedule(function, arg);
}

void CrashInjectionEnv::SchedulePool(const char* pool, int max_threads,
                                     void (*function)(void*), void* arg) {
  base_->SchedulePool(pool, max_threads, function, arg);
}

void CrashInjectionEnv::StartThread(void (*function)(void*), void* arg) {
  base_->StartThread(function, arg);
}

uint64_t CrashInjectionEnv::NowMicros() { return base_->NowMicros(); }

void CrashInjectionEnv::SleepForMicroseconds(int micros) {
  base_->SleepForMicroseconds(micros);
}

void CrashInjectionEnv::NoteFileSynced(const std::string& fname,
                                       const NodeRef& node) {
  // Read outside the env lock (the base Env is thread-safe); publish
  // the new durable content under it.
  std::string content;
  if (!ReadFileToString(base_, fname, &content).ok()) return;
  MutexLock l(&mu_);
  node->synced = std::move(content);
}

void CrashInjectionEnv::Crash() {
  MutexLock l(&mu_);
  if (crashed_) return;
  crashed_ = true;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

bool CrashInjectionEnv::crashed() const {
  MutexLock l(&mu_);
  return crashed_;
}

void CrashInjectionEnv::ResetToDurableState() {
  MutexLock l(&mu_);
  assert(crashed_);
  // Remove every live file whose dirent did not survive.
  for (const std::string& dir : dirs_) {
    std::vector<std::string> children;
    if (!base_->GetChildren(dir, &children).ok()) continue;
    for (const std::string& child : children) {
      if (child == "." || child == "..") continue;
      std::string full = dir.empty() ? child : dir + "/" + child;
      if (durable_.find(full) == durable_.end()) {
        // ignore errors (may be a subdir)
        base_->RemoveFile(full).IgnoreError();
      }
    }
  }
  // Rewrite survivors to their last-synced content. A failure here would
  // silently corrupt the simulated durable state and invalidate whatever
  // the crash matrix concludes, so it is fatal to the harness.
  for (const auto& [path, node] : durable_) {
    Status rewrite = WriteStringToFile(base_, node->synced, path);
    if (!rewrite.ok()) {
      std::fprintf(stderr,
                   "CrashInjectionEnv::ResetToDurableState: cannot rewrite "
                   "'%s': %s\n",
                   path.c_str(), rewrite.ToString().c_str());
      std::abort();
    }
  }
  live_ = durable_;
  pending_.clear();
  crashed_ = false;
  fail_writes_ = false;
  fail_syncs_ = false;
}

void CrashInjectionEnv::ArmCrashPoint(const std::string& point, int hit) {
  CrashPointRegistry::Instance()->Arm(
      point, hit, [this](const char*) { this->Crash(); });
}

void CrashInjectionEnv::SetWritesFail(bool fail) {
  MutexLock l(&mu_);
  fail_writes_ = fail;
}

void CrashInjectionEnv::SetSyncsFail(bool fail) {
  MutexLock l(&mu_);
  fail_syncs_ = fail;
}

std::vector<std::string> CrashInjectionEnv::DurableChildren(
    const std::string& dir) {
  MutexLock l(&mu_);
  std::vector<std::string> out;
  const std::string prefix = dir + "/";
  for (const auto& [path, node] : durable_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path.find('/', prefix.size()) == std::string::npos) {
      out.push_back(path.substr(prefix.size()));
    }
  }
  return out;
}

}  // namespace fcae
