#ifndef FCAE_UTIL_ARENA_H_
#define FCAE_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fcae {

/// A bump-pointer allocator. Allocations are freed all at once when the
/// Arena is destroyed; used by the memtable where per-entry deallocation
/// would be wasted work.
class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to a newly allocated block of `bytes` bytes.
  char* Allocate(size_t bytes);

  /// Like Allocate() but guarantees pointer-size alignment.
  char* AllocateAligned(size_t bytes);

  /// Approximate total memory footprint of the arena.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::Allocate(size_t bytes) {
  // 0-byte allocations have no use and would complicate the invariants.
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace fcae

#endif  // FCAE_UTIL_ARENA_H_
