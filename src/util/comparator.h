#ifndef FCAE_UTIL_COMPARATOR_H_
#define FCAE_UTIL_COMPARATOR_H_

#include <string>

#include "util/slice.h"

namespace fcae {

/// A Comparator provides a total order across slices used as keys. All
/// methods must be thread-safe.
class Comparator {
 public:
  virtual ~Comparator() = default;

  /// Three-way comparison: <0, ==0, >0 as a <, ==, > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  /// The name of the comparator, persisted in the manifest to reject
  /// opening a database with a mismatched ordering.
  virtual const char* Name() const = 0;

  // Advanced functions used to reduce index block sizes.

  /// If *start < limit, changes *start to a short string in [start,limit).
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;

  /// Changes *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

/// Returns the builtin lexicographic bytewise comparator. The result is a
/// process-lifetime singleton; do not delete.
const Comparator* BytewiseComparator();

}  // namespace fcae

#endif  // FCAE_UTIL_COMPARATOR_H_
