#ifndef FCAE_UTIL_MEM_ENV_H_
#define FCAE_UTIL_MEM_ENV_H_

#include "util/env.h"

namespace fcae {

/// Returns a new Env that stores its "files" entirely in memory while
/// delegating time/thread facilities to `base_env` (which must outlive the
/// result). Used by tests and benchmarks so the storage engine can run at
/// full speed and deterministically without touching a real filesystem.
Env* NewMemEnv(Env* base_env);

}  // namespace fcae

#endif  // FCAE_UTIL_MEM_ENV_H_
