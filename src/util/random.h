#ifndef FCAE_UTIL_RANDOM_H_
#define FCAE_UTIL_RANDOM_H_

#include <cstdint>

namespace fcae {

/// A simple, fast, reproducible pseudo-random generator (Lehmer / Park-
/// Miller minimal standard). Used by skiplists, workload generators and
/// tests where determinism across runs matters more than statistical
/// quality.
class Random {
 public:
  explicit Random(uint32_t s) : seed_(s & 0x7fffffffu) {
    // Avoid the two invalid seeds of the Lehmer generator.
    if (seed_ == 0 || seed_ == 2147483647L) {
      seed_ = 1;
    }
  }

  uint32_t Next() {
    static const uint32_t kM = 2147483647L;  // 2^31-1
    static const uint64_t kA = 16807;        // Minimal-standard multiplier.
    // seed_ = (seed_ * A) % M via 64-bit intermediate.
    uint64_t product = seed_ * kA;
    seed_ = static_cast<uint32_t>((product >> 31) + (product & kM));
    if (seed_ > kM) {
      seed_ -= kM;
    }
    return seed_;
  }

  /// Returns a uniformly distributed value in [0, n-1]; requires n > 0.
  uint32_t Uniform(int n) { return Next() % n; }

  /// Returns true with probability 1/n; requires n > 0.
  bool OneIn(int n) { return (Next() % n) == 0; }

  /// Returns a value in [0, 2^max_log-1] with exponentially decaying
  /// probability of larger values.
  uint32_t Skewed(int max_log) { return Uniform(1 << Uniform(max_log + 1)); }

  /// Returns a uniform double in [0, 1).
  double NextDouble() { return Next() / 2147483647.0; }

  /// Returns a uniform 64-bit value.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next()) << 31) | Next();
  }

 private:
  uint32_t seed_;
};

}  // namespace fcae

#endif  // FCAE_UTIL_RANDOM_H_
