#include "util/filter_policy.h"

#include <cstdint>

#include "util/coding.h"

namespace fcae {

namespace {

uint32_t BloomHash(const Slice& key) {
  // Murmur-inspired hash, identical structure to LevelDB's Hash().
  const uint32_t seed = 0xbc9f1d34;
  const uint32_t m = 0xc6a4a793;
  const char* data = key.data();
  size_t n = key.size();
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w = DecodeFixed32(data);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> 24);
      break;
  }
  return h;
}

class BloomFilterPolicy : public FilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key) : bits_per_key_(bits_per_key) {
    // Round down k to reduce probing cost a little; clamp to sane range.
    k_ = static_cast<size_t>(bits_per_key * 0.69);  // 0.69 =~ ln(2)
    if (k_ < 1) k_ = 1;
    if (k_ > 30) k_ = 30;
  }

  const char* Name() const override { return "fcae.BuiltinBloomFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    size_t bits = n * bits_per_key_;
    // A tiny filter has a high false positive rate; enforce a floor.
    if (bits < 64) bits = 64;

    size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;

    const size_t init_size = dst->size();
    dst->resize(init_size + bytes, 0);
    dst->push_back(static_cast<char>(k_));  // Remember # of probes.
    char* array = &(*dst)[init_size];
    for (int i = 0; i < n; i++) {
      // Double-hashing: one base hash plus a rotated delta per probe.
      uint32_t h = BloomHash(keys[i]);
      const uint32_t delta = (h >> 17) | (h << 15);
      for (size_t j = 0; j < k_; j++) {
        const uint32_t bitpos = h % bits;
        array[bitpos / 8] |= (1 << (bitpos % 8));
        h += delta;
      }
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& bloom_filter) const override {
    const size_t len = bloom_filter.size();
    if (len < 2) return false;

    const char* array = bloom_filter.data();
    const size_t bits = (len - 1) * 8;

    const size_t k = static_cast<uint8_t>(array[len - 1]);
    if (k > 30) {
      // Reserved for potentially new encodings; treat as a match.
      return true;
    }

    uint32_t h = BloomHash(key);
    const uint32_t delta = (h >> 17) | (h << 15);
    for (size_t j = 0; j < k; j++) {
      const uint32_t bitpos = h % bits;
      if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
      h += delta;
    }
    return true;
  }

 private:
  int bits_per_key_;
  size_t k_;
};

}  // namespace

const FilterPolicy* NewBloomFilterPolicy(int bits_per_key) {
  return new BloomFilterPolicy(bits_per_key);
}

}  // namespace fcae
