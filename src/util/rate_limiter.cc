#include "util/rate_limiter.h"

#include <algorithm>

namespace fcae {

namespace {
// One refill window bounds both the burst credit and the largest single
// installment a request may claim, so neither lane can monopolize the
// bucket for longer than this.
constexpr uint64_t kRefillWindowMicros = 100 * 1000;
// Sleep in bounded chunks: a rate change or a finished high-pri burst is
// picked up within one chunk, and hooked test clocks advance in
// deterministic steps.
constexpr uint64_t kSleepChunkMicros = 1000;
}  // namespace

RateLimiter::RateLimiter(Env* env, uint64_t bytes_per_second)
    : env_(env), bytes_per_second_(bytes_per_second) {
  MutexLock l(&mutex_);
  last_refill_micros_ = env_->NowMicros();
}

void RateLimiter::SetBytesPerSecond(uint64_t bytes_per_second) {
  MutexLock l(&mutex_);
  // Settle the old rate's accrual first so the change is not retroactive.
  Refill(env_->NowMicros());
  bytes_per_second_.store(bytes_per_second, std::memory_order_relaxed);
}

void RateLimiter::Refill(uint64_t now_micros) {
  const uint64_t rate = bytes_per_second_.load(std::memory_order_relaxed);
  if (now_micros <= last_refill_micros_) return;
  const uint64_t elapsed = now_micros - last_refill_micros_;
  last_refill_micros_ = now_micros;
  if (rate == 0) return;
  const int64_t burst_cap = static_cast<int64_t>(
      std::max<uint64_t>(1, rate * kRefillWindowMicros / 1000000));
  available_bytes_ += static_cast<int64_t>(rate * elapsed / 1000000);
  available_bytes_ = std::min(available_bytes_, burst_cap);
}

void RateLimiter::Request(uint64_t bytes, Priority pri) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  bytes_through_.fetch_add(bytes, std::memory_order_relaxed);
  if (bytes_per_second_.load(std::memory_order_relaxed) == 0) return;

  bool throttled = false;
  uint64_t waited = 0;
  MutexLock l(&mutex_);
  if (pri == Priority::kHigh) high_pri_waiting_++;
  uint64_t remaining = bytes;
  while (remaining > 0) {
    const uint64_t rate = bytes_per_second_.load(std::memory_order_relaxed);
    if (rate == 0) break;  // Throttle opened mid-wait.
    uint64_t now = env_->NowMicros();
    Refill(now);
    // A low-priority request yields whole windows while flushes wait.
    const bool must_yield = pri == Priority::kLow && high_pri_waiting_ > 0;
    if (!must_yield && available_bytes_ > 0) {
      const uint64_t installment = std::min(
          remaining, static_cast<uint64_t>(available_bytes_));
      available_bytes_ -= static_cast<int64_t>(installment);
      remaining -= installment;
      continue;
    }
    // Sleep until tokens could cover the shortfall (or one chunk when
    // yielding), with the lock released so the other lane can progress.
    uint64_t need_micros = kSleepChunkMicros;
    if (!must_yield && available_bytes_ <= 0) {
      const uint64_t deficit =
          static_cast<uint64_t>(-available_bytes_) + std::min(
              remaining, rate * kRefillWindowMicros / 1000000);
      need_micros = std::max<uint64_t>(1, deficit * 1000000 / rate);
    }
    const uint64_t chunk = std::min(need_micros, kSleepChunkMicros);
    if (!throttled) {
      throttled = true;
      throttled_bytes_.fetch_add(remaining, std::memory_order_relaxed);
    }
    mutex_.Unlock();
    env_->SleepForMicroseconds(static_cast<int>(chunk));
    mutex_.Lock();
    waited += chunk;
  }
  if (pri == Priority::kHigh) high_pri_waiting_--;
  if (waited > 0) wait_micros_.fetch_add(waited, std::memory_order_relaxed);
}

}  // namespace fcae
