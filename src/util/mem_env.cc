#include "util/mem_env.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

namespace {

/// Reference-counted in-memory file contents. Blocks of 8 KB keep append
/// cost amortized-constant without large reallocations.
class FileState {
 public:
  FileState() : refs_(0), size_(0) {}

  FileState(const FileState&) = delete;
  FileState& operator=(const FileState&) = delete;

  void Ref() {
    MutexLock guard(&refs_mutex_);
    ++refs_;
  }

  void Unref() {
    bool do_delete = false;
    {
      MutexLock guard(&refs_mutex_);
      --refs_;
      if (refs_ <= 0) {
        do_delete = true;
      }
    }
    if (do_delete) {
      delete this;
    }
  }

  uint64_t Size() const {
    MutexLock guard(&blocks_mutex_);
    return size_;
  }

  void Truncate() {
    MutexLock guard(&blocks_mutex_);
    blocks_.clear();
    size_ = 0;
  }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const {
    MutexLock guard(&blocks_mutex_);
    if (offset > size_) {
      return Status::IOError("Offset greater than file size.");
    }
    const uint64_t available = size_ - offset;
    if (n > available) {
      n = static_cast<size_t>(available);
    }
    if (n == 0) {
      *result = Slice();
      return Status::OK();
    }

    size_t block = static_cast<size_t>(offset / kBlockSize);
    size_t block_offset = offset % kBlockSize;
    size_t bytes_to_copy = n;
    char* dst = scratch;

    while (bytes_to_copy > 0) {
      size_t avail = kBlockSize - block_offset;
      if (avail > bytes_to_copy) {
        avail = bytes_to_copy;
      }
      std::memcpy(dst, blocks_[block].get() + block_offset, avail);
      bytes_to_copy -= avail;
      dst += avail;
      block++;
      block_offset = 0;
    }

    *result = Slice(scratch, n);
    return Status::OK();
  }

  Status Append(const Slice& data) {
    const char* src = data.data();
    size_t src_len = data.size();

    MutexLock guard(&blocks_mutex_);
    while (src_len > 0) {
      size_t avail;
      size_t offset = size_ % kBlockSize;

      if (offset != 0) {
        avail = kBlockSize - offset;
      } else {
        blocks_.push_back(std::make_unique<char[]>(kBlockSize));
        avail = kBlockSize;
      }

      if (avail > src_len) {
        avail = src_len;
      }
      std::memcpy(blocks_.back().get() + offset, src, avail);
      src_len -= avail;
      src += avail;
      size_ += avail;
    }
    return Status::OK();
  }

 private:
  enum { kBlockSize = 8 * 1024 };

  ~FileState() = default;  // Only Unref() deletes.

  Mutex refs_mutex_;
  int refs_ GUARDED_BY(refs_mutex_);

  mutable Mutex blocks_mutex_;
  std::vector<std::unique_ptr<char[]>> blocks_ GUARDED_BY(blocks_mutex_);
  uint64_t size_ GUARDED_BY(blocks_mutex_);
};

class MemSequentialFile : public SequentialFile {
 public:
  explicit MemSequentialFile(FileState* file) : file_(file), pos_(0) {
    file_->Ref();
  }
  ~MemSequentialFile() override { file_->Unref(); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = file_->Read(pos_, n, result, scratch);
    if (s.ok()) {
      pos_ += result->size();
    }
    return s;
  }

  Status Skip(uint64_t n) override {
    if (pos_ > file_->Size()) {
      return Status::IOError("pos_ > file_->Size()");
    }
    const uint64_t available = file_->Size() - pos_;
    if (n > available) {
      n = available;
    }
    pos_ += n;
    return Status::OK();
  }

 private:
  FileState* file_;
  uint64_t pos_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(FileState* file) : file_(file) { file_->Ref(); }
  ~MemRandomAccessFile() override { file_->Unref(); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    return file_->Read(offset, n, result, scratch);
  }

 private:
  FileState* file_;
};

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(FileState* file) : file_(file) { file_->Ref(); }
  ~MemWritableFile() override { file_->Unref(); }

  Status Append(const Slice& data) override { return file_->Append(data); }
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }

 private:
  FileState* file_;
};

class MemFileLock : public FileLock {
 public:
  explicit MemFileLock(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Delegates non-filesystem calls to a wrapped Env.
class MemEnv : public Env {
 public:
  explicit MemEnv(Env* base_env) : base_(base_env) {}

  ~MemEnv() override {
    for (const auto& kv : file_map_) {
      kv.second->Unref();
    }
  }

  Status NewSequentialFile(const std::string& fname,
                           SequentialFile** result) override {
    MutexLock guard(&mutex_);
    auto it = file_map_.find(fname);
    if (it == file_map_.end()) {
      *result = nullptr;
      return Status::NotFound(fname, "File not found");
    }
    *result = new MemSequentialFile(it->second);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& fname,
                             RandomAccessFile** result) override {
    MutexLock guard(&mutex_);
    auto it = file_map_.find(fname);
    if (it == file_map_.end()) {
      *result = nullptr;
      return Status::NotFound(fname, "File not found");
    }
    *result = new MemRandomAccessFile(it->second);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         WritableFile** result) override {
    MutexLock guard(&mutex_);
    auto it = file_map_.find(fname);
    FileState* file;
    if (it == file_map_.end()) {
      file = new FileState();
      file->Ref();
      file_map_[fname] = file;
    } else {
      file = it->second;
      file->Truncate();
    }
    *result = new MemWritableFile(file);
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& fname,
                           WritableFile** result) override {
    MutexLock guard(&mutex_);
    FileState** sptr = &file_map_[fname];
    FileState* file = *sptr;
    if (file == nullptr) {
      file = new FileState();
      file->Ref();
      *sptr = file;
    }
    *result = new MemWritableFile(file);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    MutexLock guard(&mutex_);
    return file_map_.find(fname) != file_map_.end();
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    MutexLock guard(&mutex_);
    result->clear();
    for (const auto& kv : file_map_) {
      const std::string& filename = kv.first;
      if (filename.size() >= dir.size() + 1 && filename[dir.size()] == '/' &&
          Slice(filename).StartsWith(Slice(dir))) {
        result->push_back(filename.substr(dir.size() + 1));
      }
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    MutexLock guard(&mutex_);
    auto it = file_map_.find(fname);
    if (it == file_map_.end()) {
      return Status::NotFound(fname, "File not found");
    }
    it->second->Unref();
    file_map_.erase(it);
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* file_size) override {
    MutexLock guard(&mutex_);
    auto it = file_map_.find(fname);
    if (it == file_map_.end()) {
      return Status::NotFound(fname, "File not found");
    }
    *file_size = it->second->Size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    MutexLock guard(&mutex_);
    auto it = file_map_.find(src);
    if (it == file_map_.end()) {
      return Status::NotFound(src, "File not found");
    }
    auto target_it = file_map_.find(target);
    if (target_it != file_map_.end()) {
      target_it->second->Unref();
      file_map_.erase(target_it);
    }
    file_map_[target] = it->second;
    file_map_.erase(it);
    return Status::OK();
  }

  // The in-memory namespace has no durability: directory metadata is
  // always "synced".
  Status SyncDir(const std::string& dir) override {
    (void)dir;
    return Status::OK();
  }

  Status LockFile(const std::string& fname, FileLock** lock) override {
    MutexLock guard(&mutex_);
    if (!locked_files_.insert(fname).second) {
      *lock = nullptr;
      return Status::IOError("lock " + fname, "already held");
    }
    *lock = new MemFileLock(fname);
    return Status::OK();
  }

  Status UnlockFile(FileLock* lock) override {
    MemFileLock* mem_lock = static_cast<MemFileLock*>(lock);
    MutexLock guard(&mutex_);
    locked_files_.erase(mem_lock->name());
    delete mem_lock;
    return Status::OK();
  }

  void Schedule(void (*function)(void* arg), void* arg) override {
    base_->Schedule(function, arg);
  }

  void SchedulePool(const char* pool, int max_threads,
                    void (*function)(void* arg), void* arg) override {
    base_->SchedulePool(pool, max_threads, function, arg);
  }

  void StartThread(void (*function)(void* arg), void* arg) override {
    base_->StartThread(function, arg);
  }

  uint64_t NowMicros() override { return base_->NowMicros(); }

  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

 private:
  Env* base_;
  Mutex mutex_;
  std::map<std::string, FileState*> file_map_ GUARDED_BY(mutex_);
  std::set<std::string> locked_files_ GUARDED_BY(mutex_);
};

}  // namespace

Env* NewMemEnv(Env* base_env) { return new MemEnv(base_env); }

}  // namespace fcae
