#ifndef FCAE_UTIL_CRC32C_H_
#define FCAE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace fcae {
namespace crc32c {

/// Returns the CRC32C of concat(A, data[0, n)) where Extend(init_crc, ...)
/// is given the CRC32C of some prior byte string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// Returns the CRC32C of data[0, n).
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

constexpr uint32_t kMaskDelta = 0xa282ead8ul;

/// Returns a masked representation of `crc`. Storing raw CRCs of data that
/// itself contains embedded CRCs is error prone; masking breaks the
/// algebraic relationship.
inline uint32_t Mask(uint32_t crc) {
  // Rotate right by 15 bits and add a constant.
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace fcae

#endif  // FCAE_UTIL_CRC32C_H_
