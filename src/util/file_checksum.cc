#include "util/file_checksum.h"

#include <memory>

namespace fcae {

namespace {
// Matches the table read path's block granularity closely enough that a
// scrub pass produces the same I/O pattern a cold scan would, while
// keeping each RateLimiter request well under one burst window.
constexpr size_t kScrubChunkSize = 64 * 1024;
}  // namespace

Status ComputeFileChecksum(Env* env, const std::string& fname,
                           RateLimiter* limiter, uint32_t* crc,
                           uint64_t* size) {
  SequentialFile* file = nullptr;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<SequentialFile> file_guard(file);
  std::unique_ptr<char[]> scratch(new char[kScrubChunkSize]);
  uint32_t running = 0;
  uint64_t total = 0;
  while (true) {
    if (limiter != nullptr) {
      limiter->Request(kScrubChunkSize, RateLimiter::Priority::kLow);
    }
    Slice chunk;
    s = file->Read(kScrubChunkSize, &chunk, scratch.get());
    if (!s.ok()) {
      return s;
    }
    if (chunk.empty()) {
      break;
    }
    running = crc32c::Extend(running, chunk.data(), chunk.size());
    total += chunk.size();
  }
  if (crc != nullptr) {
    *crc = running;
  }
  if (size != nullptr) {
    *size = total;
  }
  return Status::OK();
}

}  // namespace fcae
