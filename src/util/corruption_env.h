#ifndef FCAE_UTIL_CORRUPTION_ENV_H_
#define FCAE_UTIL_CORRUPTION_ENV_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

/// An Env wrapper that models at-rest bit rot: deterministic,
/// seed-driven byte flips in files that have been made durable.
/// Sibling of CrashInjectionEnv (crash_env.h) — where that one answers
/// "which bytes survive a power cut", this one answers "what happens
/// when bytes that *did* survive later go bad on the media".
///
/// The wrapper itself is a transparent pass-through; it only records
/// which files have seen a successful WritableFile::Sync() so tests can
/// restrict injection to durable state (corrupting an unsynced scratch
/// file tests nothing). Corruption is applied on demand by CorruptFile:
/// the file is read back through the wrapped Env, `flips` bytes chosen
/// by a deterministic PRNG over `seed` are XOR-flipped (never to their
/// original value, so every flip is a real change), and the mutated
/// image is rewritten and synced in place. This read/flip/rewrite shape
/// is what keeps the env portable: it needs no random-write API, so it
/// works over both PosixEnv and the in-memory test Env.
///
/// Callers corrupting a table file that may already be open must evict
/// it from the TableCache (or reopen the DB) before expecting reads to
/// observe the damage — cached handles can pin pre-corruption content.
class CorruptionInjectionEnv : public Env {
 public:
  /// Wraps `base` (not owned; must outlive this Env).
  explicit CorruptionInjectionEnv(Env* base);
  ~CorruptionInjectionEnv() override;

  Status NewSequentialFile(const std::string& fname,
                           SequentialFile** result) override;
  Status NewRandomAccessFile(const std::string& fname,
                             RandomAccessFile** result) override;
  Status NewWritableFile(const std::string& fname,
                         WritableFile** result) override;
  Status NewAppendableFile(const std::string& fname,
                           WritableFile** result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status SyncDir(const std::string& dir) override;
  Status LockFile(const std::string& fname, FileLock** lock) override;
  Status UnlockFile(FileLock* lock) override;
  void Schedule(void (*function)(void*), void* arg) override;
  void SchedulePool(const char* pool, int max_threads, void (*function)(void*),
                    void* arg) override;
  void StartThread(void (*function)(void*), void* arg) override;
  uint64_t NowMicros() override;
  void SleepForMicroseconds(int micros) override;

  /// True once `fname` has had at least one successful Sync() through
  /// this env (renames carry the mark to the new name).
  bool IsSynced(const std::string& fname) const;

  /// Full paths of all files currently marked synced, sorted.
  std::vector<std::string> SyncedFiles() const;

  /// Deterministically flips `flips` bytes of `fname`. The offsets and
  /// XOR masks derive only from `seed` and the file length, so a given
  /// (file image, seed, flips) always produces the same damage. When
  /// `offsets` is non-null the chosen byte offsets are appended to it.
  /// Fails with InvalidArgument on an empty file.
  [[nodiscard]] Status CorruptFile(const std::string& fname, uint32_t seed,
                                   int flips = 1,
                                   std::vector<uint64_t>* offsets = nullptr);

  /// Convenience: CorruptFile restricted to a byte range [start, end)
  /// of the file (clamped to the file size). Lets tests target a
  /// specific region (data block vs footer) deterministically.
  [[nodiscard]] Status CorruptFileRange(const std::string& fname,
                                        uint32_t seed, uint64_t start,
                                        uint64_t end, int flips = 1,
                                        std::vector<uint64_t>* offsets =
                                            nullptr);

 private:
  friend class CorruptionTrackedWritableFile;

  void NoteFileSynced(const std::string& fname);

  Env* const base_;
  mutable Mutex mu_;
  std::set<std::string> synced_ GUARDED_BY(mu_);
};

}  // namespace fcae

#endif  // FCAE_UTIL_CORRUPTION_ENV_H_
