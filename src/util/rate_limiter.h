#ifndef FCAE_UTIL_RATE_LIMITER_H_
#define FCAE_UTIL_RATE_LIMITER_H_

#include <atomic>
#include <cstdint>

#include "util/env.h"
#include "util/mutex.h"

namespace fcae {

/// A token-bucket rate limiter for background I/O with two priority
/// lanes (DESIGN.md §10). Flushes request at kHigh — they gate the
/// write path, so they must never queue behind bulk compaction writes —
/// while compaction outputs request at kLow. Tokens refill continuously
/// from the Env clock at `bytes_per_second`, with at most one refill
/// window (100 ms) of burst credit, so a long idle period cannot bank
/// an unbounded write burst.
///
/// Request() blocks the caller (via Env::SleepForMicroseconds, in
/// bounded chunks so a hooked test clock stays deterministic) until the
/// bucket can cover the bytes. Low-priority requests additionally yield
/// while any high-priority request is waiting. Thread-safe; a single
/// limiter is shared by all background workers of a DB (or several DBs,
/// RocksDB-style, if the caller passes the same limiter to each).
class RateLimiter {
 public:
  enum class Priority { kHigh, kLow };

  /// `bytes_per_second` == 0 means unlimited: Request() returns
  /// immediately and only the through-put statistics are maintained.
  RateLimiter(Env* env, uint64_t bytes_per_second);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Blocks until `bytes` tokens are available, then consumes them.
  /// Requests larger than one burst window are admitted in bucket-sized
  /// installments so they cannot starve the other lane forever.
  void Request(uint64_t bytes, Priority pri);

  /// Adjusts the refill rate; takes effect on the next refill. 0 opens
  /// the throttle.
  void SetBytesPerSecond(uint64_t bytes_per_second);
  uint64_t bytes_per_second() const {
    return bytes_per_second_.load(std::memory_order_relaxed);
  }

  // Statistics (monotonic; readable without the lock). DBImpl bridges
  // these into the `ratelimiter.*` obs counters — the util layer sits
  // below obs, so the limiter cannot own registry pointers itself.
  uint64_t total_bytes_through() const {
    return bytes_through_.load(std::memory_order_relaxed);
  }
  uint64_t total_throttled_bytes() const {
    return throttled_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_wait_micros() const {
    return wait_micros_.load(std::memory_order_relaxed);
  }
  uint64_t total_requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  /// Credits tokens for the wall time elapsed since the last refill;
  /// requires mutex_ held.
  void Refill(uint64_t now_micros) REQUIRES(mutex_);

  Env* const env_;
  std::atomic<uint64_t> bytes_per_second_;

  Mutex mutex_;
  int64_t available_bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t last_refill_micros_ GUARDED_BY(mutex_) = 0;
  int high_pri_waiting_ GUARDED_BY(mutex_) = 0;

  std::atomic<uint64_t> bytes_through_{0};
  std::atomic<uint64_t> throttled_bytes_{0};
  std::atomic<uint64_t> wait_micros_{0};
  std::atomic<uint64_t> requests_{0};
};

/// A WritableFile decorator that charges every Append against a
/// RateLimiter lane before forwarding it. Wrapped around compaction and
/// flush output files (builder.cc, cpu_compaction_executor.cc, the
/// offload assembly path) so Options::rate_limit_bytes_per_sec caps all
/// background disk writes without touching the WAL, which stays on the
/// foreground latency path.
class RateLimitedWritableFile : public WritableFile {
 public:
  /// Takes ownership of `target`. `limiter` is borrowed and may be
  /// nullptr, in which case the wrapper is a pass-through.
  RateLimitedWritableFile(WritableFile* target, RateLimiter* limiter,
                          RateLimiter::Priority pri)
      : target_(target), limiter_(limiter), pri_(pri) {}
  ~RateLimitedWritableFile() override { delete target_; }

  Status Append(const Slice& data) override {
    if (limiter_ != nullptr && !data.empty()) {
      limiter_->Request(data.size(), pri_);
    }
    return target_->Append(data);
  }
  Status Close() override { return target_->Close(); }
  Status Flush() override { return target_->Flush(); }
  Status Sync() override { return target_->Sync(); }

 private:
  WritableFile* const target_;
  RateLimiter* const limiter_;
  const RateLimiter::Priority pri_;
};

}  // namespace fcae

#endif  // FCAE_UTIL_RATE_LIMITER_H_
