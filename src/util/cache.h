#ifndef FCAE_UTIL_CACHE_H_
#define FCAE_UTIL_CACHE_H_

#include <cstdint>

#include "util/slice.h"

namespace fcae {

/// A Cache maps keys to values with an internal eviction policy and
/// explicit reference counting: entries remain alive while a caller holds
/// a Handle, even if evicted from the cache index. Implementations must
/// be thread-safe: every method may be called concurrently from client
/// threads, the compaction thread, and the offload executor. The
/// built-in LRU implementation expresses this with capability
/// annotations on its internal fcae::Mutex (see cache.cc); Value() is
/// the one lock-free method — a pinned entry's value is immutable.
class Cache {
 public:
  Cache() = default;
  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Destroys all remaining entries via their deleters.
  virtual ~Cache();

  /// Opaque handle to an entry.
  struct Handle {};

  /// Inserts a key->value mapping with the specified charge against the
  /// cache capacity. Returns a handle; the caller must Release() it.
  /// `deleter` is invoked when the entry is no longer needed.
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value)) = 0;

  /// Returns a handle for the cached mapping, or nullptr. The caller
  /// must Release() a non-null result.
  virtual Handle* Lookup(const Slice& key) = 0;

  /// Releases a mapping returned by Lookup()/Insert().
  virtual void Release(Handle* handle) = 0;

  /// Returns the value in a handle.
  virtual void* Value(Handle* handle) = 0;

  /// Drops the mapping from the index (the entry stays alive while
  /// handles exist).
  virtual void Erase(const Slice& key) = 0;

  /// Returns a new numeric id, for partitioning a shared cache.
  virtual uint64_t NewId() = 0;

  /// Removes all unreferenced entries.
  virtual void Prune() = 0;

  /// Estimated total charge of entries.
  virtual size_t TotalCharge() const = 0;
};

/// Creates a Cache with least-recently-used eviction and a fixed
/// capacity (total charge). Caller owns the result.
Cache* NewLRUCache(size_t capacity);

}  // namespace fcae

#endif  // FCAE_UTIL_CACHE_H_
