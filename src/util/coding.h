#ifndef FCAE_UTIL_CODING_H_
#define FCAE_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace fcae {

// Endian-neutral integer encodings used throughout the storage format:
// fixed-width little-endian and LEB128-style varints.

inline void EncodeFixed32(char* dst, uint32_t value) {
  uint8_t* const buffer = reinterpret_cast<uint8_t*>(dst);
  buffer[0] = static_cast<uint8_t>(value);
  buffer[1] = static_cast<uint8_t>(value >> 8);
  buffer[2] = static_cast<uint8_t>(value >> 16);
  buffer[3] = static_cast<uint8_t>(value >> 24);
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  uint8_t* const buffer = reinterpret_cast<uint8_t*>(dst);
  for (int i = 0; i < 8; i++) {
    buffer[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

inline uint32_t DecodeFixed32(const char* ptr) {
  const uint8_t* const buffer = reinterpret_cast<const uint8_t*>(ptr);
  return (static_cast<uint32_t>(buffer[0])) |
         (static_cast<uint32_t>(buffer[1]) << 8) |
         (static_cast<uint32_t>(buffer[2]) << 16) |
         (static_cast<uint32_t>(buffer[3]) << 24);
}

inline uint64_t DecodeFixed64(const char* ptr) {
  const uint8_t* const buffer = reinterpret_cast<const uint8_t*>(ptr);
  uint64_t result = 0;
  for (int i = 0; i < 8; i++) {
    result |= static_cast<uint64_t>(buffer[i]) << (8 * i);
  }
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends varint32(value.size()) followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Encodes `value` as a varint32 at `dst` (which must have >= 5 bytes of
/// space) and returns a pointer just past the last written byte.
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);

/// Parses a varint32 from [p, limit); returns pointer past the parsed
/// bytes, or nullptr on malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Parses a varint from the front of `input`, advancing it. Returns false
/// on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Parses a length-prefixed slice from the front of `input`, advancing it.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Returns the encoded length of `value` as a varint (1..10 bytes).
int VarintLength(uint64_t value);

}  // namespace fcae

#endif  // FCAE_UTIL_CODING_H_
