#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <set>

#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "util/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

namespace {

Status PosixError(const std::string& context, int error_number) {
  if (error_number == ENOENT) {
    return Status::NotFound(context, std::strerror(error_number));
  }
  return Status::IOError(context, std::strerror(error_number));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string filename, int fd)
      : fd_(fd), filename_(std::move(filename)) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ::ssize_t read_size = ::read(fd_, scratch, n);
      if (read_size < 0) {
        if (errno == EINTR) {
          continue;  // Retry.
        }
        return PosixError(filename_, errno);
      }
      *result = Slice(scratch, read_size);
      break;
    }
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, n, SEEK_CUR) == static_cast<off_t>(-1)) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  const int fd_;
  const std::string filename_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string filename, int fd)
      : fd_(fd), filename_(std::move(filename)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ::ssize_t read_size = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    *result = Slice(scratch, (read_size < 0) ? 0 : read_size);
    if (read_size < 0) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  const int fd_;
  const std::string filename_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string filename, int fd)
      : pos_(0), fd_(fd), filename_(std::move(filename)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      // Destructor path: callers that care about durability must Close()
      // (and Sync()) explicitly before destruction.
      Close().IgnoreError();
    }
  }

  Status Append(const Slice& data) override {
    size_t write_size = data.size();
    const char* write_data = data.data();

    // Fit as much as possible into the buffer.
    size_t copy_size = std::min(write_size, kWritableFileBufferSize - pos_);
    std::memcpy(buf_ + pos_, write_data, copy_size);
    write_data += copy_size;
    write_size -= copy_size;
    pos_ += copy_size;
    if (write_size == 0) {
      return Status::OK();
    }

    // Can't fit in buffer, so need to do at least one write.
    Status status = FlushBuffer();
    if (!status.ok()) {
      return status;
    }

    // Small writes go to the buffer; large writes are flushed directly.
    if (write_size < kWritableFileBufferSize) {
      std::memcpy(buf_, write_data, write_size);
      pos_ = write_size;
      return Status::OK();
    }
    return WriteUnbuffered(write_data, write_size);
  }

  Status Close() override {
    Status status = FlushBuffer();
    const int close_result = ::close(fd_);
    if (close_result < 0 && status.ok()) {
      status = PosixError(filename_, errno);
    }
    fd_ = -1;
    return status;
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status status = FlushBuffer();
    if (!status.ok()) {
      return status;
    }
    if (::fdatasync(fd_) < 0) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  static constexpr size_t kWritableFileBufferSize = 65536;

  Status FlushBuffer() {
    Status status = WriteUnbuffered(buf_, pos_);
    pos_ = 0;
    return status;
  }

  Status WriteUnbuffered(const char* data, size_t size) {
    while (size > 0) {
      ::ssize_t write_result = ::write(fd_, data, size);
      if (write_result < 0) {
        if (errno == EINTR) {
          continue;  // Retry.
        }
        return PosixError(filename_, errno);
      }
      data += write_result;
      size -= write_result;
    }
    return Status::OK();
  }

  char buf_[kWritableFileBufferSize];
  size_t pos_;
  int fd_;
  const std::string filename_;
};

class PosixFileLock : public FileLock {
 public:
  PosixFileLock(int fd, std::string filename)
      : fd_(fd), filename_(std::move(filename)) {}

  int fd() const { return fd_; }
  const std::string& filename() const { return filename_; }

 private:
  const int fd_;
  const std::string filename_;
};

/// Tracks files locked by this process: fcntl locks are per-process, so
/// a second in-process LockFile would silently succeed without this.
class PosixLockTable {
 public:
  bool Insert(const std::string& fname) EXCLUDES(mutex_) {
    MutexLock guard(&mutex_);
    return locked_files_.insert(fname).second;
  }
  void Remove(const std::string& fname) EXCLUDES(mutex_) {
    MutexLock guard(&mutex_);
    locked_files_.erase(fname);
  }

 private:
  Mutex mutex_;
  std::set<std::string> locked_files_ GUARDED_BY(mutex_);
};

/// A named background worker pool: up to `max_threads` detached threads
/// draining one FIFO queue. Threads are spawned lazily as work arrives
/// and live for the process lifetime, like PosixEnv's classic single
/// background thread. Pool objects are never destroyed (threads may
/// still reference them at exit).
class PosixThreadPool {
 public:
  explicit PosixThreadPool(int max_threads)
      : cv_(&mutex_), max_threads_(max_threads < 1 ? 1 : max_threads) {}

  /// Grows the worker cap to `max_threads` if larger. A pool created by
  /// a 1-worker DB must not stay serialized forever when a later DB in
  /// the same process asks for more parallelism.
  void RaiseCap(int max_threads) EXCLUDES(mutex_) {
    MutexLock guard(&mutex_);
    if (max_threads > max_threads_) max_threads_ = max_threads;
  }

  void Submit(void (*function)(void*), void* arg) EXCLUDES(mutex_) {
    MutexLock guard(&mutex_);
    queue_.emplace_back(function, arg);
    // Spawn another worker only if every live worker is already busy
    // and we are under the cap; otherwise an idle worker picks this up.
    if (started_threads_ < max_threads_ &&
        idle_threads_ < static_cast<int>(queue_.size())) {
      started_threads_++;
      std::thread worker(&PosixThreadPool::WorkerMain, this);
      worker.detach();
    }
    cv_.Signal();
  }

 private:
  struct WorkItem {
    WorkItem(void (*f)(void*), void* a) : function(f), arg(a) {}
    void (*function)(void*);
    void* arg;
  };

  void WorkerMain() {
    while (true) {
      mutex_.Lock();
      idle_threads_++;
      while (queue_.empty()) {
        cv_.Wait();
      }
      idle_threads_--;
      WorkItem item = queue_.front();
      queue_.pop_front();
      mutex_.Unlock();
      item.function(item.arg);
    }
  }

  Mutex mutex_;
  CondVar cv_;
  int max_threads_ GUARDED_BY(mutex_);
  int started_threads_ GUARDED_BY(mutex_) = 0;
  int idle_threads_ GUARDED_BY(mutex_) = 0;
  std::deque<WorkItem> queue_ GUARDED_BY(mutex_);
};

int LockOrUnlock(int fd, bool lock) {
  errno = 0;
  struct ::flock file_lock_info;
  std::memset(&file_lock_info, 0, sizeof(file_lock_info));
  file_lock_info.l_type = (lock ? F_WRLCK : F_UNLCK);
  file_lock_info.l_whence = SEEK_SET;
  file_lock_info.l_start = 0;
  file_lock_info.l_len = 0;  // Lock/unlock entire file.
  return ::fcntl(fd, F_SETLK, &file_lock_info);
}

class PosixEnv : public Env {
 public:
  PosixEnv()
      : background_cv_(&background_mutex_), background_started_(false) {}

  ~PosixEnv() override = default;

  Status NewSequentialFile(const std::string& filename,
                           SequentialFile** result) override {
    int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      *result = nullptr;
      return PosixError(filename, errno);
    }
    *result = new PosixSequentialFile(filename, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& filename,
                             RandomAccessFile** result) override {
    int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      *result = nullptr;
      return PosixError(filename, errno);
    }
    *result = new PosixRandomAccessFile(filename, fd);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& filename,
                         WritableFile** result) override {
    int fd = ::open(filename.c_str(),
                    O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      *result = nullptr;
      return PosixError(filename, errno);
    }
    *result = new PosixWritableFile(filename, fd);
    return Status::OK();
  }

  Status NewAppendableFile(const std::string& filename,
                           WritableFile** result) override {
    int fd = ::open(filename.c_str(),
                    O_APPEND | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      *result = nullptr;
      return PosixError(filename, errno);
    }
    *result = new PosixWritableFile(filename, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& filename) override {
    return ::access(filename.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& directory_path,
                     std::vector<std::string>* result) override {
    result->clear();
    ::DIR* dir = ::opendir(directory_path.c_str());
    if (dir == nullptr) {
      return PosixError(directory_path, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(dir)) != nullptr) {
      result->emplace_back(entry->d_name);
    }
    ::closedir(dir);
    return Status::OK();
  }

  Status RemoveFile(const std::string& filename) override {
    if (::unlink(filename.c_str()) != 0) {
      return PosixError(filename, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0) {
      if (errno == EEXIST) {
        return Status::OK();
      }
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& filename, uint64_t* size) override {
    struct ::stat file_stat;
    if (::stat(filename.c_str(), &file_stat) != 0) {
      *size = 0;
      return PosixError(filename, errno);
    }
    *size = file_stat.st_size;
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError(from, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return PosixError(dir, errno);
    }
    Status s;
    if (::fsync(fd) != 0) {
      s = PosixError(dir, errno);
    }
    ::close(fd);
    return s;
  }

  Status LockFile(const std::string& filename, FileLock** lock) override {
    *lock = nullptr;
    int fd = ::open(filename.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      return PosixError(filename, errno);
    }
    if (!locks_.Insert(filename)) {
      ::close(fd);
      return Status::IOError("lock " + filename,
                             "already held by process");
    }
    if (LockOrUnlock(fd, true) == -1) {
      int lock_errno = errno;
      ::close(fd);
      locks_.Remove(filename);
      return PosixError("lock " + filename, lock_errno);
    }
    *lock = new PosixFileLock(fd, filename);
    return Status::OK();
  }

  Status UnlockFile(FileLock* lock) override {
    PosixFileLock* posix_lock = static_cast<PosixFileLock*>(lock);
    Status status;
    if (LockOrUnlock(posix_lock->fd(), false) == -1) {
      status = PosixError("unlock " + posix_lock->filename(), errno);
    }
    locks_.Remove(posix_lock->filename());
    ::close(posix_lock->fd());
    delete posix_lock;
    return status;
  }

  void Schedule(void (*function)(void*), void* arg) override
      EXCLUDES(background_mutex_) {
    MutexLock guard(&background_mutex_);
    if (!background_started_) {
      background_started_ = true;
      std::thread background_thread(&PosixEnv::BackgroundThreadMain, this);
      background_thread.detach();
    }
    background_queue_.emplace_back(function, arg);
    background_cv_.Signal();
  }

  void SchedulePool(const char* pool, int max_threads,
                    void (*function)(void*), void* arg) override
      EXCLUDES(pools_mutex_) {
    PosixThreadPool* p;
    {
      MutexLock guard(&pools_mutex_);
      std::unique_ptr<PosixThreadPool>& slot = pools_[pool];
      if (slot == nullptr) {
        slot = std::make_unique<PosixThreadPool>(max_threads);
      } else {
        slot->RaiseCap(max_threads);
      }
      p = slot.get();
    }
    p->Submit(function, arg);
  }

  void StartThread(void (*function)(void*), void* arg) override {
    std::thread new_thread(function, arg);
    new_thread.detach();
  }

  uint64_t NowMicros() override {
    struct ::timeval tv;
    ::gettimeofday(&tv, nullptr);
    return static_cast<uint64_t>(tv.tv_sec) * 1000000 + tv.tv_usec;
  }

  void SleepForMicroseconds(int micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }

 private:
  struct BackgroundWorkItem {
    BackgroundWorkItem(void (*f)(void*), void* a) : function(f), arg(a) {}
    void (*function)(void*);
    void* arg;
  };

  void BackgroundThreadMain() {
    while (true) {
      background_mutex_.Lock();
      while (background_queue_.empty()) {
        background_cv_.Wait();
      }
      BackgroundWorkItem item = background_queue_.front();
      background_queue_.pop_front();
      background_mutex_.Unlock();
      item.function(item.arg);
    }
  }

  Mutex background_mutex_;
  CondVar background_cv_;
  std::deque<BackgroundWorkItem> background_queue_
      GUARDED_BY(background_mutex_);
  bool background_started_ GUARDED_BY(background_mutex_);

  Mutex pools_mutex_;
  std::map<std::string, std::unique_ptr<PosixThreadPool>> pools_
      GUARDED_BY(pools_mutex_);

  PosixLockTable locks_;
};

}  // namespace

Env* Env::Default() {
  // Never destroyed: background threads may still reference it at exit.
  static PosixEnv* env = new PosixEnv;
  return env;
}

Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname) {
  WritableFile* file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(data);
  if (s.ok()) {
    s = file->Close();
  }
  delete file;
  if (!s.ok()) {
    // Best-effort cleanup of the partial file; the write error wins.
    env->RemoveFile(fname).IgnoreError();
  }
  return s;
}

Status WriteStringToFileSync(Env* env, const Slice& data,
                             const std::string& fname) {
  WritableFile* file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(data);
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  delete file;
  if (!s.ok()) {
    // Best-effort cleanup of the partial file; the write error wins.
    env->RemoveFile(fname).IgnoreError();
  }
  return s;
}

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  SequentialFile* file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  static const int kBufferSize = 8192;
  char* space = new char[kBufferSize];
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, space);
    if (!s.ok()) {
      break;
    }
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) {
      break;
    }
  }
  delete[] space;
  delete file;
  return s;
}

}  // namespace fcae
