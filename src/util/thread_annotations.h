#ifndef FCAE_UTIL_THREAD_ANNOTATIONS_H_
#define FCAE_UTIL_THREAD_ANNOTATIONS_H_

// Capability annotations for clang's thread-safety analysis
// (-Wthread-safety). Under any other compiler every macro expands to
// nothing, so annotated code builds unchanged with gcc.
//
// The vocabulary follows the clang/abseil convention:
//
//   GUARDED_BY(mu)      on a member: reads and writes require holding mu.
//   PT_GUARDED_BY(mu)   on a pointer member: the pointed-to data requires mu.
//   REQUIRES(mu)        on a function: callers must hold mu on entry and the
//                       function returns with it still held.
//   EXCLUDES(mu)        on a function: callers must NOT hold mu (the
//                       function acquires it itself).
//   ACQUIRE(mu)/RELEASE(mu)
//                       on a function: it acquires/releases mu.
//   CAPABILITY("mutex") on a class: instances are lockable capabilities.
//   SCOPED_CAPABILITY   on a class: RAII object that acquires in its
//                       constructor and releases in its destructor.
//   ASSERT_CAPABILITY(mu)
//                       on a function: a runtime assertion that mu is held
//                       (tells the analysis to assume it afterwards).
//   NO_THREAD_SAFETY_ANALYSIS
//                       opts one function out (used only where the locking
//                       pattern is deliberate but inexpressible).
//
// The enforcing build is `cmake -DFCAE_THREAD_SAFETY=ON` with clang,
// which adds -Wthread-safety -Werror=thread-safety-analysis (see the
// top-level CMakeLists.txt and the `lint` CI job).

#if defined(__clang__) && (!defined(SWIG))
#define FCAE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define FCAE_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) FCAE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) FCAE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE_SHARED
#define TRY_ACQUIRE_SHARED(...)                 \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(           \
      try_acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#endif

#ifndef ASSERT_SHARED_CAPABILITY
#define ASSERT_SHARED_CAPABILITY(x) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) FCAE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY FCAE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  FCAE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
#endif

#endif  // FCAE_UTIL_THREAD_ANNOTATIONS_H_
