#ifndef FCAE_UTIL_HISTOGRAM_H_
#define FCAE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fcae {

/// A log-bucketed histogram for latency/size measurements, with
/// percentile queries. Not thread-safe.
class Histogram {
 public:
  Histogram();

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  /// Removes an earlier snapshot of this histogram, leaving the
  /// interval since that snapshot (the windowed view the stats dumper
  /// reports). `other` must be a prefix of *this — same instrument,
  /// captured earlier. Count/sum/percentiles are exact for the window;
  /// min/max degrade to the bucket boundaries of the surviving
  /// samples, since removed extremes cannot be recovered.
  void Subtract(const Histogram& other);

  double Median() const;
  double Percentile(double p) const;
  double Average() const;
  double StandardDeviation() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  uint64_t Count() const { return static_cast<uint64_t>(num_); }

  std::string ToString() const;

 private:
  static const std::vector<double>& BucketLimits();

  double min_;
  double max_;
  double num_;
  double sum_;
  double sum_squares_;
  std::vector<double> buckets_;
};

}  // namespace fcae

#endif  // FCAE_UTIL_HISTOGRAM_H_
