#include "util/status.h"

namespace fcae {

Status::Status(Code code, const Slice& msg, const Slice& msg2) : code_(code) {
  msg_.assign(msg.data(), msg.size());
  if (!msg2.empty()) {
    msg_.append(": ");
    msg_.append(msg2.data(), msg2.size());
  }
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  const char* type = nullptr;
  switch (code_) {
    case Code::kOk:
      type = "OK";
      break;
    case Code::kNotFound:
      type = "NotFound: ";
      break;
    case Code::kCorruption:
      type = "Corruption: ";
      break;
    case Code::kNotSupported:
      type = "Not implemented: ";
      break;
    case Code::kInvalidArgument:
      type = "Invalid argument: ";
      break;
    case Code::kIOError:
      type = "IO error: ";
      break;
    case Code::kBusy:
      type = "Busy: ";
      break;
    case Code::kDeviceLost:
      type = "Device lost: ";
      break;
  }
  std::string result(type);
  result.append(msg_);
  return result;
}

}  // namespace fcae
