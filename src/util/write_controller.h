#ifndef FCAE_UTIL_WRITE_CONTROLLER_H_
#define FCAE_UTIL_WRITE_CONTROLLER_H_

#include <cstdint>

namespace fcae {

/// Tuning knobs for the write-backpressure model (DESIGN.md §10). The
/// zero-argument defaults reproduce the classic LevelDB triggers
/// (slowdown at 8 L0 files, stop at 12); DBImpl fills them from the
/// sanitized Options and syssim from SimConfig, so engine and simulator
/// share one model.
struct WriteControllerConfig {
  int l0_compaction_trigger = 4;
  int l0_slowdown_trigger = 8;
  int l0_stop_trigger = 12;

  /// Pending-compaction-bytes debt band: below `soft` the backlog is
  /// free; between `soft` and `hard` it contributes linearly to the
  /// debt score; at `hard` writes are delayed at the maximum ramp.
  /// 0 disables the pending-bytes signal.
  uint64_t soft_pending_compaction_bytes = 0;
  uint64_t hard_pending_compaction_bytes = 0;

  /// Global memory budget across the live and immutable memtables;
  /// 0 means unbudgeted (classic per-memtable behaviour only).
  uint64_t total_write_buffer_size = 0;

  /// Per-write delay ramp: debt 0+ costs `min_delay_micros`, debt 1.0
  /// costs `max_delay_micros`, quadratic in between so light debt stays
  /// cheap. The classic fixed 1 ms sleep sits inside this band (debt
  /// ~0.2 prices at about 1 ms with the defaults).
  uint64_t min_delay_micros = 250;
  uint64_t max_delay_micros = 20 * 1000;
};

/// A point-in-time sample of the signals the controller prices.
struct WriteStallConditions {
  int l0_files = 0;
  uint64_t pending_compaction_bytes = 0;
  /// Live + immutable memtable bytes (the global budget's measure).
  uint64_t memtable_bytes = 0;
  bool imm_in_flight = false;
};

/// Computes write-stall state and per-write delays from compaction debt
/// (RocksDB WriteController-style). Pure and single-threaded by design:
/// DBImpl calls it under the DB mutex with the Env clock, the simulator
/// with simulated time, and tests with a fake clock — all bit-identical.
///
/// State machine:
///   kOk      — no debt; writes are admitted immediately.
///   kDelayed — debt in (0, 1): each write pays DelayMicrosForDebt(debt),
///              spaced through a credit ledger (GetDelayMicros) so write
///              bursts spread out instead of stacking one fixed sleep.
///   kStopped — L0 at the stop trigger or the memory budget exhausted
///              with a flush in flight: the caller must block on its
///              condvar until background work installs.
class WriteController {
 public:
  enum class State { kOk, kDelayed, kStopped };

  explicit WriteController(const WriteControllerConfig& config)
      : config_(config) {}

  /// Re-prices the stall state from a fresh debt sample. Cheap; called
  /// per MakeRoomForWrite pass.
  State Update(const WriteStallConditions& cond);

  State state() const { return state_; }
  double debt() const { return debt_; }
  const WriteControllerConfig& config() const { return config_; }

  /// Returns how long the write arriving at `now_micros` must be
  /// delayed. The credit ledger spaces consecutive writes at the
  /// debt-derived interval: a lone write pays one interval, a burst
  /// queues behind the ledger, and the total owed is capped at
  /// max_delay_micros so a stale ledger cannot punish a fresh write.
  /// Returns 0 unless the state is kDelayed.
  uint64_t GetDelayMicros(uint64_t now_micros);

  /// Debt score in [0, 1]: the max of the L0-file and pending-bytes
  /// components. 1.0 means "at the stop trigger". Static so the
  /// simulator can price hypothetical shapes without an instance.
  static double DebtScore(const WriteStallConditions& cond,
                          const WriteControllerConfig& config);

  /// The per-write delay the ramp assigns to a debt score (quadratic
  /// between min_delay and max_delay). Shared with syssim's client-rate
  /// model, replacing its hard-coded 1 ms slowdown.
  static uint64_t DelayMicrosForDebt(double debt,
                                     const WriteControllerConfig& config);

 private:
  const WriteControllerConfig config_;
  State state_ = State::kOk;
  double debt_ = 0;
  uint64_t next_request_micros_ = 0;
};

}  // namespace fcae

#endif  // FCAE_UTIL_WRITE_CONTROLLER_H_
