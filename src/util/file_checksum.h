#ifndef FCAE_UTIL_FILE_CHECKSUM_H_
#define FCAE_UTIL_FILE_CHECKSUM_H_

#include <cstdint>
#include <string>

#include "util/crc32c.h"
#include "util/env.h"
#include "util/rate_limiter.h"
#include "util/status.h"

namespace fcae {

/// A WritableFile decorator that folds every appended byte into a
/// running crc32c. Wrapped around table output files at the three
/// install sites (flush, CPU compaction, offload assembly) so the
/// whole-file checksum recorded in the manifest is computed from the
/// exact bytes handed to the filesystem — no second read pass, and no
/// window where the file could differ from what was hashed.
///
/// The checksum domain is the full file image, footer included, which
/// makes it strictly stronger than the per-block trailer CRCs: it also
/// covers the index/metaindex blocks and the block trailers themselves.
class ChecksumWritableFile : public WritableFile {
 public:
  /// Takes ownership of `target`.
  explicit ChecksumWritableFile(WritableFile* target) : target_(target) {}
  ~ChecksumWritableFile() override { delete target_; }

  Status Append(const Slice& data) override {
    crc_ = crc32c::Extend(crc_, data.data(), data.size());
    bytes_ += data.size();
    return target_->Append(data);
  }
  Status Close() override { return target_->Close(); }
  Status Flush() override { return target_->Flush(); }
  Status Sync() override { return target_->Sync(); }

  /// crc32c of everything appended so far (unmasked).
  uint32_t checksum() const { return crc_; }
  uint64_t bytes_written() const { return bytes_; }

 private:
  WritableFile* const target_;
  uint32_t crc_ = 0;
  uint64_t bytes_ = 0;
};

/// Re-reads `fname` sequentially and computes its whole-file crc32c.
/// Used by the scrubber to compare at-rest bytes against the manifest's
/// recorded checksum. Reads in bounded chunks; when `limiter` is
/// non-null every chunk is charged against the low-priority lane first
/// so scrubbing yields to flushes and foreground-driven compactions.
/// On success stores the crc in *crc and the byte count in *size
/// (either may be null).
[[nodiscard]] Status ComputeFileChecksum(Env* env, const std::string& fname,
                                         RateLimiter* limiter, uint32_t* crc,
                                         uint64_t* size);

}  // namespace fcae

#endif  // FCAE_UTIL_FILE_CHECKSUM_H_
