#include "util/options.h"

#include "util/comparator.h"
#include "util/env.h"

namespace fcae {

Options::Options() : comparator(BytewiseComparator()), env(Env::Default()) {}

}  // namespace fcae
