#ifndef FCAE_UTIL_STATUS_H_
#define FCAE_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace fcae {

/// A Status encapsulates the result of an operation: success, or an error
/// code plus a message. This project does not use exceptions; every
/// fallible operation returns a Status (or stores one, for iterators).
///
/// The class is [[nodiscard]]: a caller that drops a returned Status is a
/// compile error under -Werror. Best-effort call sites (orphan/tmp-file
/// cleanup, shutdown paths) must say so explicitly:
///
///   env_->RemoveFile(tmp).IgnoreError();  // best-effort: reclaimed at open
///
/// Anything on a durability edge (Sync, SyncDir, rename-install,
/// manifest writes) must instead propagate the error or record it in the
/// background-error state machine (DBImpl::RecordBackgroundError).
class [[nodiscard]] Status {
 public:
  /// Creates an OK status.
  Status() = default;

  Status(const Status& rhs) = default;
  Status& operator=(const Status& rhs) = default;
  Status(Status&& rhs) = default;
  Status& operator=(Status&& rhs) = default;

  static Status OK() { return Status(); }

  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg,
                                const Slice& msg2 = Slice()) {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kBusy, msg, msg2);
  }
  static Status DeviceLost(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kDeviceLost, msg, msg2);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  /// A sticky accelerator failure: the device fell off the bus and no
  /// retry on the same card can succeed (see host::DeviceHealthMonitor).
  bool IsDeviceLost() const { return code_ == Code::kDeviceLost; }

  /// Returns a human-readable description, e.g. "IO error: <msg>".
  std::string ToString() const;

  /// Explicitly drops this Status: the operation is best-effort and the
  /// caller has decided failure is acceptable. This is the only sanctioned
  /// way to ignore a Status — it keeps intentional drops grep-able and
  /// lets `[[nodiscard]]` flag the unintentional ones. Callable on
  /// temporaries (`env->RemoveFile(f).IgnoreError();`).
  void IgnoreError() const {}

 private:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    kDeviceLost = 7,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_ = Code::kOk;
  std::string msg_;
};

}  // namespace fcae

#endif  // FCAE_UTIL_STATUS_H_
