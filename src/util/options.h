#ifndef FCAE_UTIL_OPTIONS_H_
#define FCAE_UTIL_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fcae {

class Cache;
class Comparator;
class CompactionExecutor;
class Env;
class FilterPolicy;
class RateLimiter;

namespace obs {
class EventListener;
class Logger;
class MetricsRegistry;
class TraceSink;
}  // namespace obs

/// Block contents compression. Stored per block, so files mixing settings
/// remain readable.
enum CompressionType : uint8_t {
  kNoCompression = 0x0,
  kSnappyCompression = 0x1,
};

/// Options controlling database behaviour. Field defaults mirror LevelDB
/// and the paper's Table IV settings.
struct Options {
  Options();

  /// Comparator defining key order; must outlive the DB and stay
  /// consistent across opens. Default: bytewise.
  const Comparator* comparator;

  /// If true, Open() creates a missing database.
  bool create_if_missing = false;

  /// If true, Open() errors if the database already exists.
  bool error_if_exists = false;

  /// If true, the implementation aggressively checks invariants and
  /// fails early on internal corruption.
  bool paranoid_checks = false;

  /// Environment for file/thread access. Default: Env::Default().
  Env* env;

  /// Memtable size before a flush is triggered (bytes). LevelDB: 4 MB.
  size_t write_buffer_size = 4 * 1024 * 1024;

  /// Global memory budget across the live and the immutable memtable
  /// (bytes). When the pair's footprint reaches this while a flush is
  /// in flight, writers block until the flush installs — overload turns
  /// into backpressure instead of unbounded memory growth. 0 disables
  /// the budget (classic per-memtable behaviour); nonzero values are
  /// clipped to at least 2x write_buffer_size so one rotation always
  /// fits.
  size_t total_write_buffer_size = 0;

  /// Write-stall triggers for the WriteController (DESIGN.md §10):
  /// writes are smoothly delayed from `l0_slowdown_writes_trigger` L0
  /// files and stopped at `l0_stop_writes_trigger`. 0 means the engine
  /// default (8 / 12, the classic LevelDB triggers in lsm/dbformat.h).
  int l0_slowdown_writes_trigger = 0;
  int l0_stop_writes_trigger = 0;

  /// Caps background (flush + compaction) file-write bandwidth, in
  /// bytes per second, through a shared token bucket with two priority
  /// lanes — flushes high, compactions low — so a capped disk budget
  /// still never lets compactions starve the flush that writers wait
  /// on. 0 = unlimited. Ignored when `rate_limiter` is set.
  uint64_t rate_limit_bytes_per_sec = 0;

  /// Optional externally owned RateLimiter (util/rate_limiter.h) to
  /// share one background-I/O budget across several DBs. Borrowed, not
  /// owned; must outlive the DB. When nullptr and
  /// rate_limit_bytes_per_sec > 0, the DB creates and owns one.
  RateLimiter* rate_limiter = nullptr;

  /// Approximate uncompressed size of an SSTable data block. Table IV
  /// default: 4 KB (varied 2 KB..1 MB in Fig. 15c).
  size_t block_size = 4 * 1024;

  /// Number of keys between restart points in a block.
  int block_restart_interval = 16;

  /// Optional cache for uncompressed data blocks (NewLRUCache).
  /// Borrowed, not owned; nullptr means blocks are re-read and
  /// re-decompressed on every access (plus whatever the OS page cache
  /// does). LevelDB defaults to an 8 MB internal cache; pass your own
  /// to control memory.
  Cache* block_cache = nullptr;

  /// Target SSTable file size. Paper: 2 MB per SSTable.
  size_t max_file_size = 2 * 1024 * 1024;

  /// Size(Level i+1) / Size(Level i). Table IV default 10, range [4, 16].
  int leveling_ratio = 10;

  /// MANIFEST rollover threshold. When the descriptor log grows past
  /// this size, the next version edit is installed atomically into a
  /// fresh manifest (write-new, sync, switch CURRENT, sync dir, delete
  /// old) instead of appending forever. Clipped to a 4 KB floor so
  /// tests can force frequent rollovers; 0 disables rollover.
  size_t max_manifest_file_size = 64 * 1024 * 1024;

  /// Per-block compression. Default snappy, as in the paper.
  CompressionType compression = kSnappyCompression;

  /// Optional filter policy (e.g. NewBloomFilterPolicy) for reads;
  /// borrowed, not owned. Default: none, as in stock LevelDB.
  const FilterPolicy* filter_policy = nullptr;

  /// Max open SSTables cached by the table cache.
  int max_open_files = 1000;

  /// Compaction execution engine (paper Fig. 6): nullptr means the
  /// built-in single-threaded CPU merge. Point this at an
  /// FcaeCompactionExecutor (host/offload_compaction.h) to offload
  /// table-merging compactions to the simulated FPGA card. Borrowed,
  /// not owned; must outlive the DB.
  CompactionExecutor* compaction_executor = nullptr;

  /// Number of background compaction workers (DESIGN.md §8). Flushes
  /// always get their own dedicated thread; this bounds how many
  /// table-merging compactions on disjoint level pairs may run
  /// concurrently. 1 reproduces the classic LevelDB single-background-
  /// thread behaviour. Clipped to [1, 16].
  int compaction_threads = 2;

  /// Maximum key-range shards a single large L0->L1 compaction may be
  /// split into (RocksDB-style sub-compactions). Each shard merges an
  /// independent key range through the configured executor; all shard
  /// outputs are installed atomically in one VersionEdit. 1 disables
  /// sharding. Clipped to [1, 16].
  int max_subcompactions = 1;

  /// Number of offload cards behind `compaction_executor` (a multi-card
  /// host::FcaeCompactionExecutor over a DeviceSet). A scheduler knob
  /// only — the DB never creates devices: > 1 makes key-bounded
  /// sub-compaction shards device-eligible (the executor trims staged
  /// blocks to each shard's range) and raises the L0 shard target to at
  /// least this many shards so every card gets work. Must match the
  /// executor's DeviceSet card count. 1 reproduces the single-card
  /// behaviour (shards run on the CPU). Clipped to [1, 16].
  int num_offload_cards = 1;

  /// Optional shared metrics registry (obs/metrics.h). When set, the DB
  /// publishes its counters/histograms here so several components (DB,
  /// executor, benchmarks) can share one snapshot; when nullptr the DB
  /// owns a private registry. Either way the result is readable via
  /// DB::GetProperty("fcae.metrics"). Borrowed, not owned; must outlive
  /// the DB.
  obs::MetricsRegistry* metrics_registry = nullptr;

  /// Optional live trace consumer (obs/trace.h). Every span/instant the
  /// DB records (compactions, flushes, stalls, device retries) is also
  /// forwarded here as it happens, in addition to the in-memory ring
  /// readable via DB::GetProperty("fcae.trace"). Borrowed, not owned;
  /// must outlive the DB and be thread-safe.
  obs::TraceSink* trace_sink = nullptr;

  /// Capacity of the in-memory trace ring readable via
  /// DB::GetProperty("fcae.trace"). Span floods (many small
  /// compactions) evict older events once the ring is full; eviction
  /// is counted in the `obs.trace.dropped_events` metric. Clipped to
  /// at least 16.
  size_t trace_ring_size = 4096;

  /// Event callbacks (obs/event_listener.h) fired on flush, compaction,
  /// offload retry/fallback, write stall, and background-error
  /// transitions. Invoked from DB background/writer threads with no DB
  /// lock held; see the EventListener threading contract. Pointers are
  /// borrowed, not owned, and must outlive the DB; null entries are
  /// ignored.
  std::vector<obs::EventListener*> listeners;

  /// Seconds between continuous stats dumps (obs/stats_dumper.h). When
  /// nonzero, a background task periodically emits the
  /// GetProperty("fcae.stats") text — cumulative plus interval
  /// figures — as a structured "fcae.stats" record through `info_log`.
  /// 0 disables the dumper. Clipped to at most 86400.
  unsigned stats_dump_period_sec = 0;

  /// Structured log sink (obs/logger.h) for background records such as
  /// the periodic stats dump. Borrowed, not owned; must outlive the DB
  /// and be thread-safe. When nullptr, periodic dumps still tick the
  /// `obs.stats_dump.count` metric but emit nothing.
  obs::Logger* info_log = nullptr;

  /// Seconds between background integrity-scrub cycles (DESIGN.md §14).
  /// Each cycle walks every live table on the scrub lane — whole-file
  /// checksum vs the manifest, per-block CRCs, key order, and manifest
  /// bounds — quarantining and repairing anything that fails. Scrub
  /// reads ride the RateLimiter's low-priority lane, so a capped disk
  /// budget gives scrubbing only leftover bandwidth. 0 disables the
  /// periodic scrubber (DB::ScrubNow() still works). Clipped to at
  /// least 60 when nonzero.
  unsigned scrub_interval_seconds = 3600;
};

/// Options controlling read operations.
struct ReadOptions {
  /// Verify block checksums on every read.
  bool verify_checksums = false;

  /// If true, blocks read are not retained in internal caches.
  bool fill_cache = true;

  /// Opaque snapshot sequence number; 0 means "latest state".
  uint64_t snapshot_sequence = 0;
};

/// Options controlling write operations.
struct WriteOptions {
  /// If true, the write is flushed to stable storage (fsync'd WAL)
  /// before returning.
  bool sync = false;
};

}  // namespace fcae

#endif  // FCAE_UTIL_OPTIONS_H_
