#ifndef FCAE_UTIL_ENV_H_
#define FCAE_UTIL_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace fcae {

class FileLock;
class SequentialFile;
class RandomAccessFile;
class WritableFile;

/// An Env abstracts the operating system facilities the storage engine
/// needs: files, directories, clocks, and a background work queue.
/// Implementations must be safe for concurrent access.
class Env {
 public:
  Env() = default;
  virtual ~Env() = default;

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Returns the default POSIX environment (process-lifetime singleton).
  static Env* Default();

  /// Creates an object that sequentially reads the named file.
  [[nodiscard]] virtual Status NewSequentialFile(const std::string& fname,
                                   SequentialFile** result) = 0;

  /// Creates an object supporting random-access reads of the named file.
  [[nodiscard]] virtual Status NewRandomAccessFile(const std::string& fname,
                                     RandomAccessFile** result) = 0;

  /// Creates (truncating if it exists) a writable file.
  [[nodiscard]] virtual Status NewWritableFile(const std::string& fname,
                                 WritableFile** result) = 0;

  /// Opens (creating if needed) a file for appending.
  [[nodiscard]] virtual Status NewAppendableFile(const std::string& fname,
                                   WritableFile** result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;

  /// Stores the names (not paths) of the children of `dir` in *result.
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;

  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  [[nodiscard]] virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Syncs directory metadata so that file creations, removals, and
  /// renames inside `dir` survive a crash (posix: fsync on the dirfd).
  /// The default is a no-op for Envs whose namespace mutations are
  /// already durable (or that have no notion of durability, e.g. the
  /// in-memory Env).
  [[nodiscard]] virtual Status SyncDir(const std::string& dir) {
    (void)dir;
    return Status::OK();
  }

  /// Locks the named file, creating it if needed. On success stores an
  /// owning lock object in *lock; a second LockFile on the same name —
  /// from this or any other process — fails until UnlockFile. Used to
  /// guard a database directory against concurrent opens.
  [[nodiscard]] virtual Status LockFile(const std::string& fname,
                                        FileLock** lock) = 0;

  /// Releases a lock acquired by LockFile and deletes *lock.
  virtual Status UnlockFile(FileLock* lock) = 0;

  /// Arranges to run (*function)(arg) once on a background thread. Calls
  /// made by the same thread run in FIFO order.
  virtual void Schedule(void (*function)(void* arg), void* arg) = 0;

  /// Arranges to run (*function)(arg) once on a named worker pool with
  /// at most `max_threads` threads. Pools are created lazily on first
  /// use and keyed by `pool` (e.g. "fcae-flush", "fcae-compact"); the
  /// pool grows to the largest `max_threads` any caller has requested.
  /// Work submitted to one pool runs FIFO across its threads.
  /// The default implementation ignores the pool name and degrades to
  /// Schedule() (single shared thread) so custom Envs keep working;
  /// PosixEnv provides real named pools.
  virtual void SchedulePool(const char* pool, int max_threads,
                            void (*function)(void* arg), void* arg) {
    (void)pool;
    (void)max_threads;
    Schedule(function, arg);
  }

  /// Starts a new thread running (*function)(arg); the thread is detached.
  virtual void StartThread(void (*function)(void* arg), void* arg) = 0;

  /// Microseconds since some fixed point in the past.
  virtual uint64_t NowMicros() = 0;

  virtual void SleepForMicroseconds(int micros) = 0;
};

/// Identifies a locked file; returned by Env::LockFile.
class FileLock {
 public:
  FileLock() = default;
  virtual ~FileLock() = default;

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
};

/// A file abstraction for sequential reads.
class SequentialFile {
 public:
  SequentialFile() = default;
  virtual ~SequentialFile() = default;

  SequentialFile(const SequentialFile&) = delete;
  SequentialFile& operator=(const SequentialFile&) = delete;

  /// Reads up to n bytes. Sets *result to the data read (may point into
  /// `scratch`, which must have at least n bytes).
  [[nodiscard]] virtual Status Read(size_t n, Slice* result, char* scratch) = 0;

  /// Skips n bytes.
  virtual Status Skip(uint64_t n) = 0;
};

/// A file abstraction for random-access reads; safe for concurrent use.
class RandomAccessFile {
 public:
  RandomAccessFile() = default;
  virtual ~RandomAccessFile() = default;

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads up to n bytes starting at `offset`. *result may point into
  /// `scratch` (which must have at least n bytes).
  [[nodiscard]] virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

/// A file abstraction for sequential (append-only) writes.
class WritableFile {
 public:
  WritableFile() = default;
  virtual ~WritableFile() = default;

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  [[nodiscard]] virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  [[nodiscard]] virtual Status Sync() = 0;
};

/// Writes `data` to the named file, replacing any existing contents.
Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname);

/// Like WriteStringToFile but Sync()s the file before closing, so the
/// contents are durable before any rename that publishes the file.
Status WriteStringToFileSync(Env* env, const Slice& data,
                             const std::string& fname);

/// Reads the entire named file into *data.
Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data);

}  // namespace fcae

#endif  // FCAE_UTIL_ENV_H_
