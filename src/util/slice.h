#ifndef FCAE_UTIL_SLICE_H_
#define FCAE_UTIL_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace fcae {

/// A Slice is a non-owning view of a byte range. The referenced storage
/// must outlive the Slice. Slices are cheap to copy and compare.
class Slice {
 public:
  /// Creates an empty slice.
  Slice() : data_(""), size_(0) {}

  /// Creates a slice referring to data[0, n).
  Slice(const char* data, size_t n) : data_(data), size_(n) {}

  /// Creates a slice referring to the contents of `s`.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}

  /// Creates a slice referring to the NUL-terminated string `s`.
  Slice(const char* s) : data_(s), size_(strlen(s)) {}

  Slice(const Slice&) = default;
  Slice& operator=(const Slice&) = default;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const char* begin() const { return data_; }
  const char* end() const { return data_ + size_; }

  /// Returns the i-th byte; requires i < size().
  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Resets to the empty slice.
  void Clear() {
    data_ = "";
    size_ = 0;
  }

  /// Drops the first n bytes; requires n <= size().
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  /// Returns a copy of the referenced bytes as a std::string.
  std::string ToString() const { return std::string(data_, size_); }

  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  /// Three-way bytewise comparison: <0, ==0, >0 as *this <, ==, > b.
  int Compare(const Slice& b) const;

  /// Returns true iff `x` is a prefix of *this.
  bool StartsWith(const Slice& x) const {
    return (size_ >= x.size_) && (memcmp(data_, x.data_, x.size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& x, const Slice& y) {
  return (x.size() == y.size()) &&
         (memcmp(x.data(), y.data(), x.size()) == 0);
}

inline bool operator!=(const Slice& x, const Slice& y) { return !(x == y); }

inline int Slice::Compare(const Slice& b) const {
  const size_t min_len = (size_ < b.size_) ? size_ : b.size_;
  int r = memcmp(data_, b.data_, min_len);
  if (r == 0) {
    if (size_ < b.size_) {
      r = -1;
    } else if (size_ > b.size_) {
      r = +1;
    }
  }
  return r;
}

}  // namespace fcae

#endif  // FCAE_UTIL_SLICE_H_
