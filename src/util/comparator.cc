#include "util/comparator.h"

#include <algorithm>

namespace fcae {

namespace {

class BytewiseComparatorImpl : public Comparator {
 public:
  BytewiseComparatorImpl() = default;

  const char* Name() const override { return "fcae.BytewiseComparator"; }

  int Compare(const Slice& a, const Slice& b) const override {
    return a.Compare(b);
  }

  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override {
    // Find length of common prefix.
    size_t min_length = std::min(start->size(), limit.size());
    size_t diff_index = 0;
    while ((diff_index < min_length) &&
           ((*start)[diff_index] == limit[diff_index])) {
      diff_index++;
    }

    if (diff_index >= min_length) {
      // One string is a prefix of the other; do not shorten.
      return;
    }
    uint8_t diff_byte = static_cast<uint8_t>((*start)[diff_index]);
    if (diff_byte < static_cast<uint8_t>(0xff) &&
        diff_byte + 1 < static_cast<uint8_t>(limit[diff_index])) {
      (*start)[diff_index]++;
      start->resize(diff_index + 1);
      assert(Compare(*start, limit) < 0);
    }
  }

  void FindShortSuccessor(std::string* key) const override {
    // Find first byte that can be incremented.
    size_t n = key->size();
    for (size_t i = 0; i < n; i++) {
      const uint8_t byte = static_cast<uint8_t>((*key)[i]);
      if (byte != static_cast<uint8_t>(0xff)) {
        (*key)[i] = static_cast<char>(byte + 1);
        key->resize(i + 1);
        return;
      }
    }
    // key is a run of 0xffs: leave it alone.
  }
};

}  // namespace

const Comparator* BytewiseComparator() {
  static const BytewiseComparatorImpl* singleton = new BytewiseComparatorImpl;
  return singleton;
}

}  // namespace fcae
