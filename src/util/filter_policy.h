#ifndef FCAE_UTIL_FILTER_POLICY_H_
#define FCAE_UTIL_FILTER_POLICY_H_

#include <string>

#include "util/slice.h"

namespace fcae {

/// A FilterPolicy creates compact probabilistic summaries of key sets
/// (e.g. Bloom filters) that SSTables consult before touching a data
/// block, cutting read amplification for point lookups.
class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  /// The persisted name; changing the filter algorithm requires a new
  /// name, because old filters would be consulted with the new semantics.
  virtual const char* Name() const = 0;

  /// Appends a filter summarizing keys[0, n) to *dst.
  virtual void CreateFilter(const Slice* keys, int n,
                            std::string* dst) const = 0;

  /// Returns true if `key` may be in the set the filter was built from;
  /// false means definitely absent.
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

/// Returns a Bloom-filter policy with ~bits_per_key bits per key
/// (10 gives a ~1% false positive rate). Caller owns the result.
const FilterPolicy* NewBloomFilterPolicy(int bits_per_key);

}  // namespace fcae

#endif  // FCAE_UTIL_FILTER_POLICY_H_
