#include "util/write_controller.h"

#include <algorithm>

namespace fcae {

double WriteController::DebtScore(const WriteStallConditions& cond,
                                  const WriteControllerConfig& config) {
  double debt = 0;

  // L0 component: 0 below the slowdown trigger, 1.0 at the stop
  // trigger, linear in the files between. The +1 keeps the first file
  // at the slowdown trigger from pricing as zero debt.
  if (cond.l0_files >= config.l0_stop_trigger) {
    debt = 1.0;
  } else if (cond.l0_files >= config.l0_slowdown_trigger) {
    const int span =
        std::max(1, config.l0_stop_trigger - config.l0_slowdown_trigger);
    debt = static_cast<double>(cond.l0_files - config.l0_slowdown_trigger +
                               1) /
           static_cast<double>(span);
  }

  // Pending-compaction-bytes component: deeper-level backlog the L0
  // count cannot see. Linear between the soft and hard limits.
  if (config.hard_pending_compaction_bytes >
          config.soft_pending_compaction_bytes &&
      cond.pending_compaction_bytes > config.soft_pending_compaction_bytes) {
    const double span = static_cast<double>(
        config.hard_pending_compaction_bytes -
        config.soft_pending_compaction_bytes);
    const double over = static_cast<double>(
        cond.pending_compaction_bytes - config.soft_pending_compaction_bytes);
    debt = std::max(debt, std::min(1.0, over / span));
  }

  return std::min(1.0, std::max(0.0, debt));
}

uint64_t WriteController::DelayMicrosForDebt(
    double debt, const WriteControllerConfig& config) {
  if (debt <= 0) return 0;
  const double clamped = std::min(1.0, debt);
  const double span = static_cast<double>(
      config.max_delay_micros > config.min_delay_micros
          ? config.max_delay_micros - config.min_delay_micros
          : 0);
  return config.min_delay_micros +
         static_cast<uint64_t>(clamped * clamped * span);
}

WriteController::State WriteController::Update(
    const WriteStallConditions& cond) {
  debt_ = DebtScore(cond, config_);

  const bool l0_stop = cond.l0_files >= config_.l0_stop_trigger;
  // The memory budget stops writers only while a flush is in flight to
  // drain it; without one the caller rotates the memtable instead, so
  // stopping would deadlock.
  const bool memory_stop =
      config_.total_write_buffer_size > 0 && cond.imm_in_flight &&
      cond.memtable_bytes >= config_.total_write_buffer_size;

  if (l0_stop || memory_stop) {
    state_ = State::kStopped;
  } else if (debt_ > 0) {
    state_ = State::kDelayed;
  } else {
    state_ = State::kOk;
    next_request_micros_ = 0;  // Debt paid off: drop any queued credit.
  }
  return state_;
}

uint64_t WriteController::GetDelayMicros(uint64_t now_micros) {
  if (state_ != State::kDelayed) return 0;
  const uint64_t spacing = DelayMicrosForDebt(debt_, config_);
  const uint64_t base = std::max(now_micros, next_request_micros_);
  // Cap the ledger at one max delay past now: the backlog a burst can
  // accumulate is bounded, so p99 stays bounded too (the overload
  // acceptance criterion).
  next_request_micros_ =
      std::min(base + spacing, now_micros + config_.max_delay_micros);
  return next_request_micros_ - now_micros;
}

}  // namespace fcae
