#include "util/histogram.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace fcae {

const std::vector<double>& Histogram::BucketLimits() {
  // Geometrically growing bucket limits: 1, 2, 3, 4, 5, 6, 8, 10, ...
  static const std::vector<double>* limits = [] {
    auto* v = new std::vector<double>();
    double limit = 1;
    while (limit < 1e18) {
      v->push_back(limit);
      double next = limit * 1.25;
      if (next <= limit + 1) {
        next = limit + 1;
      }
      limit = std::floor(next);
    }
    v->push_back(1e18);
    return v;
  }();
  return *limits;
}

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  min_ = std::numeric_limits<double>::max();
  max_ = 0;
  num_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  buckets_.assign(BucketLimits().size(), 0.0);
}

void Histogram::Add(double value) {
  const std::vector<double>& limits = BucketLimits();
  // Binary search for the first bucket whose limit exceeds value.
  size_t lo = 0;
  size_t hi = limits.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (limits[mid] > value) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  buckets_[lo] += 1.0;
  if (min_ > value) min_ = value;
  if (max_ < value) max_ = value;
  num_++;
  sum_ += value;
  sum_squares_ += (value * value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t b = 0; b < buckets_.size(); b++) {
    buckets_[b] += other.buckets_[b];
  }
}

void Histogram::Subtract(const Histogram& other) {
  num_ -= other.num_;
  sum_ -= other.sum_;
  sum_squares_ -= other.sum_squares_;
  if (num_ <= 0) {
    Clear();
    return;
  }
  const std::vector<double>& limits = BucketLimits();
  size_t first_live = limits.size();
  size_t last_live = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    buckets_[b] -= other.buckets_[b];
    if (buckets_[b] < 0) buckets_[b] = 0;  // Tolerate drift.
    if (buckets_[b] > 0) {
      if (first_live == limits.size()) first_live = b;
      last_live = b;
    }
  }
  if (first_live == limits.size()) {
    // Bucket/count drift left no samples; treat the window as empty.
    Clear();
    return;
  }
  // Exact extremes left with the removed prefix; approximate with the
  // bounds of the oldest/newest surviving bucket, clamped so the
  // original extremes still dominate.
  double bucket_min = (first_live == 0) ? 0 : limits[first_live - 1];
  double bucket_max = limits[last_live];
  if (min_ < bucket_min) min_ = bucket_min;
  if (max_ > bucket_max) max_ = bucket_max;
}

double Histogram::Median() const { return Percentile(50.0); }

double Histogram::Percentile(double p) const {
  const std::vector<double>& limits = BucketLimits();
  double threshold = num_ * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    cumulative += buckets_[b];
    if (cumulative >= threshold) {
      // Linear interpolation inside the bucket.
      double left_point = (b == 0) ? 0 : limits[b - 1];
      double right_point = limits[b];
      double left_sum = cumulative - buckets_[b];
      double right_sum = cumulative;
      double pos = 0;
      if (right_sum > left_sum) {
        pos = (threshold - left_sum) / (right_sum - left_sum);
      }
      double r = left_point + (right_point - left_point) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

double Histogram::Average() const {
  if (num_ == 0.0) return 0;
  return sum_ / num_;
}

double Histogram::StandardDeviation() const {
  if (num_ == 0.0) return 0;
  double variance = (sum_squares_ * num_ - sum_ * sum_) / (num_ * num_);
  return std::sqrt(variance > 0 ? variance : 0);
}

std::string Histogram::ToString() const {
  std::string r;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "Count: %.0f  Average: %.4f  StdDev: %.2f\n",
                num_, Average(), StandardDeviation());
  r.append(buf);
  std::snprintf(buf, sizeof(buf), "Min: %.4f  Median: %.4f  Max: %.4f\n",
                (num_ == 0.0 ? 0.0 : min_), Median(), max_);
  r.append(buf);
  std::snprintf(buf, sizeof(buf), "P99: %.4f  P99.9: %.4f\n",
                Percentile(99.0), Percentile(99.9));
  r.append(buf);
  return r;
}

}  // namespace fcae
