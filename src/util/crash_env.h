#ifndef FCAE_UTIL_CRASH_ENV_H_
#define FCAE_UTIL_CRASH_ENV_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

/// Process-wide registry of named crash points.
///
/// Production code marks durability boundaries with
/// `FCAE_CRASH_POINT("manifest:after_append")`; the marker is a single
/// relaxed atomic load when nothing is armed. Tests Arm() a point with
/// a handler (typically CrashInjectionEnv::Crash) that simulates power
/// loss at exactly that boundary, then reopen the DB on the surviving
/// state and check what must have been durable.
class CrashPointRegistry {
 public:
  using Handler = std::function<void(const char* point)>;

  static CrashPointRegistry* Instance();

  /// Arms `point`: `handler` fires on the `hit_count`-th Hit (1-based),
  /// after which the point disarms itself. Re-arming replaces any
  /// previous arming of the same point.
  void Arm(const std::string& point, int hit_count, Handler handler);
  void Disarm(const std::string& point);
  void DisarmAll();

  /// True if `point` is still armed (its handler has not fired yet).
  bool IsArmed(const std::string& point);

  /// Hit-count bookkeeping, active only between EnableHitCounting(true)
  /// and (false). Lets tests tell "this point was never reached in this
  /// configuration" apart from "it was reached and survived".
  void EnableHitCounting(bool on);
  uint64_t HitCount(const std::string& point);
  void ResetHitCounts();

  /// Called by FCAE_CRASH_POINT. Hot-path cost when nothing is armed
  /// and counting is off: two relaxed atomic loads.
  void Hit(const char* point);

  /// The canonical list of crash points instrumented in the tree; the
  /// crash-matrix test iterates exactly this list.
  static const std::vector<std::string>& KnownPoints();

 private:
  CrashPointRegistry() = default;

  struct ArmedPoint {
    int remaining = 0;
    Handler handler;
  };

  std::atomic<int> armed_count_{0};
  std::atomic<bool> count_hits_{false};
  Mutex mu_;
  std::map<std::string, ArmedPoint> armed_ GUARDED_BY(mu_);
  std::map<std::string, uint64_t> hit_counts_ GUARDED_BY(mu_);
};

/// Marks a crash boundary. `name` must be a string literal; near-zero
/// cost unless a test armed the point.
#define FCAE_CRASH_POINT(name) \
  ::fcae::CrashPointRegistry::Instance()->Hit(name)

/// An Env wrapper that models which bytes would survive a power cut.
///
/// Durability model (strict POSIX, journaling-fs flavor):
///  - WritableFile::Sync() makes the file's *data* durable up to the
///    current length; without it the surviving content is the content
///    at the previous Sync (empty if never synced).
///  - Directory entries (creations, renames, removals) become durable
///    only when Env::SyncDir() of the parent directory commits them, in
///    order. An unsynced creation loses the file; an unsynced rename
///    leaves the old name; an unsynced removal resurrects the file.
///
/// Crash() freezes the env: every mutating operation and every stale
/// file handle fails with IOError. ResetToDurableState() then rewrites
/// the wrapped Env to the durable image — exactly what a disk would
/// hold after reboot — and unfreezes, so a fresh DB::Open can recover.
class CrashInjectionEnv : public Env {
 public:
  /// Wraps `base` (not owned; must outlive this Env).
  explicit CrashInjectionEnv(Env* base);
  ~CrashInjectionEnv() override;

  Status NewSequentialFile(const std::string& fname,
                           SequentialFile** result) override;
  Status NewRandomAccessFile(const std::string& fname,
                             RandomAccessFile** result) override;
  Status NewWritableFile(const std::string& fname,
                         WritableFile** result) override;
  Status NewAppendableFile(const std::string& fname,
                           WritableFile** result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status SyncDir(const std::string& dir) override;
  Status LockFile(const std::string& fname, FileLock** lock) override;
  Status UnlockFile(FileLock* lock) override;
  void Schedule(void (*function)(void*), void* arg) override;
  void SchedulePool(const char* pool, int max_threads, void (*function)(void*),
                    void* arg) override;
  void StartThread(void (*function)(void*), void* arg) override;
  uint64_t NowMicros() override;
  void SleepForMicroseconds(int micros) override;

  /// Simulates power loss now. Thread-safe; usually invoked from a
  /// crash-point handler on a DB background thread.
  void Crash();
  bool crashed() const;

  /// Rolls the wrapped Env back to the durable image and unfreezes.
  /// Requires crashed(). Handles opened before the crash stay dead.
  void ResetToDurableState();

  /// Arms `point` (via CrashPointRegistry) to Crash() this env on its
  /// `hit`-th hit.
  void ArmCrashPoint(const std::string& point, int hit = 1);

  /// When on, mutating operations fail with IOError("injected write
  /// error") but nothing is frozen or lost — models a transient media
  /// error for background-error / Resume() tests.
  void SetWritesFail(bool fail);

  /// When on, only WritableFile::Sync() fails (creates, appends, and
  /// directory syncs still work) — models a disk that accepts writes
  /// but cannot commit them, so background flushes fail while the
  /// foreground write path stays alive.
  void SetSyncsFail(bool fail);

  /// Names (not paths) of the files in `dir` that would survive a crash
  /// right now. Test-inspection helper.
  std::vector<std::string> DurableChildren(const std::string& dir);

 private:
  friend class CrashWritableFile;

  // One inode. `synced` is the content that survives a crash once the
  // dirent is durable.
  struct FileNode {
    std::string synced;
  };
  using NodeRef = std::shared_ptr<FileNode>;

  struct PendingOp {
    enum Kind { kCreate, kRename, kRemove } kind;
    std::string a;  // created/removed name, or rename source
    std::string b;  // rename target
    NodeRef node;   // for kCreate
  };

  static std::string ParentDir(const std::string& path);
  Status FailIfFrozenLocked(const char* what) REQUIRES(mu_);
  // Called by CrashWritableFile after a successful base Sync().
  void NoteFileSynced(const std::string& fname, const NodeRef& node);
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  Env* const base_;
  mutable Mutex mu_;
  bool crashed_ GUARDED_BY(mu_) = false;
  bool fail_writes_ GUARDED_BY(mu_) = false;
  bool fail_syncs_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> generation_{1};
  // Live namespace (mirrors the wrapped Env) and durable namespace
  // (what survives a crash), both mapping full path -> inode.
  std::map<std::string, NodeRef> live_ GUARDED_BY(mu_);
  std::map<std::string, NodeRef> durable_ GUARDED_BY(mu_);
  // Uncommitted directory-metadata ops, per parent dir, in order.
  std::map<std::string, std::vector<PendingOp>> pending_ GUARDED_BY(mu_);
  // Every directory we have seen a file in (for ResetToDurableState).
  std::set<std::string> dirs_ GUARDED_BY(mu_);
};

}  // namespace fcae

#endif  // FCAE_UTIL_CRASH_ENV_H_
