#include "util/crc32c.h"

#include <array>

namespace fcae {
namespace crc32c {

namespace {

// CRC32C (Castagnoli) polynomial, reflected form.
constexpr uint32_t kPoly = 0x82f63b78u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int j = 0; j < 8; j++) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const std::array<uint32_t, 256>& table = Table();
  uint32_t crc = init_crc ^ 0xffffffffu;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace fcae
