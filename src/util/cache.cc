#include "util/cache.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <list>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

Cache::~Cache() = default;

namespace {

/// A straightforward LRU cache: a hash map from key to entry, and an
/// LRU list over unpinned entries. Entries are reference counted; the
/// cache itself holds one reference while an entry is in the index.
class LRUCache : public Cache {
 public:
  explicit LRUCache(size_t capacity) : capacity_(capacity), usage_(0) {}

  ~LRUCache() override {
    for (auto& kv : index_) {
      Entry* e = kv.second;
      assert(e->refs == 1);  // Only the cache's own reference remains.
      e->deleter(Slice(e->key), e->value);
      delete e;
    }
  }

  Handle* Insert(const Slice& key, void* value, size_t charge,
                 void (*deleter)(const Slice&, void*)) override {
    MutexLock lock(&mutex_);
    Entry* e = new Entry;
    e->key = key.ToString();
    e->value = value;
    e->charge = charge;
    e->deleter = deleter;
    e->refs = 2;  // One for the index, one for the returned handle.
    e->in_lru = false;

    auto it = index_.find(e->key);
    if (it != index_.end()) {
      RemoveFromIndex(it->second);
    }
    index_[e->key] = e;
    usage_ += charge;
    EvictIfNeeded();
    return reinterpret_cast<Handle*>(e);
  }

  Handle* Lookup(const Slice& key) override {
    MutexLock lock(&mutex_);
    auto it = index_.find(key.ToString());
    if (it == index_.end()) {
      return nullptr;
    }
    Entry* e = it->second;
    if (e->in_lru) {
      lru_.erase(e->lru_pos);
      e->in_lru = false;
    }
    e->refs++;
    return reinterpret_cast<Handle*>(e);
  }

  void Release(Handle* handle) override {
    MutexLock lock(&mutex_);
    Unref(reinterpret_cast<Entry*>(handle));
    // A release may have made an over-capacity entry evictable.
    EvictIfNeeded();
  }

  void* Value(Handle* handle) override {
    return reinterpret_cast<Entry*>(handle)->value;
  }

  void Erase(const Slice& key) override {
    MutexLock lock(&mutex_);
    auto it = index_.find(key.ToString());
    if (it != index_.end()) {
      RemoveFromIndex(it->second);
    }
  }

  uint64_t NewId() override {
    MutexLock lock(&mutex_);
    return ++last_id_;
  }

  void Prune() override {
    MutexLock lock(&mutex_);
    // Drop every entry whose only reference is the index's own.
    while (!lru_.empty()) {
      Entry* e = lru_.front();
      RemoveFromIndex(e);
    }
  }

  size_t TotalCharge() const override {
    MutexLock lock(&mutex_);
    return usage_;
  }

 private:
  struct Entry {
    std::string key;
    void* value;
    size_t charge;
    void (*deleter)(const Slice&, void*);
    int refs;
    bool in_lru;  // True iff unpinned and linked into lru_.
    std::list<Entry*>::iterator lru_pos;
  };

  /// Drops the index's reference and removes from the map/LRU list.
  void RemoveFromIndex(Entry* e) REQUIRES(mutex_) {
    if (e->in_lru) {
      lru_.erase(e->lru_pos);
      e->in_lru = false;
    }
    index_.erase(e->key);
    usage_ -= e->charge;
    Unref(e);
  }

  void Unref(Entry* e) REQUIRES(mutex_) {
    assert(e->refs > 0);
    e->refs--;
    if (e->refs == 0) {
      e->deleter(Slice(e->key), e->value);
      delete e;
    } else if (e->refs == 1 && index_.count(e->key) != 0 &&
               index_.at(e->key) == e) {
      // Only the index holds it now: eligible for eviction.
      lru_.push_back(e);
      e->lru_pos = std::prev(lru_.end());
      e->in_lru = true;
    }
  }

  void EvictIfNeeded() REQUIRES(mutex_) {
    while (usage_ > capacity_ && !lru_.empty()) {
      Entry* oldest = lru_.front();
      RemoveFromIndex(oldest);
    }
  }

  const size_t capacity_;
  mutable Mutex mutex_;
  size_t usage_ GUARDED_BY(mutex_);
  uint64_t last_id_ GUARDED_BY(mutex_) = 0;
  std::unordered_map<std::string, Entry*> index_ GUARDED_BY(mutex_);
  std::list<Entry*> lru_ GUARDED_BY(mutex_);  // Front = least recently used.
};

}  // namespace

Cache* NewLRUCache(size_t capacity) { return new LRUCache(capacity); }

}  // namespace fcae
