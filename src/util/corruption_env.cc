#include "util/corruption_env.h"

#include <algorithm>
#include <memory>

namespace fcae {

namespace {

// Deterministic xorshift32; good enough to spread flips over a file and
// has no global state, so matrix-test seeds replay exactly.
class SeededPrng {
 public:
  explicit SeededPrng(uint32_t seed) : state_(seed == 0 ? 0x9e3779b9u : seed) {}
  uint32_t Next() {
    uint32_t x = state_;
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    state_ = x;
    return x;
  }

 private:
  uint32_t state_;
};

}  // namespace

/// Forwards everything; tells the env when a Sync() commits.
class CorruptionTrackedWritableFile : public WritableFile {
 public:
  CorruptionTrackedWritableFile(WritableFile* target,
                                CorruptionInjectionEnv* env, std::string fname)
      : target_(target), env_(env), fname_(std::move(fname)) {}
  ~CorruptionTrackedWritableFile() override { delete target_; }

  Status Append(const Slice& data) override { return target_->Append(data); }
  Status Close() override { return target_->Close(); }
  Status Flush() override { return target_->Flush(); }
  Status Sync() override {
    Status s = target_->Sync();
    if (s.ok()) {
      env_->NoteFileSynced(fname_);
    }
    return s;
  }

 private:
  WritableFile* const target_;
  CorruptionInjectionEnv* const env_;
  const std::string fname_;
};

CorruptionInjectionEnv::CorruptionInjectionEnv(Env* base) : base_(base) {}

CorruptionInjectionEnv::~CorruptionInjectionEnv() = default;

Status CorruptionInjectionEnv::NewSequentialFile(const std::string& fname,
                                                 SequentialFile** result) {
  return base_->NewSequentialFile(fname, result);
}

Status CorruptionInjectionEnv::NewRandomAccessFile(const std::string& fname,
                                                   RandomAccessFile** result) {
  return base_->NewRandomAccessFile(fname, result);
}

Status CorruptionInjectionEnv::NewWritableFile(const std::string& fname,
                                               WritableFile** result) {
  WritableFile* file = nullptr;
  Status s = base_->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  {
    // Truncation discards any previously synced image.
    MutexLock lock(&mu_);
    synced_.erase(fname);
  }
  *result = new CorruptionTrackedWritableFile(file, this, fname);
  return s;
}

Status CorruptionInjectionEnv::NewAppendableFile(const std::string& fname,
                                                 WritableFile** result) {
  WritableFile* file = nullptr;
  Status s = base_->NewAppendableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  *result = new CorruptionTrackedWritableFile(file, this, fname);
  return s;
}

bool CorruptionInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status CorruptionInjectionEnv::GetChildren(const std::string& dir,
                                           std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status CorruptionInjectionEnv::RemoveFile(const std::string& fname) {
  Status s = base_->RemoveFile(fname);
  if (s.ok()) {
    MutexLock lock(&mu_);
    synced_.erase(fname);
  }
  return s;
}

Status CorruptionInjectionEnv::CreateDir(const std::string& dirname) {
  return base_->CreateDir(dirname);
}

Status CorruptionInjectionEnv::RemoveDir(const std::string& dirname) {
  return base_->RemoveDir(dirname);
}

Status CorruptionInjectionEnv::GetFileSize(const std::string& fname,
                                           uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status CorruptionInjectionEnv::RenameFile(const std::string& src,
                                          const std::string& target) {
  Status s = base_->RenameFile(src, target);
  if (s.ok()) {
    MutexLock lock(&mu_);
    if (synced_.erase(src) > 0) {
      synced_.insert(target);
    }
  }
  return s;
}

Status CorruptionInjectionEnv::SyncDir(const std::string& dir) {
  return base_->SyncDir(dir);
}

Status CorruptionInjectionEnv::LockFile(const std::string& fname,
                                        FileLock** lock) {
  return base_->LockFile(fname, lock);
}

Status CorruptionInjectionEnv::UnlockFile(FileLock* lock) {
  return base_->UnlockFile(lock);
}

void CorruptionInjectionEnv::Schedule(void (*function)(void*), void* arg) {
  base_->Schedule(function, arg);
}

void CorruptionInjectionEnv::SchedulePool(const char* pool, int max_threads,
                                          void (*function)(void*), void* arg) {
  base_->SchedulePool(pool, max_threads, function, arg);
}

void CorruptionInjectionEnv::StartThread(void (*function)(void*), void* arg) {
  base_->StartThread(function, arg);
}

uint64_t CorruptionInjectionEnv::NowMicros() { return base_->NowMicros(); }

void CorruptionInjectionEnv::SleepForMicroseconds(int micros) {
  base_->SleepForMicroseconds(micros);
}

bool CorruptionInjectionEnv::IsSynced(const std::string& fname) const {
  MutexLock lock(&mu_);
  return synced_.count(fname) > 0;
}

std::vector<std::string> CorruptionInjectionEnv::SyncedFiles() const {
  MutexLock lock(&mu_);
  return std::vector<std::string>(synced_.begin(), synced_.end());
}

void CorruptionInjectionEnv::NoteFileSynced(const std::string& fname) {
  MutexLock lock(&mu_);
  synced_.insert(fname);
}

Status CorruptionInjectionEnv::CorruptFile(const std::string& fname,
                                           uint32_t seed, int flips,
                                           std::vector<uint64_t>* offsets) {
  uint64_t size = 0;
  Status s = GetFileSize(fname, &size);
  if (!s.ok()) {
    return s;
  }
  return CorruptFileRange(fname, seed, 0, size, flips, offsets);
}

Status CorruptionInjectionEnv::CorruptFileRange(
    const std::string& fname, uint32_t seed, uint64_t start, uint64_t end,
    int flips, std::vector<uint64_t>* offsets) {
  std::string contents;
  Status s = ReadFileToString(base_, fname, &contents);
  if (!s.ok()) {
    return s;
  }
  if (contents.empty()) {
    return Status::InvalidArgument(fname, "cannot corrupt empty file");
  }
  end = std::min<uint64_t>(end, contents.size());
  if (start >= end) {
    return Status::InvalidArgument(fname, "empty corruption range");
  }
  SeededPrng prng(seed);
  for (int i = 0; i < flips; i++) {
    const uint64_t offset = start + prng.Next() % (end - start);
    // A zero mask would be a no-op flip; force at least one changed bit.
    const char mask = static_cast<char>((prng.Next() % 255) + 1);
    contents[offset] = static_cast<char>(contents[offset] ^ mask);
    if (offsets != nullptr) {
      offsets->push_back(offset);
    }
  }
  // Rewrite in place through the *base* env so the synced-set bookkeeping
  // is untouched: the file was durable before the rot and stays durable.
  WritableFile* file = nullptr;
  s = base_->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<WritableFile> file_guard(file);
  s = file->Append(Slice(contents));
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  return s;
}

}  // namespace fcae
