#ifndef FCAE_TABLE_FORMAT_H_
#define FCAE_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "util/options.h"
#include "util/slice.h"
#include "util/status.h"

namespace fcae {

class RandomAccessFile;

/// A BlockHandle is a pointer to the extent of a file that stores a data
/// or meta block: (offset, size), each varint64-encoded.
class BlockHandle {
 public:
  /// Maximum encoded length of a BlockHandle.
  enum { kMaxEncodedLength = 10 + 10 };

  BlockHandle();

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }

  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_;
  uint64_t size_;
};

/// The Footer is the fixed-length tail of every SSTable: handles to the
/// metaindex and index blocks plus a magic number.
class Footer {
 public:
  /// Encoded length: two max-size handles (padded) + 8-byte magic.
  enum { kEncodedLength = 2 * BlockHandle::kMaxEncodedLength + 8 };

  Footer() = default;

  const BlockHandle& metaindex_handle() const { return metaindex_handle_; }
  void set_metaindex_handle(const BlockHandle& h) { metaindex_handle_ = h; }

  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

/// kTableMagicNumber identifies fcae SSTables ("fcaesst1" as hex-ish).
constexpr uint64_t kTableMagicNumber = 0xfcae57ab1e5eed01ull;

/// Each stored block is followed by a 5-byte trailer:
/// 1 byte CompressionType + 4 byte masked CRC32C of data+type.
constexpr size_t kBlockTrailerSize = 5;

/// The result of reading a block from a file.
struct BlockContents {
  Slice data;           // Actual contents of the (decompressed) block.
  bool cachable;        // True iff data can be cached.
  bool heap_allocated;  // True iff caller should delete[] data.data().
};

/// Reads the block identified by `handle` from `file`, verifying the
/// trailer checksum when options.verify_checksums is set, and
/// decompressing if needed.
Status ReadBlock(RandomAccessFile* file, const ReadOptions& options,
                 const BlockHandle& handle, BlockContents* result);

}  // namespace fcae

#endif  // FCAE_TABLE_FORMAT_H_
