#ifndef FCAE_TABLE_FILTER_BLOCK_H_
#define FCAE_TABLE_FILTER_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace fcae {

class FilterPolicy;

/// Builds the filter block of an SSTable: one filter per 2 KB range of
/// file offsets, so readers can map a data block's offset to the filter
/// covering its keys.
class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const FilterPolicy* policy);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  /// Called when a data block starting at `block_offset` begins.
  void StartBlock(uint64_t block_offset);

  /// Registers a key belonging to the data block in progress.
  void AddKey(const Slice& key);

  /// Finishes the filter block; the result is valid while the builder
  /// lives.
  Slice Finish();

 private:
  void GenerateFilter();

  const FilterPolicy* policy_;
  std::string keys_;             // Flattened key contents.
  std::vector<size_t> start_;    // Starting index in keys_ of each key.
  std::string result_;           // Filter data computed so far.
  std::vector<Slice> tmp_keys_;  // policy_->CreateFilter() argument.
  std::vector<uint32_t> filter_offsets_;
};

/// Reads the filter block format produced by FilterBlockBuilder.
class FilterBlockReader {
 public:
  /// `contents` must outlive *this.
  FilterBlockReader(const FilterPolicy* policy, const Slice& contents);

  /// Returns true if `key` may be present in the data block that starts
  /// at `block_offset`.
  bool KeyMayMatch(uint64_t block_offset, const Slice& key);

 private:
  const FilterPolicy* policy_;
  const char* data_;    // Pointer to filter data (at block-start).
  const char* offset_;  // Pointer to beginning of offset array (at end).
  size_t num_;          // Number of entries in offset array.
  size_t base_lg_;      // Encoding parameter (see kFilterBaseLg).
};

}  // namespace fcae

#endif  // FCAE_TABLE_FILTER_BLOCK_H_
