#ifndef FCAE_TABLE_BLOCK_BUILDER_H_
#define FCAE_TABLE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace fcae {

struct Options;

/// Builds one SSTable block: keys are prefix-compressed relative to the
/// previous key, with full-key "restart points" every
/// options.block_restart_interval entries so binary search is possible.
///
/// Entry layout:
///   shared_bytes:    varint32
///   unshared_bytes:  varint32
///   value_length:    varint32
///   key_delta:       char[unshared_bytes]
///   value:           char[value_length]
/// Trailer: restart offsets (fixed32 each) + num_restarts (fixed32).
class BlockBuilder {
 public:
  explicit BlockBuilder(const Options* options);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// Resets the contents as if the BlockBuilder was just constructed.
  void Reset();

  /// Appends an entry. Requires: Finish() has not been called since the
  /// last Reset(); `key` is larger than any previously added key.
  void Add(const Slice& key, const Slice& value);

  /// Finishes building and returns a slice referring to the block
  /// contents, valid until Reset() is called.
  Slice Finish();

  /// Estimated current (uncompressed) size of the block being built.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const Options* options_;
  std::string buffer_;              // Destination buffer.
  std::vector<uint32_t> restarts_;  // Restart points.
  int counter_;                     // Entries emitted since restart.
  bool finished_;                   // Has Finish() been called?
  std::string last_key_;
};

}  // namespace fcae

#endif  // FCAE_TABLE_BLOCK_BUILDER_H_
