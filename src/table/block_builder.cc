#include "table/block_builder.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"
#include "util/comparator.h"
#include "util/options.h"

namespace fcae {

BlockBuilder::BlockBuilder(const Options* options)
    : options_(options), restarts_(), counter_(0), finished_(false) {
  assert(options->block_restart_interval >= 1);
  restarts_.push_back(0);  // First restart point is at offset 0.
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return (buffer_.size() +                       // Raw data buffer
          restarts_.size() * sizeof(uint32_t) +  // Restart array
          sizeof(uint32_t));                     // Restart array length
}

Slice BlockBuilder::Finish() {
  // Append restart array.
  for (size_t i = 0; i < restarts_.size(); i++) {
    PutFixed32(&buffer_, restarts_[i]);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  Slice last_key_piece(last_key_);
  assert(!finished_);
  assert(counter_ <= options_->block_restart_interval);
  assert(buffer_.empty() ||  // No values yet?
         options_->comparator->Compare(key, last_key_piece) > 0);
  size_t shared = 0;
  if (counter_ < options_->block_restart_interval) {
    // See how much sharing to do with previous string.
    const size_t min_length = std::min(last_key_piece.size(), key.size());
    while ((shared < min_length) && (last_key_piece[shared] == key[shared])) {
      shared++;
    }
  } else {
    // Restart compression.
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  // Add "<shared><non_shared><value_size>" to buffer_.
  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));

  // Add string delta to buffer_ followed by value.
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  // Update state.
  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  assert(Slice(last_key_) == key);
  counter_++;
}

}  // namespace fcae
