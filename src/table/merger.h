#ifndef FCAE_TABLE_MERGER_H_
#define FCAE_TABLE_MERGER_H_

namespace fcae {

class Comparator;
class Iterator;

/// Returns an iterator that merges children[0, n). The result yields the
/// union of the children's entries in comparator order (duplicates
/// appear once per child). Takes ownership of the child iterators.
Iterator* NewMergingIterator(const Comparator* comparator,
                             Iterator** children, int n);

}  // namespace fcae

#endif  // FCAE_TABLE_MERGER_H_
