#ifndef FCAE_TABLE_TABLE_H_
#define FCAE_TABLE_TABLE_H_

#include <cstdint>

#include "table/iterator.h"
#include "util/options.h"

namespace fcae {

class BlockHandle;
class Footer;
class RandomAccessFile;

/// A Table is an immutable, sorted map from strings to strings, read from
/// an SSTable file. Safe for concurrent access without synchronization.
class Table {
 public:
  /// Opens the table stored in file[0..file_size). On success stores an
  /// owning pointer in *table; `file` must outlive it. On failure *table
  /// is nullptr.
  static Status Open(const Options& options, RandomAccessFile* file,
                     uint64_t file_size, Table** table);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ~Table();

  /// Returns a new iterator over the table contents.
  Iterator* NewIterator(const ReadOptions&) const;

  /// Approximate file offset where the data for `key` begins (or would
  /// begin); used for ApproximateSizes.
  uint64_t ApproximateOffsetOf(const Slice& key) const;

  /// Point lookup used by the DB: seeks to `k` and, if a matching entry
  /// may exist (consulting the filter block first), calls
  /// handle_result(arg, key, value) for the found entry.
  Status InternalGet(const ReadOptions&, const Slice& key, void* arg,
                     void (*handle_result)(void* arg, const Slice& k,
                                           const Slice& v));

 private:
  friend class TableCache;
  struct Rep;

  static Iterator* BlockReader(void*, const ReadOptions&, const Slice&);

  explicit Table(Rep* rep) : rep_(rep) {}

  void ReadMeta(const Footer& footer);
  void ReadFilter(const Slice& filter_handle_value);

  Rep* const rep_;
};

}  // namespace fcae

#endif  // FCAE_TABLE_TABLE_H_
