#include "table/block.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <vector>

#include "table/format.h"
#include "util/coding.h"
#include "util/comparator.h"

namespace fcae {

inline uint32_t Block::NumRestarts() const {
  assert(size_ >= sizeof(uint32_t));
  return DecodeFixed32(data_ + size_ - sizeof(uint32_t));
}

Block::Block(const BlockContents& contents)
    : data_(contents.data.data()),
      size_(contents.data.size()),
      owned_(contents.heap_allocated) {
  if (size_ < sizeof(uint32_t)) {
    size_ = 0;  // Error marker
  } else {
    size_t max_restarts_allowed = (size_ - sizeof(uint32_t)) / sizeof(uint32_t);
    if (NumRestarts() > max_restarts_allowed) {
      // The size is too small for NumRestarts().
      size_ = 0;
    } else {
      restart_offset_ =
          static_cast<uint32_t>(size_ - (1 + NumRestarts()) * sizeof(uint32_t));
    }
  }
}

Block::~Block() {
  if (owned_) {
    delete[] data_;
  }
}

namespace {

/// Decodes the entry header starting at "p" (pointing just past the
/// previous entry) into shared/non_shared/value_length. Returns a pointer
/// to the key delta, or nullptr on corruption.
const char* DecodeEntry(const char* p, const char* limit, uint32_t* shared,
                        uint32_t* non_shared, uint32_t* value_length) {
  if (limit - p < 3) return nullptr;
  *shared = static_cast<uint8_t>(p[0]);
  *non_shared = static_cast<uint8_t>(p[1]);
  *value_length = static_cast<uint8_t>(p[2]);
  if ((*shared | *non_shared | *value_length) < 128) {
    // Fast path: all three values are encoded in one byte each.
    p += 3;
  } else {
    if ((p = GetVarint32Ptr(p, limit, shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, non_shared)) == nullptr) return nullptr;
    if ((p = GetVarint32Ptr(p, limit, value_length)) == nullptr) {
      return nullptr;
    }
  }

  if (static_cast<uint32_t>(limit - p) < (*non_shared + *value_length)) {
    return nullptr;
  }
  return p;
}

}  // namespace

class Block::Iter : public Iterator {
 public:
  Iter(const Comparator* comparator, const char* data, uint32_t restarts,
       uint32_t num_restarts)
      : comparator_(comparator),
        data_(data),
        restarts_(restarts),
        num_restarts_(num_restarts),
        current_(restarts_),
        restart_index_(num_restarts_) {
    assert(num_restarts_ > 0);
  }

  bool Valid() const override { return current_ < restarts_; }
  Status status() const override { return status_; }
  Slice key() const override {
    assert(Valid());
    return key_;
  }
  Slice value() const override {
    assert(Valid());
    return value_;
  }

  void Next() override {
    assert(Valid());
    ParseNextKey();
  }

  void Prev() override {
    assert(Valid());

    // Scan backwards to a restart point before current_.
    const uint32_t original = current_;
    while (GetRestartPoint(restart_index_) >= original) {
      if (restart_index_ == 0) {
        // No more entries.
        current_ = restarts_;
        restart_index_ = num_restarts_;
        return;
      }
      restart_index_--;
    }

    SeekToRestartPoint(restart_index_);
    // Parse forwards until we hit the entry just before `original`.
    do {
    } while (ParseNextKey() && NextEntryOffset() < original);
  }

  void Seek(const Slice& target) override {
    // Binary search in restart array to find the last restart point
    // with a key < target.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      uint32_t region_offset = GetRestartPoint(mid);
      uint32_t shared, non_shared, value_length;
      const char* key_ptr =
          DecodeEntry(data_ + region_offset, data_ + restarts_, &shared,
                      &non_shared, &value_length);
      if (key_ptr == nullptr || (shared != 0)) {
        CorruptionError();
        return;
      }
      Slice mid_key(key_ptr, non_shared);
      if (comparator_->Compare(mid_key, target) < 0) {
        // Key at "mid" is smaller than "target".  Therefore all
        // keys before "mid" are uninteresting.
        left = mid;
      } else {
        // Key at "mid" is >= "target".  Therefore all keys at or
        // after "mid" are uninteresting.
        right = mid - 1;
      }
    }

    // Linear search (within restart block) for first key >= target.
    SeekToRestartPoint(left);
    while (true) {
      if (!ParseNextKey()) {
        return;
      }
      if (comparator_->Compare(key_, target) >= 0) {
        return;
      }
    }
  }

  void SeekToFirst() override {
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void SeekToLast() override {
    SeekToRestartPoint(num_restarts_ - 1);
    while (ParseNextKey() && NextEntryOffset() < restarts_) {
      // Keep skipping.
    }
  }

 private:
  /// Offset in data_ just past the end of the current entry.
  uint32_t NextEntryOffset() const {
    return static_cast<uint32_t>((value_.data() + value_.size()) - data_);
  }

  uint32_t GetRestartPoint(uint32_t index) const {
    assert(index < num_restarts_);
    return DecodeFixed32(data_ + restarts_ + index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    // current_ will be fixed by ParseNextKey(): it is set to the offset
    // of the entry that value_'s end points at.
    uint32_t offset = GetRestartPoint(index);
    value_ = Slice(data_ + offset, 0);
  }

  void CorruptionError() {
    current_ = restarts_;
    restart_index_ = num_restarts_;
    status_ = Status::Corruption("bad entry in block");
    key_.clear();
    value_.Clear();
  }

  bool ParseNextKey() {
    current_ = NextEntryOffset();
    const char* p = data_ + current_;
    const char* limit = data_ + restarts_;  // Restarts come right after data
    if (p >= limit) {
      // No more entries to return.  Mark as invalid.
      current_ = restarts_;
      restart_index_ = num_restarts_;
      return false;
    }

    // Decode next entry.
    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      CorruptionError();
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < num_restarts_ &&
           GetRestartPoint(restart_index_ + 1) < current_) {
      ++restart_index_;
    }
    return true;
  }

  const Comparator* const comparator_;
  const char* const data_;       // Underlying block contents.
  uint32_t const restarts_;      // Offset of restart array.
  uint32_t const num_restarts_;  // Number of entries in restart array.

  // current_ is offset in data_ of current entry; >= restarts_ if !Valid.
  uint32_t current_;
  uint32_t restart_index_;  // Index of restart block in which current falls.
  std::string key_;
  Slice value_;
  Status status_;
};

Iterator* Block::NewIterator(const Comparator* comparator) {
  if (size_ < sizeof(uint32_t)) {
    return NewErrorIterator(Status::Corruption("bad block contents"));
  }
  const uint32_t num_restarts = NumRestarts();
  if (num_restarts == 0) {
    return NewEmptyIterator();
  }
  return new Iter(comparator, data_, restart_offset_, num_restarts);
}

}  // namespace fcae
