#ifndef FCAE_TABLE_TABLE_BUILDER_H_
#define FCAE_TABLE_TABLE_BUILDER_H_

#include <cstdint>

#include "util/options.h"
#include "util/status.h"

namespace fcae {

class BlockBuilder;
class BlockHandle;
class WritableFile;

/// TableBuilder writes an SSTable to a file: a sequence of data blocks,
/// then (optionally) a filter block, a metaindex block, the index block
/// pointing at all data blocks, and a fixed footer — the format the
/// paper's Section II-B describes (data blocks + index block at the end).
class TableBuilder {
 public:
  /// Creates a builder storing a table in *file (not owned; caller must
  /// keep it alive and close it after Finish()).
  TableBuilder(const Options& options, WritableFile* file);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  /// Requires: Finish()/Abandon() not yet called.
  ~TableBuilder();

  /// Adds a key/value pair; keys must arrive in increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Flushes any buffered key/value pairs to file, starting a new data
  /// block. Mostly useful to round off data block boundaries.
  void Flush();

  /// Non-ok if some error has been detected.
  Status status() const;

  /// Finishes building the table (writes index + footer).
  Status Finish();

  /// Abandons the buffered contents (e.g. the caller decided to delete
  /// the file); required before destruction if Finish() was not called.
  void Abandon();

  /// Number of Add()ed entries so far.
  uint64_t NumEntries() const;

  /// File size so far; after Finish(), the final file size.
  uint64_t FileSize() const;

 private:
  bool ok() const { return status().ok(); }
  void WriteBlock(BlockBuilder* block, BlockHandle* handle);
  void WriteRawBlock(const Slice& data, CompressionType type,
                     BlockHandle* handle);

  struct Rep;
  Rep* rep_;
};

}  // namespace fcae

#endif  // FCAE_TABLE_TABLE_BUILDER_H_
