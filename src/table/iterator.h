#ifndef FCAE_TABLE_ITERATOR_H_
#define FCAE_TABLE_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace fcae {

/// An Iterator yields a sequence of key/value pairs from a source (block,
/// table, memtable, or whole database). Multiple implementations are
/// layered and merged. Not thread-safe.
class Iterator {
 public:
  Iterator();
  virtual ~Iterator();

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  /// True iff the iterator is positioned at a key/value pair.
  virtual bool Valid() const = 0;

  /// Positions at the first key in the source.
  virtual void SeekToFirst() = 0;

  /// Positions at the last key in the source.
  virtual void SeekToLast() = 0;

  /// Positions at the first key at or past `target`.
  virtual void Seek(const Slice& target) = 0;

  /// Moves to the next entry; requires Valid().
  virtual void Next() = 0;

  /// Moves to the previous entry; requires Valid().
  virtual void Prev() = 0;

  /// The key at the current entry; valid until the next mutation of the
  /// iterator. Requires Valid().
  virtual Slice key() const = 0;

  /// The value at the current entry. Requires Valid().
  virtual Slice value() const = 0;

  /// Non-ok if an error was hit; may be checked even when !Valid().
  virtual Status status() const = 0;

  /// Registers a cleanup function run at iterator destruction, used to
  /// tie resource lifetimes (blocks, table handles) to the iterator.
  using CleanupFunction = void (*)(void* arg1, void* arg2);
  void RegisterCleanup(CleanupFunction function, void* arg1, void* arg2);

 private:
  // Cleanup functions are stored in a singly-linked list headed by an
  // inlined node to make the common cases (0 or 1 function) cheap.
  struct CleanupNode {
    bool IsEmpty() const { return function == nullptr; }
    void Run() { (*function)(arg1, arg2); }

    CleanupFunction function;
    void* arg1;
    void* arg2;
    CleanupNode* next;
  };
  CleanupNode cleanup_head_;
};

/// Returns an empty iterator (Valid() is always false).
Iterator* NewEmptyIterator();

/// Returns an empty iterator whose status() is `status`.
Iterator* NewErrorIterator(const Status& status);

}  // namespace fcae

#endif  // FCAE_TABLE_ITERATOR_H_
