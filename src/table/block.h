#ifndef FCAE_TABLE_BLOCK_H_
#define FCAE_TABLE_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "table/iterator.h"

namespace fcae {

struct BlockContents;
class Comparator;

/// An immutable, iterable SSTable block (see BlockBuilder for the
/// layout). Owns its backing storage when the contents were heap
/// allocated.
class Block {
 public:
  /// Initializes the block with the specified contents.
  explicit Block(const BlockContents& contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  ~Block();

  size_t size() const { return size_; }

  /// Returns a new iterator over the block using `comparator` for Seek().
  Iterator* NewIterator(const Comparator* comparator);

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_;  // Offset in data_ of restart array.
  bool owned_;               // Block owns data_[].
};

}  // namespace fcae

#endif  // FCAE_TABLE_BLOCK_H_
