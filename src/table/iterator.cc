#include "table/iterator.h"

namespace fcae {

Iterator::Iterator() {
  cleanup_head_.function = nullptr;
  cleanup_head_.next = nullptr;
}

Iterator::~Iterator() {
  if (!cleanup_head_.IsEmpty()) {
    cleanup_head_.Run();
    for (CleanupNode* node = cleanup_head_.next; node != nullptr;) {
      node->Run();
      CleanupNode* next_node = node->next;
      delete node;
      node = next_node;
    }
  }
}

void Iterator::RegisterCleanup(CleanupFunction func, void* arg1, void* arg2) {
  CleanupNode* node;
  if (cleanup_head_.IsEmpty()) {
    node = &cleanup_head_;
  } else {
    node = new CleanupNode();
    node->next = cleanup_head_.next;
    cleanup_head_.next = node;
  }
  node->function = func;
  node->arg1 = arg1;
  node->arg2 = arg2;
}

namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(const Status& s) : status_(s) {}
  ~EmptyIterator() override = default;

  bool Valid() const override { return false; }
  void Seek(const Slice& target) override {}
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Next() override { assert(false); }
  void Prev() override { assert(false); }
  Slice key() const override {
    assert(false);
    return Slice();
  }
  Slice value() const override {
    assert(false);
    return Slice();
  }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator() { return new EmptyIterator(Status::OK()); }

Iterator* NewErrorIterator(const Status& status) {
  return new EmptyIterator(status);
}

}  // namespace fcae
