#include "table/merger.h"

#include "obs/perf_context.h"
#include "table/iterator.h"
#include "util/comparator.h"

namespace fcae {

namespace {

class MergingIterator : public Iterator {
 public:
  MergingIterator(const Comparator* comparator, Iterator** children, int n)
      : comparator_(comparator),
        children_(new IteratorWrapper[n]),
        n_(n),
        current_(nullptr),
        direction_(kForward) {
    for (int i = 0; i < n; i++) {
      children_[i].Set(children[i]);
    }
  }

  ~MergingIterator() override { delete[] children_; }

  bool Valid() const override { return (current_ != nullptr); }

  void SeekToFirst() override {
    FCAE_PERF_COUNT(merge_iterator_seeks, 1);
    for (int i = 0; i < n_; i++) {
      children_[i].SeekToFirst();
    }
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    FCAE_PERF_COUNT(merge_iterator_seeks, 1);
    for (int i = 0; i < n_; i++) {
      children_[i].SeekToLast();
    }
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    FCAE_PERF_COUNT(merge_iterator_seeks, 1);
    for (int i = 0; i < n_; i++) {
      children_[i].Seek(target);
    }
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());

    // Ensure that all children are positioned after key(). If we are
    // moving in the forward direction, this is already true. Otherwise,
    // explicitly position the non-current children.
    if (direction_ != kForward) {
      for (int i = 0; i < n_; i++) {
        IteratorWrapper* child = &children_[i];
        if (child != current_) {
          child->Seek(key());
          if (child->Valid() &&
              comparator_->Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }

    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());

    // Mirror-image of Next(): position all children before key().
    if (direction_ != kReverse) {
      for (int i = 0; i < n_; i++) {
        IteratorWrapper* child = &children_[i];
        if (child != current_) {
          child->Seek(key());
          if (child->Valid()) {
            // Child is at first entry >= key(); step back one.
            child->Prev();
          } else {
            // Child has no entries >= key(); position at last entry.
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }

    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    Status status;
    for (int i = 0; i < n_; i++) {
      status = children_[i].status();
      if (!status.ok()) {
        break;
      }
    }
    return status;
  }

 private:
  /// Small owning wrapper caching Valid()/key() to avoid repeated virtual
  /// calls in the merge loops.
  class IteratorWrapper {
   public:
    IteratorWrapper() : iter_(nullptr), valid_(false) {}
    ~IteratorWrapper() { delete iter_; }

    void Set(Iterator* iter) {
      delete iter_;
      iter_ = iter;
      Update();
    }

    bool Valid() const { return valid_; }
    Slice key() const {
      assert(valid_);
      return key_;
    }
    Slice value() const { return iter_->value(); }
    Status status() const { return iter_->status(); }

    void Next() {
      iter_->Next();
      Update();
    }
    void Prev() {
      iter_->Prev();
      Update();
    }
    void Seek(const Slice& k) {
      iter_->Seek(k);
      Update();
    }
    void SeekToFirst() {
      iter_->SeekToFirst();
      Update();
    }
    void SeekToLast() {
      iter_->SeekToLast();
      Update();
    }

   private:
    void Update() {
      valid_ = iter_->Valid();
      if (valid_) {
        key_ = iter_->key();
      }
    }

    Iterator* iter_;
    bool valid_;
    Slice key_;
  };

  enum Direction { kForward, kReverse };

  void FindSmallest() {
    IteratorWrapper* smallest = nullptr;
    for (int i = 0; i < n_; i++) {
      IteratorWrapper* child = &children_[i];
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child;
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    IteratorWrapper* largest = nullptr;
    for (int i = n_ - 1; i >= 0; i--) {
      IteratorWrapper* child = &children_[i];
      if (child->Valid()) {
        if (largest == nullptr ||
            comparator_->Compare(child->key(), largest->key()) > 0) {
          largest = child;
        }
      }
    }
    current_ = largest;
  }

  const Comparator* comparator_;
  IteratorWrapper* children_;
  int n_;
  IteratorWrapper* current_;
  Direction direction_;
};

}  // namespace

Iterator* NewMergingIterator(const Comparator* comparator, Iterator** children,
                             int n) {
  assert(n >= 0);
  if (n == 0) {
    return NewEmptyIterator();
  } else if (n == 1) {
    return children[0];
  } else {
    return new MergingIterator(comparator, children, n);
  }
}

}  // namespace fcae
