#include "table/table_verifier.h"

#include <memory>
#include <vector>

#include "table/block.h"
#include "table/format.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "util/comparator.h"
#include "util/file_checksum.h"

namespace fcae {

Status VerifyTable(Env* env, const Options& options, const std::string& fname,
                   const TableVerifySpec& spec, TableVerifyReport* report) {
  TableVerifyReport local_report;
  TableVerifyReport* rep = (report != nullptr) ? report : &local_report;
  *rep = TableVerifyReport();

  // Stage 1: the cheapest possible check — does the file still have the
  // size the manifest promised?
  uint64_t actual_size = 0;
  Status s = env->GetFileSize(fname, &actual_size);
  if (!s.ok()) {
    return s;
  }
  if (spec.file_size != 0 && actual_size != spec.file_size) {
    return Status::Corruption(fname, "file size does not match manifest");
  }

  // Stage 2: whole-file crc32c against the install-time checksum. This
  // catches any flipped byte anywhere, including regions the structural
  // pass cannot cover (block trailers, footer padding).
  if (spec.has_file_checksum) {
    uint32_t crc = 0;
    s = ComputeFileChecksum(env, fname, spec.rate_limiter, &crc, &rep->bytes);
    if (!s.ok()) {
      return s;
    }
    if (crc != spec.file_checksum) {
      return Status::Corruption(fname,
                                "whole-file checksum does not match manifest");
    }
  }

  // Stage 3: structural scan — footer, index, per-block trailer CRCs,
  // strict key order, and bounds-vs-manifest invariants.
  RandomAccessFile* raw_file = nullptr;
  s = env->NewRandomAccessFile(fname, &raw_file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<RandomAccessFile> file(raw_file);
  Table* raw_table = nullptr;
  s = Table::Open(options, file.get(), actual_size, &raw_table);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<Table> table(raw_table);

  const Comparator* cmp =
      (spec.comparator != nullptr) ? spec.comparator : options.comparator;
  ReadOptions read_options;
  read_options.verify_checksums = true;
  read_options.fill_cache = false;
  std::unique_ptr<Iterator> iter(table->NewIterator(read_options));
  std::string prev_key;
  bool has_prev = false;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    const Slice key = iter->key();
    if (cmp != nullptr) {
      if (has_prev && cmp->Compare(Slice(prev_key), key) >= 0) {
        return Status::Corruption(fname, "keys out of order");
      }
      if (!has_prev && !spec.smallest.empty() &&
          cmp->Compare(key, Slice(spec.smallest)) < 0) {
        return Status::Corruption(fname, "key below manifest smallest bound");
      }
      if (!spec.largest.empty() &&
          cmp->Compare(key, Slice(spec.largest)) > 0) {
        return Status::Corruption(fname, "key above manifest largest bound");
      }
    }
    prev_key.assign(key.data(), key.size());
    has_prev = true;
    rep->entries++;
  }
  return iter->status();
}

Status SalvageTable(Env* env, const Options& options,
                    const std::string& src_fname, uint64_t src_file_size,
                    const std::string& dst_fname, SalvageResult* result) {
  *result = SalvageResult();
  const Comparator* cmp = options.comparator;

  RandomAccessFile* raw_file = nullptr;
  Status s = env->NewRandomAccessFile(src_fname, &raw_file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<RandomAccessFile> file(raw_file);

  if (src_file_size == 0) {
    s = env->GetFileSize(src_fname, &src_file_size);
    if (!s.ok()) {
      return s;
    }
  }
  if (src_file_size < Footer::kEncodedLength) {
    return Status::Corruption(src_fname, "file too short to be a table");
  }

  // Footer and index must be readable: they are the map to everything
  // else. When they are the damaged part there is nothing to salvage —
  // the caller drops the file and relies on surviving copies.
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  s = file->Read(src_file_size - Footer::kEncodedLength,
                 Footer::kEncodedLength, &footer_input, footer_space);
  if (!s.ok()) {
    return s;
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) {
    return s;
  }

  ReadOptions read_options;
  read_options.verify_checksums = true;
  BlockContents index_contents;
  s = ReadBlock(file.get(), read_options, footer.index_handle(),
                &index_contents);
  if (!s.ok()) {
    return s;
  }
  Block index_block(index_contents);

  WritableFile* raw_out = nullptr;
  s = env->NewWritableFile(dst_fname, &raw_out);
  if (!s.ok()) {
    return s;
  }
  ChecksumWritableFile* out = new ChecksumWritableFile(raw_out);
  std::unique_ptr<WritableFile> out_guard(out);
  TableBuilder builder(options, out);

  std::string last_added;
  bool has_last_added = false;
  std::unique_ptr<Iterator> index_iter(index_block.NewIterator(cmp));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    BlockHandle handle;
    Slice handle_value = index_iter->value();
    if (!handle.DecodeFrom(&handle_value).ok()) {
      result->dropped_blocks++;
      continue;
    }
    BlockContents contents;
    if (!ReadBlock(file.get(), read_options, handle, &contents).ok()) {
      // Trailer CRC (or the read itself) failed: this block is the rot.
      result->dropped_blocks++;
      continue;
    }
    Block block(contents);
    // Admit the block only if *all* of it is clean and in order — a
    // half-copied block could smuggle garbage past the per-block CRC
    // (e.g. a corrupt restart array that parses but misorders keys).
    std::vector<std::pair<std::string, std::string>> entries;
    std::unique_ptr<Iterator> block_iter(block.NewIterator(cmp));
    bool block_ok = true;
    std::string prev = last_added;
    bool has_prev = has_last_added;
    for (block_iter->SeekToFirst(); block_iter->Valid(); block_iter->Next()) {
      const Slice key = block_iter->key();
      if (has_prev && cmp->Compare(Slice(prev), key) >= 0) {
        block_ok = false;
        break;
      }
      prev.assign(key.data(), key.size());
      has_prev = true;
      entries.emplace_back(key.ToString(), block_iter->value().ToString());
    }
    if (!block_ok || !block_iter->status().ok() || entries.empty()) {
      result->dropped_blocks++;
      continue;
    }
    for (const auto& kv : entries) {
      builder.Add(Slice(kv.first), Slice(kv.second));
      if (result->entries == 0) {
        result->smallest = kv.first;
      }
      result->entries++;
    }
    last_added = prev;
    has_last_added = true;
  }
  if (!index_iter->status().ok()) {
    builder.Abandon();
    return index_iter->status();
  }

  if (result->entries == 0) {
    // Nothing rescued: leave no output behind.
    builder.Abandon();
    out_guard.reset();
    env->RemoveFile(dst_fname).IgnoreError();
    result->empty = true;
    return Status::OK();
  }

  result->largest = last_added;
  s = builder.Finish();
  if (s.ok()) {
    result->file_size = builder.FileSize();
    result->file_checksum = out->checksum();
    s = out->Sync();
  }
  if (s.ok()) {
    s = out->Close();
  }
  if (!s.ok()) {
    env->RemoveFile(dst_fname).IgnoreError();
    return s;
  }
  result->empty = false;
  return Status::OK();
}

}  // namespace fcae
