#ifndef FCAE_TABLE_TABLE_VERIFIER_H_
#define FCAE_TABLE_TABLE_VERIFIER_H_

#include <cstdint>
#include <string>

#include "util/env.h"
#include "util/options.h"
#include "util/rate_limiter.h"
#include "util/status.h"

namespace fcae {

/// What the scrubber expects a live table to look like, straight from
/// the manifest. All fields beyond `file_size` are optional; unset
/// fields simply skip their check.
struct TableVerifySpec {
  /// Manifest-recorded size; a mismatch is corruption before any byte
  /// of content is examined.
  uint64_t file_size = 0;
  /// Manifest-recorded whole-file crc32c (absent for files installed
  /// before checksums were recorded).
  bool has_file_checksum = false;
  uint32_t file_checksum = 0;
  /// Full-key comparator for the order check; in the DB this is the
  /// InternalKeyComparator. Null skips order and bounds checks.
  const Comparator* comparator = nullptr;
  /// Manifest-recorded bounds (encoded internal keys). Empty = skip.
  std::string smallest;
  std::string largest;
  /// When non-null, the whole-file checksum pass charges its reads to
  /// the low-priority lane so scrubbing yields to real work.
  RateLimiter* rate_limiter = nullptr;
};

/// Accounting for one verification pass; valid even when the returned
/// status is corruption (it then describes how far the pass got).
struct TableVerifyReport {
  uint64_t bytes = 0;    // Bytes covered by the whole-file checksum pass.
  uint64_t entries = 0;  // Entries visited by the structural pass.
};

/// Verifies one on-disk table against its manifest spec, in escalating
/// depth (DESIGN.md §14): (1) file size, (2) whole-file crc32c vs the
/// recorded install-time checksum, (3) a full structural scan — footer,
/// index, every block's trailer CRC, strict key ordering, and
/// first/last key within the manifest bounds. Returns OK when all
/// applicable checks pass and Corruption (with a stage-identifying
/// message) on the first failure; other status codes mean the file
/// could not be examined (e.g. IO error), not that it is damaged.
[[nodiscard]] Status VerifyTable(Env* env, const Options& options,
                                 const std::string& fname,
                                 const TableVerifySpec& spec,
                                 TableVerifyReport* report);

/// What SalvageTable managed to rescue.
struct SalvageResult {
  uint64_t entries = 0;        // Entries written to the salvage table.
  uint64_t dropped_blocks = 0; // Data blocks skipped as unreadable.
  uint64_t file_size = 0;
  uint32_t file_checksum = 0;  // Whole-file crc32c of the salvage table.
  std::string smallest;        // Encoded first/last key of the output
  std::string largest;         // (empty when nothing was salvaged).
  bool empty = true;           // No entries survived; no file written.
};

/// Rescues what is still readable from a corrupt table: walks the index
/// block, re-reads every data block with its trailer CRC enforced, and
/// copies entries from clean, correctly-ordered blocks into a fresh
/// table at `dst_fname` (skipping damaged ones). The salvage output's
/// key range is a subset of the source's, so it can legally be
/// re-installed at the same level. Returns non-OK only when nothing can
/// be rescued at all (unreadable footer/index) or writing the output
/// fails; when it returns OK with result->empty, no output file exists
/// and the caller should simply drop the source from the version.
[[nodiscard]] Status SalvageTable(Env* env, const Options& options,
                                  const std::string& src_fname,
                                  uint64_t src_file_size,
                                  const std::string& dst_fname,
                                  SalvageResult* result);

}  // namespace fcae

#endif  // FCAE_TABLE_TABLE_VERIFIER_H_
