#include "table/two_level_iterator.h"

#include <memory>

namespace fcae {

namespace {

using BlockFunction = Iterator* (*)(void*, const ReadOptions&, const Slice&);

class TwoLevelIterator : public Iterator {
 public:
  TwoLevelIterator(Iterator* index_iter, BlockFunction block_function,
                   void* arg, const ReadOptions& options)
      : block_function_(block_function),
        arg_(arg),
        options_(options),
        index_iter_(index_iter),
        data_iter_(nullptr) {}

  ~TwoLevelIterator() override = default;

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyDataBlocksBackward();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  void Prev() override {
    assert(Valid());
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  Slice key() const override {
    assert(Valid());
    return data_iter_->key();
  }

  Slice value() const override {
    assert(Valid());
    return data_iter_->value();
  }

  Status status() const override {
    // Surface index errors first, then data errors, then deferred status.
    if (!index_iter_->status().ok()) {
      return index_iter_->status();
    }
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void SaveError(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      // Move to next block.
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      // Move to previous block.
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  void SetDataIterator(Iterator* data_iter) {
    if (data_iter_ != nullptr) {
      SaveError(data_iter_->status());
    }
    data_iter_.reset(data_iter);
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      SetDataIterator(nullptr);
    } else {
      Slice handle = index_iter_->value();
      if (data_iter_ != nullptr &&
          handle.Compare(Slice(data_block_handle_)) == 0) {
        // data_iter_ is already constructed with this iterator, so
        // no need to change anything.
      } else {
        Iterator* iter = (*block_function_)(arg_, options_, handle);
        data_block_handle_.assign(handle.data(), handle.size());
        SetDataIterator(iter);
      }
    }
  }

  BlockFunction block_function_;
  void* arg_;
  const ReadOptions options_;
  Status status_;
  std::unique_ptr<Iterator> index_iter_;
  std::unique_ptr<Iterator> data_iter_;  // May be nullptr.
  // If data_iter_ is non-null, then data_block_handle_ holds the
  // index value passed to block_function_ to create data_iter_.
  std::string data_block_handle_;
};

}  // namespace

Iterator* NewTwoLevelIterator(Iterator* index_iter,
                              BlockFunction block_function, void* arg,
                              const ReadOptions& options) {
  return new TwoLevelIterator(index_iter, block_function, arg, options);
}

}  // namespace fcae
