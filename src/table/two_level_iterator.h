#ifndef FCAE_TABLE_TWO_LEVEL_ITERATOR_H_
#define FCAE_TABLE_TWO_LEVEL_ITERATOR_H_

#include "table/iterator.h"
#include "util/options.h"

namespace fcae {

/// Returns an iterator over the concatenation of the sequences pointed at
/// by an index iterator: for each index entry, block_function(arg,
/// options, index_value) is called to open an iterator over the
/// corresponding sub-sequence (e.g. a data block). Takes ownership of
/// `index_iter`.
Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    Iterator* (*block_function)(void* arg, const ReadOptions& options,
                                const Slice& index_value),
    void* arg, const ReadOptions& options);

}  // namespace fcae

#endif  // FCAE_TABLE_TWO_LEVEL_ITERATOR_H_
