#ifndef FCAE_COMPRESS_SNAPPY_H_
#define FCAE_COMPRESS_SNAPPY_H_

#include <cstddef>
#include <string>

#include "util/slice.h"

namespace fcae {
namespace snappy {

// A from-scratch implementation of the Snappy block format (varint32
// uncompressed-length header followed by a literal/copy tag stream). The
// paper's SSTable blocks and the FPGA engine's Decoder/Encoder both use
// Snappy; this codec stands in for the Google library with the same
// speed/ratio character (byte-oriented LZ77, no entropy coding).

/// Compresses input[0, n) into *output (overwritten). Always succeeds;
/// incompressible data grows by at most n/6 + 32 bytes.
void Compress(const char* input, size_t n, std::string* output);

/// Sets *result to the uncompressed length recorded in a compressed
/// stream. Returns false if the header is malformed.
bool GetUncompressedLength(const char* input, size_t n, size_t* result);

/// Decompresses input[0, n) into `output`, which must have space for
/// GetUncompressedLength() bytes. Returns false on corrupt input.
bool Uncompress(const char* input, size_t n, char* output);

/// Convenience overload decompressing into a string.
bool Uncompress(const char* input, size_t n, std::string* output);

/// Returns an upper bound on the compressed size of n input bytes.
size_t MaxCompressedLength(size_t n);

}  // namespace snappy
}  // namespace fcae

#endif  // FCAE_COMPRESS_SNAPPY_H_
