#include "compress/snappy.h"

#include <cstdint>
#include <cstring>

#include "util/coding.h"

namespace fcae {
namespace snappy {

namespace {

// Tag byte low 2 bits select the element type.
constexpr int kLiteral = 0;
constexpr int kCopy1ByteOffset = 1;  // 4..11 byte copies, 11-bit offset.
constexpr int kCopy2ByteOffset = 2;  // 1..64 byte copies, 16-bit offset.
constexpr int kCopy4ByteOffset = 3;  // 1..64 byte copies, 32-bit offset.

constexpr size_t kHashTableBits = 14;
constexpr size_t kHashTableSize = 1 << kHashTableBits;
constexpr size_t kInputMarginBytes = 15;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t HashBytes(uint32_t bytes) {
  return (bytes * 0x1e35a7bdu) >> (32 - kHashTableBits);
}

/// Emits a literal element covering [literal, literal + len).
char* EmitLiteral(char* op, const char* literal, size_t len) {
  size_t n = len - 1;  // Zero-length literals are disallowed.
  if (n < 60) {
    *op++ = static_cast<char>(kLiteral | (n << 2));
  } else {
    // Encode length as 1..4 trailing bytes.
    char* base = op;
    op++;
    int count = 0;
    while (n > 0) {
      *op++ = static_cast<char>(n & 0xff);
      n >>= 8;
      count++;
    }
    *base = static_cast<char>(kLiteral | ((59 + count) << 2));
  }
  std::memcpy(op, literal, len);
  return op + len;
}

/// Emits a copy of `len` (4..64) bytes from `offset` back.
char* EmitCopyUpTo64(char* op, size_t offset, size_t len) {
  if (len < 12 && offset < 2048) {
    *op++ = static_cast<char>(kCopy1ByteOffset | ((len - 4) << 2) |
                              ((offset >> 8) << 5));
    *op++ = static_cast<char>(offset & 0xff);
  } else {
    *op++ = static_cast<char>(kCopy2ByteOffset | ((len - 1) << 2));
    *op++ = static_cast<char>(offset & 0xff);
    *op++ = static_cast<char>((offset >> 8) & 0xff);
  }
  return op;
}

char* EmitCopy(char* op, size_t offset, size_t len) {
  // Long matches are split into <=64 byte chunks.
  while (len >= 68) {
    op = EmitCopyUpTo64(op, offset, 64);
    len -= 64;
  }
  if (len > 64) {
    op = EmitCopyUpTo64(op, offset, 60);
    len -= 60;
  }
  op = EmitCopyUpTo64(op, offset, len);
  return op;
}

size_t MatchLength(const char* s1, const char* s2, const char* s2_limit) {
  size_t matched = 0;
  while (s2 + matched < s2_limit && s1[matched] == s2[matched]) {
    matched++;
  }
  return matched;
}

}  // namespace

size_t MaxCompressedLength(size_t n) { return 32 + n + n / 6; }

void Compress(const char* input, size_t n, std::string* output) {
  output->clear();
  output->resize(MaxCompressedLength(n));
  char* dst = output->data();
  char* op = EncodeVarint32(dst, static_cast<uint32_t>(n));

  if (n < kInputMarginBytes) {
    if (n > 0) {
      op = EmitLiteral(op, input, n);
    }
    output->resize(op - dst);
    return;
  }

  uint16_t table[kHashTableSize];
  std::memset(table, 0, sizeof(table));

  const char* ip = input;
  const char* ip_end = input + n;
  // Matches are only started while at least kInputMarginBytes remain, so
  // 4-byte loads below never run past the buffer.
  const char* ip_limit = input + n - kInputMarginBytes;
  const char* next_emit = input;  // Start of pending literal bytes.

  // The 16-bit table stores offsets from `base`; rebase for large inputs.
  const char* base = input;

  ip++;
  while (ip < ip_limit) {
    // Find a 4-byte match via the hash table.
    uint32_t hash = HashBytes(Load32(ip));
    const char* candidate = base + table[hash];
    table[hash] = static_cast<uint16_t>(ip - base);

    if (candidate < ip && Load32(candidate) == Load32(ip) &&
        static_cast<size_t>(ip - candidate) <= 65535) {
      // Emit pending literal, then the copy.
      if (ip > next_emit) {
        op = EmitLiteral(op, next_emit, ip - next_emit);
      }
      size_t matched = 4 + MatchLength(candidate + 4, ip + 4, ip_end);
      op = EmitCopy(op, ip - candidate, matched);
      ip += matched;
      next_emit = ip;
      if (ip >= ip_limit) {
        break;
      }
      // Re-seed the table at the new position.
      table[HashBytes(Load32(ip))] = static_cast<uint16_t>(ip - base);
      ip++;
    } else {
      ip++;
    }
    if (static_cast<size_t>(ip - base) >= 60000) {
      // Rebase so 16-bit table entries keep working; stale entries will
      // simply fail the Load32 equality check.
      base = ip - 1;
      std::memset(table, 0, sizeof(table));
    }
  }

  if (next_emit < ip_end) {
    op = EmitLiteral(op, next_emit, ip_end - next_emit);
  }
  output->resize(op - dst);
}

bool GetUncompressedLength(const char* input, size_t n, size_t* result) {
  uint32_t len;
  const char* p = GetVarint32Ptr(input, input + n, &len);
  if (p == nullptr) {
    return false;
  }
  *result = len;
  return true;
}

bool Uncompress(const char* input, size_t n, char* output) {
  uint32_t expected_len;
  const char* ip = GetVarint32Ptr(input, input + n, &expected_len);
  if (ip == nullptr) {
    return false;
  }
  const char* ip_end = input + n;
  char* op = output;
  char* op_end = output + expected_len;

  while (ip < ip_end) {
    const uint8_t tag = static_cast<uint8_t>(*ip++);
    switch (tag & 0x3) {
      case kLiteral: {
        size_t len = (tag >> 2) + 1;
        if (len > 60) {
          // Length is stored in the next (len - 60) bytes.
          size_t extra = len - 60;
          if (ip + extra > ip_end) return false;
          len = 0;
          for (size_t i = 0; i < extra; i++) {
            len |= static_cast<size_t>(static_cast<uint8_t>(ip[i])) << (8 * i);
          }
          len += 1;
          ip += extra;
        }
        if (ip + len > ip_end || op + len > op_end) return false;
        std::memcpy(op, ip, len);
        ip += len;
        op += len;
        break;
      }
      case kCopy1ByteOffset: {
        size_t len = ((tag >> 2) & 0x7) + 4;
        if (ip >= ip_end) return false;
        size_t offset = ((tag >> 5) << 8) | static_cast<uint8_t>(*ip++);
        if (offset == 0 || offset > static_cast<size_t>(op - output) ||
            op + len > op_end) {
          return false;
        }
        // Byte-by-byte copy: ranges may overlap (run-length encoding).
        const char* src = op - offset;
        for (size_t i = 0; i < len; i++) {
          op[i] = src[i];
        }
        op += len;
        break;
      }
      case kCopy2ByteOffset: {
        size_t len = (tag >> 2) + 1;
        if (ip + 2 > ip_end) return false;
        size_t offset = static_cast<uint8_t>(ip[0]) |
                        (static_cast<size_t>(static_cast<uint8_t>(ip[1])) << 8);
        ip += 2;
        if (offset == 0 || offset > static_cast<size_t>(op - output) ||
            op + len > op_end) {
          return false;
        }
        const char* src = op - offset;
        for (size_t i = 0; i < len; i++) {
          op[i] = src[i];
        }
        op += len;
        break;
      }
      case kCopy4ByteOffset: {
        size_t len = (tag >> 2) + 1;
        if (ip + 4 > ip_end) return false;
        size_t offset = static_cast<uint32_t>(DecodeFixed32(ip));
        ip += 4;
        if (offset == 0 || offset > static_cast<size_t>(op - output) ||
            op + len > op_end) {
          return false;
        }
        const char* src = op - offset;
        for (size_t i = 0; i < len; i++) {
          op[i] = src[i];
        }
        op += len;
        break;
      }
    }
  }
  return op == op_end;
}

bool Uncompress(const char* input, size_t n, std::string* output) {
  size_t ulen;
  if (!GetUncompressedLength(input, n, &ulen)) {
    return false;
  }
  output->resize(ulen);
  return Uncompress(input, n, output->data());
}

}  // namespace snappy
}  // namespace fcae
