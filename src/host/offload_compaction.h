#ifndef FCAE_HOST_OFFLOAD_COMPACTION_H_
#define FCAE_HOST_OFFLOAD_COMPACTION_H_

#include <cstdint>
#include <memory>

#include "host/device_health_monitor.h"
#include "host/fcae_device.h"
#include "lsm/compaction_executor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {
namespace host {

/// The FPGA offload path of the compaction thread (paper Fig. 6): stage
/// input SSTables into device memory images, DMA them to the card, run
/// the engine, fetch the outputs, and reassemble standard SSTable files
/// on disk. Plugged into the DB via Options::compaction_executor.
///
/// CanExecute() enforces the device's N-input limit, so the DB falls
/// back to software compaction exactly when the paper's scheduler does
/// ("when the input number is not larger than nine, the compaction
/// tasks would be pushed down to FPGA, otherwise it is handled by
/// CPU") — unless tournament scheduling is enabled below. It also
/// consults the DeviceHealthMonitor circuit breaker: a quarantined
/// device refuses jobs (except periodic probes), so everything flows to
/// the CPU executor until the card recovers.

/// Scheduler policy knobs for the offload executor.
struct FcaeExecutorOptions {
  /// false (default): the paper's strict Fig. 6 policy — a compaction
  /// needing more than N engine inputs runs completely in software.
  /// true: decompose such jobs into a tournament of N-input kernel
  /// passes whose intermediates stay in device DRAM (see
  /// FcaeDevice::ExecuteTournament and DESIGN.md item 6).
  bool tournament_scheduling = false;

  /// Kernel attempts per job (>= 1). Transient faults (device-busy,
  /// kernel timeout, corruption caught by verification) are retried up
  /// to this many total attempts with exponential backoff; sticky
  /// faults (card dropped) abort immediately.
  int max_attempts = 3;

  /// Backoff before retry attempt k (1-based) is
  /// `backoff_base_micros << (k - 1)`. 0 disables the sleep.
  uint64_t backoff_base_micros = 100;

  /// Wall-clock budget for one job's device attempts; once exceeded no
  /// further retry is started (0 = unlimited). The CPU fallback in
  /// DBImpl picks the job up afterwards.
  uint64_t job_deadline_micros = 0;

  /// Verify every device output (CRC, strict key order, bounds) before
  /// any SSTable is assembled; see host/output_verifier.h. Costs one
  /// decode pass over the output. On by default — a silently corrupt
  /// device result must never reach the manifest.
  bool verify_outputs = true;

  /// Circuit breaker consulted by CanExecute and fed by Execute.
  /// Borrowed; may be null (no breaker, e.g. micro-benches).
  DeviceHealthMonitor* health_monitor = nullptr;
};

class FcaeCompactionExecutor : public CompactionExecutor {
 public:
  /// `device` is borrowed and may be shared by several DB instances.
  explicit FcaeCompactionExecutor(FcaeDevice* device,
                                  FcaeExecutorOptions options = {});

  const char* Name() const override { return "fcae"; }

  bool CanExecute(const CompactionJob& job) const override;

  Status Execute(const CompactionJob& job,
                 std::vector<CompactionOutput>* outputs,
                 CompactionExecStats* stats) override;

  std::string HealthString() const override;

  /// Lifetime robustness counters (all jobs through this executor).
  struct RobustnessCounters {
    uint64_t jobs = 0;
    uint64_t jobs_failed = 0;
    uint64_t attempts = 0;
    uint64_t retries = 0;
    uint64_t faults = 0;
    uint64_t verify_failures = 0;
    uint64_t backoff_micros = 0;
  };
  RobustnessCounters robustness_counters() const EXCLUDES(mutex_);

  DeviceHealthMonitor* health_monitor() const {
    return options_.health_monitor;
  }

 private:
  FcaeDevice* device_;
  FcaeExecutorOptions options_;

  // mutex_ guards only the counters; jobs themselves are serialized by
  // the single compaction thread, while counter readers (GetProperty,
  // tests) may arrive from any thread. Leaf lock: nothing else is
  // acquired while it is held.
  mutable Mutex mutex_;
  RobustnessCounters counters_ GUARDED_BY(mutex_);
};

/// Returns the number of engine inputs a compaction needs: one per
/// level-0 file (their key ranges overlap) plus one per participating
/// sorted level (paper Section IV step 2).
int EngineInputsNeeded(const CompactionJob& job);

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_OFFLOAD_COMPACTION_H_
