#ifndef FCAE_HOST_OFFLOAD_COMPACTION_H_
#define FCAE_HOST_OFFLOAD_COMPACTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "host/device_health_monitor.h"
#include "host/device_set.h"
#include "host/fcae_device.h"
#include "lsm/compaction_executor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {
namespace host {

/// The FPGA offload path of the compaction thread (paper Fig. 6): stage
/// input SSTables into device memory images, DMA them to the card, run
/// the engine, fetch the outputs, and reassemble standard SSTable files
/// on disk. Plugged into the DB via Options::compaction_executor.
///
/// CanExecute() enforces the device's N-input limit, so the DB falls
/// back to software compaction exactly when the paper's scheduler does
/// ("when the input number is not larger than nine, the compaction
/// tasks would be pushed down to FPGA, otherwise it is handled by
/// CPU") — unless tournament scheduling is enabled below. It also
/// consults the DeviceHealthMonitor circuit breaker: a quarantined
/// device refuses jobs (except periodic probes), so everything flows to
/// the CPU executor until the card recovers.
///
/// The executor is thread-safe: the DB's parallel compaction scheduler
/// may have several jobs inside Execute() at once. Kernel attempts are
/// admitted to the card through a FIFO ticket queue, so in-flight jobs
/// share the device fairly instead of serializing further up the stack.

/// Scheduler policy knobs for the offload executor.
struct FcaeExecutorOptions {
  /// false (default): the paper's strict Fig. 6 policy — a compaction
  /// needing more than N engine inputs runs completely in software.
  /// true: decompose such jobs into a tournament of N-input kernel
  /// passes whose intermediates stay in device DRAM (see
  /// FcaeDevice::ExecuteTournament and DESIGN.md item 6).
  bool tournament_scheduling = false;

  /// Kernel attempts per job (>= 1). Transient faults (device-busy,
  /// kernel timeout, corruption caught by verification) are retried up
  /// to this many total attempts with exponential backoff; sticky
  /// faults (card dropped) abort immediately.
  int max_attempts = 3;

  /// Backoff before retry attempt k (1-based) is
  /// `backoff_base_micros << (k - 1)`. 0 disables the sleep.
  uint64_t backoff_base_micros = 100;

  /// Wall-clock budget for one job's device attempts; once exceeded no
  /// further retry is started (0 = unlimited). The CPU fallback in
  /// DBImpl picks the job up afterwards.
  uint64_t job_deadline_micros = 0;

  /// Verify every device output (CRC, strict key order, bounds) before
  /// any SSTable is assembled; see host/output_verifier.h. Costs one
  /// decode pass over the output. On by default — a silently corrupt
  /// device result must never reach the manifest.
  bool verify_outputs = true;

  /// Circuit breaker consulted by CanExecute and fed by Execute.
  /// Borrowed; may be null (no breaker, e.g. micro-benches).
  DeviceHealthMonitor* health_monitor = nullptr;
};

class FcaeCompactionExecutor : public CompactionExecutor {
 public:
  /// `device` is borrowed and may be shared by several DB instances.
  explicit FcaeCompactionExecutor(FcaeDevice* device,
                                  FcaeExecutorOptions options = {});

  /// Multi-card mode: jobs are spread over the set's cards by the
  /// least-queued-bytes placement policy (DeviceSet::PickCard), each
  /// card has its own FIFO ticket lane, and health is tracked by the
  /// set's per-card monitors — `options.health_monitor` is ignored.
  /// CanExecute() checks input feasibility only; quarantine is decided
  /// at placement time, so a job is refused (Status::Busy -> CPU
  /// fallback in DBImpl) only when every card's breaker denies it.
  explicit FcaeCompactionExecutor(DeviceSet* devices,
                                  FcaeExecutorOptions options = {});

  const char* Name() const override { return "fcae"; }

  bool CanExecute(const CompactionJob& job) const override;

  Status Execute(const CompactionJob& job,
                 std::vector<CompactionOutput>* outputs,
                 CompactionExecStats* stats) override;

  std::string HealthString() const override;

  /// Lifetime robustness counters (all jobs through this executor).
  struct RobustnessCounters {
    uint64_t jobs = 0;
    uint64_t jobs_failed = 0;
    uint64_t attempts = 0;
    uint64_t retries = 0;
    uint64_t faults = 0;
    uint64_t verify_failures = 0;
    uint64_t backoff_micros = 0;
  };
  RobustnessCounters robustness_counters() const EXCLUDES(mutex_);

  DeviceHealthMonitor* health_monitor() const {
    return options_.health_monitor;
  }

 private:
  /// Per-card device admission queue: one kernel runs at a time on each
  /// card; concurrent jobs line up here instead of serializing anywhere
  /// up the stack. Leaf lock, held only for ticket arithmetic — the
  /// device call itself runs outside it, guarded by the ticket order.
  struct CardLane {
    Mutex mutex;
    CondVar cv{&mutex};
    uint64_t next_ticket GUARDED_BY(mutex) = 0;
    uint64_t serving GUARDED_BY(mutex) = 0;
  };

  /// Blocks until it is this attempt's turn on card `card` (FIFO by
  /// arrival). Tickets are acquired per kernel attempt, never held
  /// across a backoff sleep, so with several compaction workers in
  /// flight a retrying job cannot hog the device and waiters make
  /// progress in arrival order.
  void AcquireDeviceTicket(int card, obs::MetricsRegistry* metrics);
  void ReleaseDeviceTicket(int card, obs::MetricsRegistry* metrics);

  FcaeDevice* device_;    // Card 0 of devices_ in multi-card mode.
  DeviceSet* devices_ = nullptr;  // Null in single-device mode.
  FcaeExecutorOptions options_;

  // mutex_ guards only the counters. Multiple compaction workers may be
  // inside Execute() concurrently (the DB's parallel scheduler), and
  // counter readers (GetProperty, tests) arrive from any thread. Leaf
  // lock: nothing else is acquired while it is held.
  mutable Mutex mutex_;
  RobustnessCounters counters_ GUARDED_BY(mutex_);
  // Per-card breaker-open totals last pushed to offload.card<N>.
  // quarantines, so the counter advances by the delta each job.
  std::vector<uint64_t> published_quarantines_ GUARDED_BY(mutex_);

  std::vector<std::unique_ptr<CardLane>> lanes_;  // 1 entry per card.
};

/// Returns the number of engine inputs a compaction needs: one per
/// level-0 file (their key ranges overlap) plus one per participating
/// sorted level (paper Section IV step 2).
int EngineInputsNeeded(const CompactionJob& job);

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_OFFLOAD_COMPACTION_H_
