#ifndef FCAE_HOST_OFFLOAD_COMPACTION_H_
#define FCAE_HOST_OFFLOAD_COMPACTION_H_

#include <memory>

#include "host/fcae_device.h"
#include "lsm/compaction_executor.h"

namespace fcae {
namespace host {

/// The FPGA offload path of the compaction thread (paper Fig. 6): stage
/// input SSTables into device memory images, DMA them to the card, run
/// the engine, fetch the outputs, and reassemble standard SSTable files
/// on disk. Plugged into the DB via Options::compaction_executor.
///
/// CanExecute() enforces the device's N-input limit, so the DB falls
/// back to software compaction exactly when the paper's scheduler does
/// ("when the input number is not larger than nine, the compaction
/// tasks would be pushed down to FPGA, otherwise it is handled by
/// CPU") — unless tournament scheduling is enabled below.

/// Scheduler policy knobs for the offload executor.
struct FcaeExecutorOptions {
  /// false (default): the paper's strict Fig. 6 policy — a compaction
  /// needing more than N engine inputs runs completely in software.
  /// true: decompose such jobs into a tournament of N-input kernel
  /// passes whose intermediates stay in device DRAM (see
  /// FcaeDevice::ExecuteTournament and DESIGN.md item 6).
  bool tournament_scheduling = false;
};

class FcaeCompactionExecutor : public CompactionExecutor {
 public:
  /// `device` is borrowed and may be shared by several DB instances.
  explicit FcaeCompactionExecutor(FcaeDevice* device,
                                  FcaeExecutorOptions options = {});

  const char* Name() const override { return "fcae"; }

  bool CanExecute(const CompactionJob& job) const override;

  Status Execute(const CompactionJob& job,
                 std::vector<CompactionOutput>* outputs,
                 CompactionExecStats* stats) override;

 private:
  FcaeDevice* device_;
  FcaeExecutorOptions options_;
};

/// Returns the number of engine inputs a compaction needs: one per
/// level-0 file (their key ranges overlap) plus one per participating
/// sorted level (paper Section IV step 2).
int EngineInputsNeeded(const CompactionJob& job);

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_OFFLOAD_COMPACTION_H_
