#include "host/device_health_monitor.h"

#include <algorithm>
#include <cstdio>

namespace fcae {
namespace host {

DeviceHealthMonitor::DeviceHealthMonitor(DeviceHealthOptions options)
    : options_(options) {}

bool DeviceHealthMonitor::Admit() {
  MutexLock lock(&mutex_);
  if (!quarantined_) return true;
  denials_since_probe_++;
  if (denials_since_probe_ >= options_.probe_interval) {
    denials_since_probe_ = 0;
    probes_++;
    return true;  // Probe job: outcome decides re-admission.
  }
  jobs_denied_++;
  return false;
}

void DeviceHealthMonitor::RecordJobSuccess() {
  MutexLock lock(&mutex_);
  jobs_succeeded_++;
  consecutive_failures_ = 0;
  if (quarantined_) {
    quarantined_ = false;
    denials_since_probe_ = 0;
    readmissions_++;
  }
}

void DeviceHealthMonitor::RecordJobFailure(bool sticky) {
  MutexLock lock(&mutex_);
  jobs_failed_++;
  if (sticky) {
    sticky_failures_++;
    consecutive_failures_ += std::max(1, options_.sticky_weight);
  } else {
    consecutive_failures_++;
  }
  if (!quarantined_ &&
      consecutive_failures_ >= options_.quarantine_threshold) {
    quarantined_ = true;
    denials_since_probe_ = 0;
    quarantines_++;
  }
}

bool DeviceHealthMonitor::quarantined() const {
  MutexLock lock(&mutex_);
  return quarantined_;
}

DeviceHealthMonitor::Snapshot DeviceHealthMonitor::snapshot() const {
  MutexLock lock(&mutex_);
  Snapshot snap;
  snap.quarantined = quarantined_;
  snap.consecutive_failures = consecutive_failures_;
  snap.jobs_succeeded = jobs_succeeded_;
  snap.jobs_failed = jobs_failed_;
  snap.sticky_failures = sticky_failures_;
  snap.quarantines = quarantines_;
  snap.probes = probes_;
  snap.readmissions = readmissions_;
  snap.jobs_denied = jobs_denied_;
  return snap;
}

std::string DeviceHealthMonitor::ToString() const {
  Snapshot snap = snapshot();
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "quarantined=%d consecutive-failures=%d jobs{ok=%llu failed=%llu "
      "sticky=%llu denied=%llu} breaker{opened=%llu probes=%llu "
      "readmitted=%llu}",
      snap.quarantined ? 1 : 0, snap.consecutive_failures,
      (unsigned long long)snap.jobs_succeeded,
      (unsigned long long)snap.jobs_failed,
      (unsigned long long)snap.sticky_failures,
      (unsigned long long)snap.jobs_denied,
      (unsigned long long)snap.quarantines, (unsigned long long)snap.probes,
      (unsigned long long)snap.readmissions);
  return std::string(buf);
}

}  // namespace host
}  // namespace fcae
