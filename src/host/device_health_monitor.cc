#include "host/device_health_monitor.h"

#include <algorithm>
#include <cstdio>

#include "obs/event_listener.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fcae {
namespace host {

DeviceHealthMonitor::DeviceHealthMonitor(DeviceHealthOptions options,
                                         int card_id)
    : options_(options), card_id_(card_id) {}

std::string DeviceHealthMonitor::GaugeName(const char* field) const {
  char buf[64];
  if (card_id_ < 0) {
    std::snprintf(buf, sizeof(buf), "health.%s", field);
  } else {
    std::snprintf(buf, sizeof(buf), "health.card%d.%s", card_id_, field);
  }
  return std::string(buf);
}

void DeviceHealthMonitor::AttachObservability(obs::MetricsRegistry* metrics,
                                              obs::TraceRecorder* trace) {
  MutexLock lock(&mutex_);
  metrics_ = metrics;
  trace_ = trace;
  PublishLocked();
}

void DeviceHealthMonitor::AttachNotifier(const obs::EventNotifier* notifier) {
  MutexLock lock(&mutex_);
  notifier_ = notifier;
}

void DeviceHealthMonitor::PublishLocked() {
  if (metrics_ == nullptr) return;
  // Gauges mirror the snapshot so one fcae.metrics read shows breaker
  // state without a second property. The registry lock is a leaf below
  // mutex_. A card-bound monitor publishes per-card names so the M
  // breakers of a DeviceSet never alias in the registry.
  //
  // fcae-check: declare-metric(gauge): health.quarantined, health.consecutive_failures, health.jobs_succeeded
  // fcae-check: declare-metric(gauge): health.jobs_failed, health.sticky_failures, health.quarantines
  // fcae-check: declare-metric(gauge): health.probes, health.readmissions, health.jobs_denied
  // fcae-check: declare-metric(gauge): health.card*.quarantined, health.card*.consecutive_failures
  // fcae-check: declare-metric(gauge): health.card*.jobs_succeeded, health.card*.jobs_failed
  // fcae-check: declare-metric(gauge): health.card*.sticky_failures, health.card*.quarantines
  // fcae-check: declare-metric(gauge): health.card*.probes, health.card*.readmissions, health.card*.jobs_denied
  metrics_->gauge(GaugeName("quarantined"))->Set(quarantined_ ? 1 : 0);
  metrics_->gauge(GaugeName("consecutive_failures"))
      ->Set(consecutive_failures_);
  metrics_->gauge(GaugeName("jobs_succeeded"))
      ->Set(static_cast<int64_t>(jobs_succeeded_));
  metrics_->gauge(GaugeName("jobs_failed"))
      ->Set(static_cast<int64_t>(jobs_failed_));
  metrics_->gauge(GaugeName("sticky_failures"))
      ->Set(static_cast<int64_t>(sticky_failures_));
  metrics_->gauge(GaugeName("quarantines"))
      ->Set(static_cast<int64_t>(quarantines_));
  metrics_->gauge(GaugeName("probes"))->Set(static_cast<int64_t>(probes_));
  metrics_->gauge(GaugeName("readmissions"))
      ->Set(static_cast<int64_t>(readmissions_));
  metrics_->gauge(GaugeName("jobs_denied"))
      ->Set(static_cast<int64_t>(jobs_denied_));
}

bool DeviceHealthMonitor::Admit() {
  MutexLock lock(&mutex_);
  if (!quarantined_) return true;
  denials_since_probe_++;
  if (denials_since_probe_ >= options_.probe_interval) {
    denials_since_probe_ = 0;
    probes_++;
    PublishLocked();
    return true;  // Probe job: outcome decides re-admission.
  }
  jobs_denied_++;
  PublishLocked();
  return false;
}

void DeviceHealthMonitor::RecordJobSuccess() {
  obs::TraceRecorder* trace = nullptr;
  const obs::EventNotifier* notifier = nullptr;
  {
    MutexLock lock(&mutex_);
    jobs_succeeded_++;
    consecutive_failures_ = 0;
    if (quarantined_) {
      quarantined_ = false;
      denials_since_probe_ = 0;
      readmissions_++;
      trace = trace_;  // Breaker closed: worth a trace instant.
      notifier = notifier_;
    }
    PublishLocked();
  }
  // Instants and listener callbacks run outside mutex_ so a slow sink
  // never extends the breaker's critical section.
  if (trace != nullptr) {
    if (card_id_ >= 0) {
      trace->RecordInstant("device_readmitted", "health",
                           obs::TraceNowMicros(), 0,
                           {{"card", std::to_string(card_id_)}});
    } else {
      trace->RecordInstant("device_readmitted", "health",
                           obs::TraceNowMicros(), 0);
    }
  }
  if (notifier != nullptr && notifier->active()) {
    obs::DeviceHealthChangeInfo info;
    info.card_id = card_id_;
    info.quarantined = false;
    info.consecutive_failures = 0;
    notifier->NotifyDeviceHealthChange(info);
  }
}

void DeviceHealthMonitor::RecordJobFailure(bool sticky) {
  obs::TraceRecorder* trace = nullptr;
  const obs::EventNotifier* notifier = nullptr;
  int failures = 0;
  {
    MutexLock lock(&mutex_);
    jobs_failed_++;
    if (sticky) {
      sticky_failures_++;
      consecutive_failures_ += std::max(1, options_.sticky_weight);
    } else {
      consecutive_failures_++;
    }
    if (!quarantined_ &&
        consecutive_failures_ >= options_.quarantine_threshold) {
      quarantined_ = true;
      denials_since_probe_ = 0;
      quarantines_++;
      trace = trace_;  // Breaker opened.
      notifier = notifier_;
      failures = consecutive_failures_;
    }
    PublishLocked();
  }
  if (trace != nullptr) {
    if (card_id_ >= 0) {
      trace->RecordInstant("device_quarantined", "health",
                           obs::TraceNowMicros(), 0,
                           {{"sticky", sticky ? "true" : "false"},
                            {"card", std::to_string(card_id_)}});
    } else {
      trace->RecordInstant("device_quarantined", "health",
                           obs::TraceNowMicros(), 0,
                           {{"sticky", sticky ? "true" : "false"}});
    }
  }
  if (notifier != nullptr && notifier->active()) {
    obs::DeviceHealthChangeInfo info;
    info.card_id = card_id_;
    info.quarantined = true;
    info.consecutive_failures = failures;
    notifier->NotifyDeviceHealthChange(info);
  }
}

bool DeviceHealthMonitor::quarantined() const {
  MutexLock lock(&mutex_);
  return quarantined_;
}

DeviceHealthMonitor::Snapshot DeviceHealthMonitor::snapshot() const {
  MutexLock lock(&mutex_);
  Snapshot snap;
  snap.quarantined = quarantined_;
  snap.consecutive_failures = consecutive_failures_;
  snap.jobs_succeeded = jobs_succeeded_;
  snap.jobs_failed = jobs_failed_;
  snap.sticky_failures = sticky_failures_;
  snap.quarantines = quarantines_;
  snap.probes = probes_;
  snap.readmissions = readmissions_;
  snap.jobs_denied = jobs_denied_;
  return snap;
}

std::string DeviceHealthMonitor::ToString() const {
  Snapshot snap = snapshot();
  std::string prefix;
  if (card_id_ >= 0) {
    char cbuf[24];
    std::snprintf(cbuf, sizeof(cbuf), "card%d ", card_id_);
    prefix = cbuf;
  }
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "quarantined=%d consecutive-failures=%d jobs{ok=%llu failed=%llu "
      "sticky=%llu denied=%llu} breaker{opened=%llu probes=%llu "
      "readmitted=%llu}",
      snap.quarantined ? 1 : 0, snap.consecutive_failures,
      (unsigned long long)snap.jobs_succeeded,
      (unsigned long long)snap.jobs_failed,
      (unsigned long long)snap.sticky_failures,
      (unsigned long long)snap.jobs_denied,
      (unsigned long long)snap.quarantines, (unsigned long long)snap.probes,
      (unsigned long long)snap.readmissions);
  return prefix + std::string(buf);
}

}  // namespace host
}  // namespace fcae
