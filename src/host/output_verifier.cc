#include "host/output_verifier.h"

#include <vector>

#include "fpga/block_parse.h"
#include "table/format.h"

namespace fcae {
namespace host {

Status VerifyDeviceOutputTable(const fpga::DeviceOutputTable& table,
                               const InternalKeyComparator& icmp,
                               OutputVerifyStats* stats) {
  if (table.index_entries.empty()) {
    return Status::Corruption("device output table has no index entries");
  }
  if (table.smallest_key.empty() || table.largest_key.empty()) {
    return Status::Corruption("device output table has empty bounds");
  }
  if (icmp.Compare(table.smallest_key, table.largest_key) > 0) {
    return Status::Corruption("device output bounds are inverted");
  }

  uint64_t expected_offset = 0;
  uint64_t entries_seen = 0;
  std::string prev_key;
  for (const fpga::OutputIndexEntry& e : table.index_entries) {
    // Bounds: the handle must address a complete stored block (payload +
    // 5-byte trailer) inside the returned data memory, and blocks must
    // tile it in order without overlap.
    if (e.offset != expected_offset) {
      return Status::Corruption("device output blocks overlap or leave gaps");
    }
    const uint64_t stored_size = e.size + kBlockTrailerSize;
    if (e.offset + stored_size > table.data_memory.size()) {
      return Status::Corruption("device index entry out of data bounds");
    }
    expected_offset = e.offset + stored_size;

    // CRC + decompression of the stored block.
    std::string contents;
    Status s = fpga::DecodeStoredBlock(
        Slice(table.data_memory.data() + e.offset, stored_size),
        /*verify_checksum=*/true, &contents);
    if (!s.ok()) return s;

    std::vector<fpga::ParsedEntry> entries;
    s = fpga::ParseBlockEntries(contents, &entries);
    if (!s.ok()) return s;
    if (entries.empty()) {
      return Status::Corruption("device output block has no entries");
    }

    // Strict internal-key ordering across blocks; keys inside MetaOut's
    // claimed [smallest, largest] range.
    for (const fpga::ParsedEntry& entry : entries) {
      if (!prev_key.empty() && icmp.Compare(prev_key, entry.key) >= 0) {
        return Status::Corruption("device output keys out of order");
      }
      prev_key = entry.key;
      entries_seen++;
    }
    if (icmp.Compare(entries.back().key, e.last_key) != 0) {
      return Status::Corruption("index separator disagrees with block");
    }
    stats->blocks++;
  }

  if (expected_offset != table.data_memory.size()) {
    return Status::Corruption("device output data has trailing garbage");
  }
  if (entries_seen != table.num_entries) {
    return Status::Corruption("device output entry count mismatch");
  }
  // First/last keys must equal the MetaOut bounds the host installs in
  // the version edit.
  const fpga::OutputIndexEntry& last = table.index_entries.back();
  if (icmp.Compare(last.last_key, table.largest_key) != 0) {
    return Status::Corruption("device output largest key mismatch");
  }
  // prev_key now holds the table's last key; re-derive the first from
  // the first block to compare against smallest.
  {
    std::string contents;
    const fpga::OutputIndexEntry& first = table.index_entries.front();
    Status s = fpga::DecodeStoredBlock(
        Slice(table.data_memory.data() + first.offset,
              first.size + kBlockTrailerSize),
        /*verify_checksum=*/false, &contents);
    if (!s.ok()) return s;
    std::vector<fpga::ParsedEntry> entries;
    s = fpga::ParseBlockEntries(contents, &entries);
    if (!s.ok()) return s;
    if (entries.empty() ||
        icmp.Compare(entries.front().key, table.smallest_key) != 0) {
      return Status::Corruption("device output smallest key mismatch");
    }
  }
  stats->tables++;
  stats->entries += entries_seen;
  return Status::OK();
}

Status VerifyDeviceOutput(const fpga::DeviceOutput& output,
                          const InternalKeyComparator& icmp,
                          OutputVerifyStats* stats) {
  std::string prev_largest;
  for (const fpga::DeviceOutputTable& table : output.tables) {
    Status s = VerifyDeviceOutputTable(table, icmp, stats);
    if (!s.ok()) return s;
    // Tables of one compaction form one sorted run.
    if (!prev_largest.empty() &&
        icmp.Compare(prev_largest, table.smallest_key) >= 0) {
      return Status::Corruption("device output tables overlap");
    }
    prev_largest = table.largest_key;
  }
  return Status::OK();
}

}  // namespace host
}  // namespace fcae
