#include "host/offload_compaction.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "host/output_verifier.h"
#include "host/sstable_stager.h"
#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "lsm/table_cache.h"
#include "obs/event_listener.h"
#include "obs/metrics.h"
#include "obs/perf_context.h"
#include "obs/trace.h"
#include "table/iterator.h"
#include "util/crash_env.h"
#include "util/env.h"

namespace fcae {
namespace host {

namespace {

/// Transient faults are worth another kernel attempt; anything else
/// (sticky card drop, staging/argument errors) is not.
bool IsRetryableFault(const Status& s) {
  return s.IsBusy() || s.IsIOError() || s.IsCorruption();
}

/// Per-card instrument name, e.g. "offload.card2.busy_micros". Built
/// with a format string so only the declared glob shapes below reach
/// the registry.
///
/// fcae-check: declare-metric(gauge): offload.card*.queued_bytes
/// fcae-check: declare-metric(counter): offload.card*.busy_micros, offload.card*.quarantines
std::string CardMetricName(int card, const char* field) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "offload.card%d.%s", card, field);
  return std::string(buf);
}

/// Publishes one successful kernel run's pipeline telemetry: per-module
/// busy/stall/backpressure counters, FIFO peaks, DMA volume, and the
/// derived bottleneck attribution (as a gauge in percent so one
/// snapshot names the limiting module).
void RecordDeviceMetrics(obs::MetricsRegistry* metrics,
                         const DeviceRunStats& run_stats, int num_lanes) {
  if (metrics == nullptr) return;
  const fpga::EngineStats& e = run_stats.engine;
  metrics->counter("fpga.kernel.launches")->Increment();
  metrics->counter("fpga.kernel.cycles")->Increment(run_stats.kernel_cycles);
  metrics->counter("fpga.kernel.micros")
      ->Increment(static_cast<uint64_t>(run_stats.kernel_micros));
  metrics->counter("fpga.dma.micros")
      ->Increment(static_cast<uint64_t>(run_stats.pcie_micros));
  metrics->counter("fpga.dma.input_bytes")->Increment(run_stats.input_bytes);
  metrics->counter("fpga.dma.output_bytes")
      ->Increment(run_stats.output_bytes);
  metrics->counter("fpga.dma.retransfers")
      ->Increment(run_stats.dma_retransfers);
  metrics->counter("fpga.faults.injected")
      ->Increment(run_stats.faults_injected);

  metrics->counter("fpga.decoder.busy_cycles")->Increment(e.decoder_busy);
  metrics->counter("fpga.decoder.fetch_stalls")
      ->Increment(e.decoder_fetch_stalls);
  metrics->counter("fpga.decoder.backpressure")
      ->Increment(e.decoder_backpressure);
  metrics->counter("fpga.comparer.busy_cycles")->Increment(e.comparer_busy);
  metrics->counter("fpga.comparer.waits")->Increment(e.comparer_waits);
  metrics->counter("fpga.transfer.busy_cycles")->Increment(e.transfer_busy);
  metrics->counter("fpga.encoder.busy_cycles")->Increment(e.encoder_busy);
  metrics->counter("fpga.encoder.write_stalls")
      ->Increment(e.encoder_write_stalls);
  metrics->counter("fpga.records.in")->Increment(e.records_in);
  metrics->counter("fpga.records.out")->Increment(e.records_out);
  metrics->counter("fpga.records.dropped")->Increment(e.records_dropped);
  metrics->counter("fpga.records.bounds_dropped")
      ->Increment(e.records_bounds_dropped);

  // Double-buffered DMA pipeline telemetry (host/fcae_device.h): how
  // much modeled transfer time hid behind compute, how long the bursts
  // waited on the shared multi-card bus, and how many jobs ran
  // back-to-back (i.e. actually pipelined).
  metrics->counter("fpga.pipeline.overlap_micros")
      ->Increment(static_cast<uint64_t>(run_stats.dma_overlap_micros));
  metrics->counter("fpga.pipeline.bus_wait_micros")
      ->Increment(static_cast<uint64_t>(run_stats.bus_wait_micros));
  if (run_stats.dma_overlap_micros > 0) {
    metrics->counter("fpga.pipeline.jobs")->Increment();
  }

  auto peak = [&](const char* name, uint64_t value) {
    obs::Gauge* gauge = metrics->gauge(name);
    if (static_cast<int64_t>(value) > gauge->value()) {
      gauge->Set(static_cast<int64_t>(value));
    }
  };
  peak("fpga.fifo.key_stream_peak", e.fifo_key_stream_peak);
  peak("fpga.fifo.transfer_peak", e.fifo_transfer_peak);
  peak("fpga.fifo.selection_peak", e.fifo_selection_peak);
  peak("fpga.fifo.output_peak", e.fifo_output_peak);
  peak("fpga.fifo.write_queue_peak", e.fifo_write_queue_peak);

  const fpga::BottleneckReport report =
      fpga::AttributeBottleneck(e, num_lanes);
  metrics->gauge("fpga.bottleneck.decoder_share_pct")
      ->Set(static_cast<int64_t>(report.decoder_share * 100));
  metrics->gauge("fpga.bottleneck.comparer_share_pct")
      ->Set(static_cast<int64_t>(report.comparer_share * 100));
  metrics->gauge("fpga.bottleneck.transfer_share_pct")
      ->Set(static_cast<int64_t>(report.transfer_share * 100));
  metrics->gauge("fpga.bottleneck.encoder_share_pct")
      ->Set(static_cast<int64_t>(report.encoder_share * 100));
}

/// Emits the modeled pipeline sub-spans of one device run: DMA and the
/// per-module busy time, laid out sequentially from `start_micros`.
/// Modeled durations (simulated cycles at the engine clock), not wall
/// time — the pipeline stages actually overlap — so they are tagged
/// "modeled": true and readers must not treat them as wall spans.
void RecordDeviceSpans(obs::TraceRecorder* trace, uint64_t tid,
                       uint64_t start_micros,
                       const DeviceRunStats& run_stats) {
  if (trace == nullptr) return;
  const fpga::EngineStats& e = run_stats.engine;
  const double mpc =  // Micros per cycle at the configured clock.
      run_stats.kernel_cycles > 0
          ? run_stats.kernel_micros / run_stats.kernel_cycles
          : 0;
  uint64_t ts = start_micros;
  auto emit = [&](const char* name, double dur_micros) {
    const uint64_t dur = static_cast<uint64_t>(dur_micros);
    trace->RecordSpan(name, "fpga", ts, dur, tid, {{"modeled", "true"}});
    ts += dur;
  };
  const double total_bytes =
      static_cast<double>(run_stats.input_bytes + run_stats.output_bytes);
  const double in_frac =
      total_bytes > 0 ? run_stats.input_bytes / total_bytes : 0.5;
  emit("dma_in", run_stats.pcie_micros * in_frac);
  emit("decode", e.decoder_busy * mpc);
  emit("merge", e.comparer_busy * mpc);
  emit("encode", e.encoder_busy * mpc);
  emit("dma_out", run_stats.pcie_micros * (1.0 - in_frac));
}

}  // namespace

FcaeCompactionExecutor::FcaeCompactionExecutor(FcaeDevice* device,
                                               FcaeExecutorOptions options)
    : device_(device), options_(options) {
  lanes_.push_back(std::make_unique<CardLane>());
}

FcaeCompactionExecutor::FcaeCompactionExecutor(DeviceSet* devices,
                                               FcaeExecutorOptions options)
    : device_(devices->device(0)), devices_(devices), options_(options) {
  // The set's per-card monitors own health in multi-card mode; a
  // caller-supplied global breaker would alias all cards again.
  options_.health_monitor = nullptr;
  for (int i = 0; i < devices->num_cards(); i++) {
    lanes_.push_back(std::make_unique<CardLane>());
  }
  published_quarantines_.assign(devices->num_cards(), 0);
}

int EngineInputsNeeded(const CompactionJob& job) {
  const Compaction* c = job.compaction;
  int inputs = 0;
  if (c->level() == 0) {
    // Level-0 tables may overlap: one engine input per table.
    inputs += c->num_input_files(0);
  } else if (c->num_input_files(0) > 0) {
    inputs += 1;  // A sorted run concatenates into one input.
  }
  if (c->num_input_files(1) > 0) {
    inputs += 1;
  }
  return inputs;
}

bool FcaeCompactionExecutor::CanExecute(const CompactionJob& job) const {
  const int needed = EngineInputsNeeded(job);
  if (needed < 1) return false;
  if (!(options_.tournament_scheduling || needed <= device_->max_inputs())) {
    return false;
  }
  if (devices_ != nullptr) {
    // Multi-card mode: admission is decided at placement time inside
    // Execute(), where a job is refused only when every card's breaker
    // denies it — a single quarantined card must not push work to the
    // CPU while its siblings are healthy.
    return true;
  }
  // Circuit breaker: a quarantined device refuses jobs, except for the
  // periodic probe the monitor lets through to test recovery.
  if (options_.health_monitor != nullptr &&
      !options_.health_monitor->Admit()) {
    return false;
  }
  return true;
}

Status FcaeCompactionExecutor::Execute(const CompactionJob& job,
                                       std::vector<CompactionOutput>* outputs,
                                       CompactionExecStats* stats) {
  Env* env = job.options->env;
  const uint64_t start_micros = env->NowMicros();
  const Compaction* c = job.compaction;

  // Route breaker transitions into the DB's metrics/trace and event
  // listeners. Idempotent; cheap relative to a compaction.
  if (options_.health_monitor != nullptr) {
    options_.health_monitor->AttachObservability(job.metrics, job.trace);
    options_.health_monitor->AttachNotifier(job.notifier);
  }

  // Multi-card placement: bind the job to the healthy card with the
  // fewest queued bytes before staging, so the queue estimate covers
  // the job's whole residency. The estimate is the on-disk size of the
  // inputs (known up front; actual staged bytes differ only by the
  // metaindex region).
  FcaeDevice* device = device_;
  DeviceHealthMonitor* health = options_.health_monitor;
  int card = 0;
  uint64_t queued_estimate = 0;
  if (devices_ != nullptr) {
    devices_->AttachObservability(job.metrics, job.trace);
    devices_->AttachNotifier(job.notifier);
    card = devices_->PickCard();
    if (card < 0) {
      // Every card's breaker denied the job: the caller (DBImpl) falls
      // back to the CPU path, exactly like a single quarantined device.
      return Status::Busy("all offload cards quarantined");
    }
    device = devices_->device(card);
    health = devices_->monitor(card);
    for (int which = 0; which < 2; which++) {
      for (int i = 0; i < c->num_input_files(which); i++) {
        queued_estimate += c->input(which, i)->file_size;
      }
    }
    devices_->AddQueued(card, queued_estimate);
    if (job.metrics != nullptr) {
      job.metrics->gauge(CardMetricName(card, "queued_bytes"))
          ->Set(static_cast<int64_t>(devices_->queued_bytes(card)));
    }
  }
  // Un-queue on every exit path, success or failure.
  struct PlacementGuard {
    DeviceSet* devices;
    int card;
    uint64_t bytes;
    obs::MetricsRegistry* metrics;
    ~PlacementGuard() {
      if (devices == nullptr) return;
      devices->SubQueued(card, bytes);
      if (metrics != nullptr) {
        metrics->gauge(CardMetricName(card, "queued_bytes"))
            ->Set(static_cast<int64_t>(devices->queued_bytes(card)));
      }
    }
  } placement_guard{devices_, card, queued_estimate, job.metrics};
  // Device trace spans land on a per-card tid so two cards' modeled
  // pipelines render as separate tracks.
  const uint64_t device_tid = job.trace_tid + static_cast<uint64_t>(card);

  // Sub-compaction shard bounds (if any): staging trims whole data
  // blocks outside (lower, upper] and the engine's Key-Value Transfer
  // filters the records boundary blocks leak in.
  fpga::KeyBounds key_bounds;
  key_bounds.has_lower = job.has_lower_bound;
  key_bounds.has_upper = job.has_upper_bound;
  key_bounds.lower = job.lower_bound;
  key_bounds.upper = job.upper_bound;
  const fpga::KeyBounds* bounds =
      key_bounds.active() ? &key_bounds : nullptr;

  // 1. Stage inputs (paper Section IV step 3: read SSTables from disk
  //    into continuous memory blocks in key order). Staging errors are
  //    host I/O problems, not device faults: no retry, no breaker hit.
  obs::SpanTimer input_build_span(job.trace, "input_build", "host",
                                  job.trace_tid);
  SstableStager stager(env);
  std::vector<std::unique_ptr<fpga::DeviceInput>> staged;
  Status s;
  if (c->level() == 0) {
    for (int i = 0; i < c->num_input_files(0); i++) {
      auto input = std::make_unique<fpga::DeviceInput>();
      s = stager.AddTable(TableFileName(job.dbname, c->input(0, i)->number),
                          input.get(), bounds);
      if (!s.ok()) return s;
      staged.push_back(std::move(input));
    }
  } else if (c->num_input_files(0) > 0) {
    auto input = std::make_unique<fpga::DeviceInput>();
    for (int i = 0; i < c->num_input_files(0); i++) {
      s = stager.AddTable(TableFileName(job.dbname, c->input(0, i)->number),
                          input.get(), bounds);
      if (!s.ok()) return s;
    }
    staged.push_back(std::move(input));
  }
  if (c->num_input_files(1) > 0) {
    auto input = std::make_unique<fpga::DeviceInput>();
    for (int i = 0; i < c->num_input_files(1); i++) {
      s = stager.AddTable(TableFileName(job.dbname, c->input(1, i)->number),
                          input.get(), bounds);
      if (!s.ok()) return s;
    }
    staged.push_back(std::move(input));
  }

  std::vector<const fpga::DeviceInput*> input_ptrs;
  for (const auto& input : staged) {
    // Bounded staging may leave an input with no tables at all (every
    // block of every file outside the shard); the engine has nothing to
    // decode there, so the input is dropped from the merge.
    if (bounds != nullptr && input->sstables.empty()) continue;
    input_ptrs.push_back(input.get());
  }
  input_build_span.AddArg("inputs", std::to_string(input_ptrs.size()));
  input_build_span.Finish();
  if (input_ptrs.empty()) {
    // The shard's key range holds no data: a legitimate empty result.
    stats->offloaded = true;
    stats->micros = env->NowMicros() - start_micros;
    MutexLock lock(&mutex_);
    counters_.jobs++;
    return Status::OK();
  }
  const bool tournament =
      static_cast<int>(input_ptrs.size()) > device_->max_inputs();

  // 2./3. DMA + kernel (steps 4-7 of the paper's workflow), with bounded
  //       retry. Transient faults (busy, timeout, corruption the host
  //       verifier catches) back off and retry; a sticky card drop or an
  //       exhausted deadline gives up so DBImpl can rerun on the CPU.
  const int max_attempts = std::max(1, options_.max_attempts);
  fpga::DeviceOutput device_output;
  DeviceRunStats run_stats;            // From the successful attempt.
  uint64_t attempts = 0;
  uint64_t faults = 0;
  uint64_t verify_failures = 0;
  uint64_t backoff_micros = 0;
  double verify_micros = 0;
  double wasted_kernel_micros = 0;     // Kernel+PCIe time of failed tries.
  double wasted_pcie_micros = 0;
  bool sticky = false;

  for (int attempt = 1; attempt <= max_attempts; attempt++) {
    if (attempt > 1) {
      if (options_.job_deadline_micros > 0 &&
          env->NowMicros() - start_micros >= options_.job_deadline_micros) {
        s = Status::IOError("device job deadline exhausted before retry");
        break;
      }
      if (options_.backoff_base_micros > 0) {
        const uint64_t wait = options_.backoff_base_micros
                              << (attempt - 2 > 62 ? 62 : attempt - 2);
        env->SleepForMicroseconds(static_cast<int>(
            std::min<uint64_t>(wait, 1000000)));
        backoff_micros += wait;
      }
      if (job.trace != nullptr) {
        job.trace->RecordInstant(
            "retry", "host", obs::TraceNowMicros(), job.trace_tid,
            {{"attempt", std::to_string(attempt)},
             {"cause", obs::TraceRecorder::Quote(s.ToString())}});
      }
      if (job.notifier != nullptr && job.notifier->active()) {
        obs::OffloadRetryInfo retry_info;
        retry_info.attempt = attempt - 1;  // The attempt that just failed.
        retry_info.reason = s.ToString();
        job.notifier->NotifyOffloadRetry(retry_info);
      }
    }

    attempts++;
    obs::SpanTimer attempt_span(job.trace, "device_attempt", "host",
                                job.trace_tid);
    attempt_span.AddArg("attempt", std::to_string(attempt));

    // Wait for the card: concurrent compaction workers queue FIFO per
    // attempt. The wait is surfaced so device contention is visible.
    const uint64_t queue_start_micros = env->NowMicros();
    AcquireDeviceTicket(card, job.metrics);
    const uint64_t queue_micros = env->NowMicros() - queue_start_micros;
    if (queue_micros > 0) {
      attempt_span.AddArg("queue_us", std::to_string(queue_micros));
    }
    if (job.metrics != nullptr) {
      job.metrics->counter("host.device.queue_wait_micros")
          ->Increment(queue_micros);
    }
    FCAE_PERF_TIME(offload_queue_wait_micros, queue_micros);
    FCAE_PERF_COUNT(offload_device_attempts, 1);

    const uint64_t run_start_micros = obs::TraceNowMicros();
    device_output = fpga::DeviceOutput();
    run_stats = DeviceRunStats();
    if (tournament) {
      s = device->ExecuteTournament(input_ptrs, job.smallest_snapshot,
                                    job.no_deeper_data, &device_output,
                                    &run_stats, bounds);
    } else {
      s = device->ExecuteCompaction(input_ptrs, job.smallest_snapshot,
                                    job.no_deeper_data, &device_output,
                                    &run_stats, bounds);
    }
    ReleaseDeviceTicket(card, job.metrics);
    FCAE_PERF_TIME(offload_device_micros,
                   obs::TraceNowMicros() - run_start_micros);
    if (devices_ != nullptr && job.metrics != nullptr) {
      // Modeled device occupancy, failed attempts included — a card
      // burning cycles on a doomed kernel is still busy.
      job.metrics->counter(CardMetricName(card, "busy_micros"))
          ->Increment(static_cast<uint64_t>(run_stats.kernel_micros +
                                            run_stats.pcie_micros));
    }

    if (s.ok() && options_.verify_outputs) {
      // Host-side verification: CRCs, strict key order, bounds. Runs
      // BEFORE any SSTable is assembled, so a silently corrupt device
      // result can never reach the manifest.
      obs::SpanTimer verify_span(job.trace, "verify", "host", job.trace_tid);
      const uint64_t verify_start = env->NowMicros();
      OutputVerifyStats verify_stats;
      Status vs = VerifyDeviceOutput(device_output, *job.icmp, &verify_stats);
      const uint64_t verify_delta = env->NowMicros() - verify_start;
      verify_micros += static_cast<double>(verify_delta);
      FCAE_PERF_TIME(offload_verify_micros, verify_delta);
      if (!vs.ok()) {
        verify_failures++;
        s = vs;  // Corruption: transient, retryable.
        verify_span.AddArg("rejected", "true");
        if (job.metrics != nullptr) {
          job.metrics->counter("host.verify.rejects")->Increment();
        }
      }
    }

    attempt_span.AddArg("ok", s.ok() ? "true" : "false");
    attempt_span.Finish();

    if (s.ok()) {
      RecordDeviceMetrics(job.metrics, run_stats,
                          static_cast<int>(input_ptrs.size()));
      RecordDeviceSpans(job.trace, device_tid, run_start_micros,
                        run_stats);
      break;
    }

    faults++;
    wasted_kernel_micros += run_stats.kernel_micros;
    wasted_pcie_micros += run_stats.pcie_micros;
    if (s.IsDeviceLost()) {
      sticky = true;
      break;
    }
    if (!IsRetryableFault(s)) break;
  }

  // Feed the circuit breaker with the job outcome (one report per job,
  // not per attempt: a job saved by a retry is a success). In
  // multi-card mode `health` is the placed card's own breaker.
  if (health != nullptr) {
    if (s.ok()) {
      health->RecordJobSuccess();
    } else {
      health->RecordJobFailure(sticky);
    }
  }
  if (devices_ != nullptr && job.metrics != nullptr && health != nullptr) {
    // Advance the per-card quarantine counter by however many times
    // this card's breaker has opened since we last published.
    const DeviceHealthMonitor::Snapshot snap = health->snapshot();
    uint64_t quarantine_delta = 0;
    {
      MutexLock lock(&mutex_);
      if (snap.quarantines > published_quarantines_[card]) {
        quarantine_delta = snap.quarantines - published_quarantines_[card];
        published_quarantines_[card] = snap.quarantines;
      }
    }
    if (quarantine_delta > 0) {
      job.metrics->counter(CardMetricName(card, "quarantines"))
          ->Increment(quarantine_delta);
    }
  }

  {
    MutexLock lock(&mutex_);
    counters_.jobs++;
    counters_.attempts += attempts;
    counters_.retries += attempts > 0 ? attempts - 1 : 0;
    counters_.faults += faults;
    counters_.verify_failures += verify_failures;
    counters_.backoff_micros += backoff_micros;
    if (!s.ok()) counters_.jobs_failed++;
  }

  stats->device_attempts = attempts;
  stats->device_retries = attempts > 0 ? attempts - 1 : 0;
  stats->device_faults = faults;
  stats->verify_failures = verify_failures;
  stats->verify_micros = verify_micros;

  if (job.metrics != nullptr) {
    job.metrics->counter("host.device.attempts")->Increment(attempts);
    job.metrics->counter("host.device.retries")
        ->Increment(attempts > 0 ? attempts - 1 : 0);
    job.metrics->counter("host.device.faults")->Increment(faults);
    job.metrics->counter("host.backoff_micros")->Increment(backoff_micros);
    if (!s.ok()) {
      job.metrics->counter("host.device.jobs_failed")->Increment();
    }
  }

  if (!s.ok()) return s;

  // 4. Write back the new SSTables (step 8) and register them.
  obs::SpanTimer assemble_span(job.trace, "assemble", "host", job.trace_tid);
  assemble_span.AddArg("tables", std::to_string(device_output.tables.size()));
  for (const fpga::DeviceOutputTable& table : device_output.tables) {
    CompactionOutput out;
    out.number = job.new_file_number();
    uint64_t file_size = 0;
    uint32_t file_checksum = 0;
    s = AssembleTableFile(env, TableFileName(job.dbname, out.number), table,
                          &file_size, job.options->filter_policy,
                          job.options->rate_limiter, &file_checksum);
    if (!s.ok()) return s;
    out.file_size = file_size;
    out.file_checksum = file_checksum;
    out.has_file_checksum = true;
    if (!out.smallest.DecodeFrom(table.smallest_key) ||
        !out.largest.DecodeFrom(table.largest_key)) {
      return Status::Corruption("device returned empty table bounds");
    }

    // Verify the assembled table is readable before publishing it.
    ReadOptions verify_options;
    verify_options.verify_checksums = job.options->paranoid_checks;
    verify_options.fill_cache = false;
    Iterator* it = job.table_cache->NewIterator(verify_options, out.number,
                                                out.file_size);
    s = it->status();
    delete it;
    if (!s.ok()) return s;

    outputs->push_back(std::move(out));
    stats->bytes_written += file_size;
  }
  // Assembled tables are on disk but not yet installed in any version; a
  // crash here must leave only orphans that reopen reclaims.
  FCAE_CRASH_POINT("offload:after_device_write");

  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      stats->bytes_read += c->input(which, i)->file_size;
    }
  }
  // Records the bounds filter discarded belong to other shards, not to
  // this job — exclude them so the stats match the CPU shard path,
  // whose bounded iterator never surfaces them at all.
  stats->entries_in = run_stats.engine.records_in -
                      run_stats.engine.records_bounds_dropped;
  stats->entries_dropped = run_stats.engine.records_dropped -
                           run_stats.engine.records_bounds_dropped;
  stats->offloaded = true;
  stats->device_cycles = run_stats.kernel_cycles;
  stats->device_micros = run_stats.kernel_micros + wasted_kernel_micros;
  stats->pcie_micros = run_stats.pcie_micros + wasted_pcie_micros;
  stats->micros = env->NowMicros() - start_micros;
  return Status::OK();
}

void FcaeCompactionExecutor::AcquireDeviceTicket(
    int card, obs::MetricsRegistry* metrics) {
  CardLane& lane = *lanes_[card];
  MutexLock lock(&lane.mutex);
  const uint64_t ticket = lane.next_ticket++;
  if (metrics != nullptr) {
    metrics->gauge("host.device.queue_depth")
        ->Set(static_cast<int64_t>(lane.next_ticket - lane.serving));
    if (ticket != lane.serving) {
      metrics->counter("host.device.queue_waits")->Increment();
    }
  }
  while (ticket != lane.serving) {
    lane.cv.Wait();
  }
}

void FcaeCompactionExecutor::ReleaseDeviceTicket(
    int card, obs::MetricsRegistry* metrics) {
  CardLane& lane = *lanes_[card];
  MutexLock lock(&lane.mutex);
  lane.serving++;
  if (metrics != nullptr) {
    metrics->gauge("host.device.queue_depth")
        ->Set(static_cast<int64_t>(lane.next_ticket - lane.serving));
  }
  lane.cv.SignalAll();
}

std::string FcaeCompactionExecutor::HealthString() const {
  RobustnessCounters counters = robustness_counters();
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "executor{jobs=%llu failed=%llu attempts=%llu retries=%llu "
      "faults=%llu verify-rejects=%llu backoff-us=%llu}",
      (unsigned long long)counters.jobs,
      (unsigned long long)counters.jobs_failed,
      (unsigned long long)counters.attempts,
      (unsigned long long)counters.retries,
      (unsigned long long)counters.faults,
      (unsigned long long)counters.verify_failures,
      (unsigned long long)counters.backoff_micros);
  std::string result(buf);
  if (devices_ != nullptr) {
    for (int i = 0; i < devices_->num_cards(); i++) {
      result += " ";
      result += devices_->monitor(i)->ToString();
    }
  } else if (options_.health_monitor != nullptr) {
    result += " ";
    result += options_.health_monitor->ToString();
  }
  return result;
}

FcaeCompactionExecutor::RobustnessCounters
FcaeCompactionExecutor::robustness_counters() const {
  MutexLock lock(&mutex_);
  return counters_;
}

}  // namespace host
}  // namespace fcae
