#include "host/offload_compaction.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "host/output_verifier.h"
#include "host/sstable_stager.h"
#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "lsm/table_cache.h"
#include "table/iterator.h"
#include "util/env.h"

namespace fcae {
namespace host {

namespace {

/// Transient faults are worth another kernel attempt; anything else
/// (sticky card drop, staging/argument errors) is not.
bool IsRetryableFault(const Status& s) {
  return s.IsBusy() || s.IsIOError() || s.IsCorruption();
}

}  // namespace

FcaeCompactionExecutor::FcaeCompactionExecutor(FcaeDevice* device,
                                               FcaeExecutorOptions options)
    : device_(device), options_(options) {}

int EngineInputsNeeded(const CompactionJob& job) {
  const Compaction* c = job.compaction;
  int inputs = 0;
  if (c->level() == 0) {
    // Level-0 tables may overlap: one engine input per table.
    inputs += c->num_input_files(0);
  } else if (c->num_input_files(0) > 0) {
    inputs += 1;  // A sorted run concatenates into one input.
  }
  if (c->num_input_files(1) > 0) {
    inputs += 1;
  }
  return inputs;
}

bool FcaeCompactionExecutor::CanExecute(const CompactionJob& job) const {
  const int needed = EngineInputsNeeded(job);
  if (needed < 1) return false;
  if (!(options_.tournament_scheduling || needed <= device_->max_inputs())) {
    return false;
  }
  // Circuit breaker: a quarantined device refuses jobs, except for the
  // periodic probe the monitor lets through to test recovery.
  if (options_.health_monitor != nullptr &&
      !options_.health_monitor->Admit()) {
    return false;
  }
  return true;
}

Status FcaeCompactionExecutor::Execute(const CompactionJob& job,
                                       std::vector<CompactionOutput>* outputs,
                                       CompactionExecStats* stats) {
  Env* env = job.options->env;
  const uint64_t start_micros = env->NowMicros();
  const Compaction* c = job.compaction;

  // 1. Stage inputs (paper Section IV step 3: read SSTables from disk
  //    into continuous memory blocks in key order). Staging errors are
  //    host I/O problems, not device faults: no retry, no breaker hit.
  SstableStager stager(env);
  std::vector<std::unique_ptr<fpga::DeviceInput>> staged;
  Status s;
  if (c->level() == 0) {
    for (int i = 0; i < c->num_input_files(0); i++) {
      auto input = std::make_unique<fpga::DeviceInput>();
      s = stager.AddTable(
          TableFileName(job.dbname, c->input(0, i)->number), input.get());
      if (!s.ok()) return s;
      staged.push_back(std::move(input));
    }
  } else if (c->num_input_files(0) > 0) {
    auto input = std::make_unique<fpga::DeviceInput>();
    for (int i = 0; i < c->num_input_files(0); i++) {
      s = stager.AddTable(
          TableFileName(job.dbname, c->input(0, i)->number), input.get());
      if (!s.ok()) return s;
    }
    staged.push_back(std::move(input));
  }
  if (c->num_input_files(1) > 0) {
    auto input = std::make_unique<fpga::DeviceInput>();
    for (int i = 0; i < c->num_input_files(1); i++) {
      s = stager.AddTable(
          TableFileName(job.dbname, c->input(1, i)->number), input.get());
      if (!s.ok()) return s;
    }
    staged.push_back(std::move(input));
  }

  std::vector<const fpga::DeviceInput*> input_ptrs;
  for (const auto& input : staged) {
    input_ptrs.push_back(input.get());
  }
  const bool tournament =
      static_cast<int>(input_ptrs.size()) > device_->max_inputs();

  // 2./3. DMA + kernel (steps 4-7 of the paper's workflow), with bounded
  //       retry. Transient faults (busy, timeout, corruption the host
  //       verifier catches) back off and retry; a sticky card drop or an
  //       exhausted deadline gives up so DBImpl can rerun on the CPU.
  const int max_attempts = std::max(1, options_.max_attempts);
  fpga::DeviceOutput device_output;
  DeviceRunStats run_stats;            // From the successful attempt.
  uint64_t attempts = 0;
  uint64_t faults = 0;
  uint64_t verify_failures = 0;
  uint64_t backoff_micros = 0;
  double verify_micros = 0;
  double wasted_kernel_micros = 0;     // Kernel+PCIe time of failed tries.
  double wasted_pcie_micros = 0;
  bool sticky = false;

  for (int attempt = 1; attempt <= max_attempts; attempt++) {
    if (attempt > 1) {
      if (options_.job_deadline_micros > 0 &&
          env->NowMicros() - start_micros >= options_.job_deadline_micros) {
        s = Status::IOError("device job deadline exhausted before retry");
        break;
      }
      if (options_.backoff_base_micros > 0) {
        const uint64_t wait = options_.backoff_base_micros
                              << (attempt - 2 > 62 ? 62 : attempt - 2);
        env->SleepForMicroseconds(static_cast<int>(
            std::min<uint64_t>(wait, 1000000)));
        backoff_micros += wait;
      }
    }

    attempts++;
    device_output = fpga::DeviceOutput();
    run_stats = DeviceRunStats();
    if (tournament) {
      s = device_->ExecuteTournament(input_ptrs, job.smallest_snapshot,
                                     job.no_deeper_data, &device_output,
                                     &run_stats);
    } else {
      s = device_->ExecuteCompaction(input_ptrs, job.smallest_snapshot,
                                     job.no_deeper_data, &device_output,
                                     &run_stats);
    }

    if (s.ok() && options_.verify_outputs) {
      // Host-side verification: CRCs, strict key order, bounds. Runs
      // BEFORE any SSTable is assembled, so a silently corrupt device
      // result can never reach the manifest.
      const uint64_t verify_start = env->NowMicros();
      OutputVerifyStats verify_stats;
      Status vs = VerifyDeviceOutput(device_output, *job.icmp, &verify_stats);
      verify_micros += static_cast<double>(env->NowMicros() - verify_start);
      if (!vs.ok()) {
        verify_failures++;
        s = vs;  // Corruption: transient, retryable.
      }
    }

    if (s.ok()) break;

    faults++;
    wasted_kernel_micros += run_stats.kernel_micros;
    wasted_pcie_micros += run_stats.pcie_micros;
    if (s.IsDeviceLost()) {
      sticky = true;
      break;
    }
    if (!IsRetryableFault(s)) break;
  }

  // Feed the circuit breaker with the job outcome (one report per job,
  // not per attempt: a job saved by a retry is a success).
  if (options_.health_monitor != nullptr) {
    if (s.ok()) {
      options_.health_monitor->RecordJobSuccess();
    } else {
      options_.health_monitor->RecordJobFailure(sticky);
    }
  }

  {
    MutexLock lock(&mutex_);
    counters_.jobs++;
    counters_.attempts += attempts;
    counters_.retries += attempts > 0 ? attempts - 1 : 0;
    counters_.faults += faults;
    counters_.verify_failures += verify_failures;
    counters_.backoff_micros += backoff_micros;
    if (!s.ok()) counters_.jobs_failed++;
  }

  stats->device_attempts = attempts;
  stats->device_retries = attempts > 0 ? attempts - 1 : 0;
  stats->device_faults = faults;
  stats->verify_failures = verify_failures;
  stats->verify_micros = verify_micros;

  if (!s.ok()) return s;

  // 4. Write back the new SSTables (step 8) and register them.
  for (const fpga::DeviceOutputTable& table : device_output.tables) {
    CompactionOutput out;
    out.number = job.new_file_number();
    uint64_t file_size = 0;
    s = AssembleTableFile(env, TableFileName(job.dbname, out.number), table,
                          &file_size, job.options->filter_policy);
    if (!s.ok()) return s;
    out.file_size = file_size;
    if (!out.smallest.DecodeFrom(table.smallest_key) ||
        !out.largest.DecodeFrom(table.largest_key)) {
      return Status::Corruption("device returned empty table bounds");
    }

    // Verify the assembled table is readable before publishing it.
    Iterator* it = job.table_cache->NewIterator(ReadOptions(), out.number,
                                                out.file_size);
    s = it->status();
    delete it;
    if (!s.ok()) return s;

    outputs->push_back(std::move(out));
    stats->bytes_written += file_size;
  }

  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      stats->bytes_read += c->input(which, i)->file_size;
    }
  }
  stats->entries_in = run_stats.engine.records_in;
  stats->entries_dropped = run_stats.engine.records_dropped;
  stats->offloaded = true;
  stats->device_cycles = run_stats.kernel_cycles;
  stats->device_micros = run_stats.kernel_micros + wasted_kernel_micros;
  stats->pcie_micros = run_stats.pcie_micros + wasted_pcie_micros;
  stats->micros = env->NowMicros() - start_micros;
  return Status::OK();
}

std::string FcaeCompactionExecutor::HealthString() const {
  RobustnessCounters counters = robustness_counters();
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "executor{jobs=%llu failed=%llu attempts=%llu retries=%llu "
      "faults=%llu verify-rejects=%llu backoff-us=%llu}",
      (unsigned long long)counters.jobs,
      (unsigned long long)counters.jobs_failed,
      (unsigned long long)counters.attempts,
      (unsigned long long)counters.retries,
      (unsigned long long)counters.faults,
      (unsigned long long)counters.verify_failures,
      (unsigned long long)counters.backoff_micros);
  std::string result(buf);
  if (options_.health_monitor != nullptr) {
    result += " ";
    result += options_.health_monitor->ToString();
  }
  return result;
}

FcaeCompactionExecutor::RobustnessCounters
FcaeCompactionExecutor::robustness_counters() const {
  MutexLock lock(&mutex_);
  return counters_;
}

}  // namespace host
}  // namespace fcae
