#include "host/offload_compaction.h"

#include <vector>

#include "host/sstable_stager.h"
#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "lsm/table_cache.h"
#include "table/iterator.h"
#include "util/env.h"

namespace fcae {
namespace host {

FcaeCompactionExecutor::FcaeCompactionExecutor(FcaeDevice* device,
                                               FcaeExecutorOptions options)
    : device_(device), options_(options) {}

int EngineInputsNeeded(const CompactionJob& job) {
  const Compaction* c = job.compaction;
  int inputs = 0;
  if (c->level() == 0) {
    // Level-0 tables may overlap: one engine input per table.
    inputs += c->num_input_files(0);
  } else if (c->num_input_files(0) > 0) {
    inputs += 1;  // A sorted run concatenates into one input.
  }
  if (c->num_input_files(1) > 0) {
    inputs += 1;
  }
  return inputs;
}

bool FcaeCompactionExecutor::CanExecute(const CompactionJob& job) const {
  const int needed = EngineInputsNeeded(job);
  if (needed < 1) return false;
  return options_.tournament_scheduling || needed <= device_->max_inputs();
}

Status FcaeCompactionExecutor::Execute(const CompactionJob& job,
                                       std::vector<CompactionOutput>* outputs,
                                       CompactionExecStats* stats) {
  Env* env = job.options->env;
  const uint64_t start_micros = env->NowMicros();
  const Compaction* c = job.compaction;

  // 1. Stage inputs (paper Section IV step 3: read SSTables from disk
  //    into continuous memory blocks in key order).
  SstableStager stager(env);
  std::vector<std::unique_ptr<fpga::DeviceInput>> staged;
  Status s;
  if (c->level() == 0) {
    for (int i = 0; i < c->num_input_files(0); i++) {
      auto input = std::make_unique<fpga::DeviceInput>();
      s = stager.AddTable(
          TableFileName(job.dbname, c->input(0, i)->number), input.get());
      if (!s.ok()) return s;
      staged.push_back(std::move(input));
    }
  } else if (c->num_input_files(0) > 0) {
    auto input = std::make_unique<fpga::DeviceInput>();
    for (int i = 0; i < c->num_input_files(0); i++) {
      s = stager.AddTable(
          TableFileName(job.dbname, c->input(0, i)->number), input.get());
      if (!s.ok()) return s;
    }
    staged.push_back(std::move(input));
  }
  if (c->num_input_files(1) > 0) {
    auto input = std::make_unique<fpga::DeviceInput>();
    for (int i = 0; i < c->num_input_files(1); i++) {
      s = stager.AddTable(
          TableFileName(job.dbname, c->input(1, i)->number), input.get());
      if (!s.ok()) return s;
    }
    staged.push_back(std::move(input));
  }

  std::vector<const fpga::DeviceInput*> input_ptrs;
  for (const auto& input : staged) {
    input_ptrs.push_back(input.get());
  }

  // 2./3. DMA + kernel (steps 4-7 of the paper's workflow).
  fpga::DeviceOutput device_output;
  DeviceRunStats run_stats;
  if (static_cast<int>(input_ptrs.size()) > device_->max_inputs()) {
    s = device_->ExecuteTournament(input_ptrs, job.smallest_snapshot,
                                   job.no_deeper_data, &device_output,
                                   &run_stats);
  } else {
    s = device_->ExecuteCompaction(input_ptrs, job.smallest_snapshot,
                                   job.no_deeper_data, &device_output,
                                   &run_stats);
  }
  if (!s.ok()) return s;

  // 4. Write back the new SSTables (step 8) and register them.
  for (const fpga::DeviceOutputTable& table : device_output.tables) {
    CompactionOutput out;
    out.number = job.new_file_number();
    uint64_t file_size = 0;
    s = AssembleTableFile(env, TableFileName(job.dbname, out.number), table,
                          &file_size, job.options->filter_policy);
    if (!s.ok()) return s;
    out.file_size = file_size;
    if (!out.smallest.DecodeFrom(table.smallest_key) ||
        !out.largest.DecodeFrom(table.largest_key)) {
      return Status::Corruption("device returned empty table bounds");
    }

    // Verify the assembled table is readable before publishing it.
    Iterator* it = job.table_cache->NewIterator(ReadOptions(), out.number,
                                                out.file_size);
    s = it->status();
    delete it;
    if (!s.ok()) return s;

    outputs->push_back(std::move(out));
    stats->bytes_written += file_size;
  }

  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      stats->bytes_read += c->input(which, i)->file_size;
    }
  }
  stats->entries_in = run_stats.engine.records_in;
  stats->entries_dropped = run_stats.engine.records_dropped;
  stats->offloaded = true;
  stats->device_cycles = run_stats.kernel_cycles;
  stats->device_micros = run_stats.kernel_micros;
  stats->pcie_micros = run_stats.pcie_micros;
  stats->micros = env->NowMicros() - start_micros;
  return Status::OK();
}

}  // namespace host
}  // namespace fcae
