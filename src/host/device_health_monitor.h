#ifndef FCAE_HOST_DEVICE_HEALTH_MONITOR_H_
#define FCAE_HOST_DEVICE_HEALTH_MONITOR_H_

#include <cstdint>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

namespace obs {
class EventNotifier;
class MetricsRegistry;
class TraceRecorder;
}  // namespace obs

namespace host {

/// Circuit-breaker policy knobs.
struct DeviceHealthOptions {
  /// Consecutive failed jobs (after the executor's own retries) that
  /// quarantine the device. A sticky card-drop counts `sticky_weight`
  /// failures at once, so a dead card trips the breaker immediately.
  int quarantine_threshold = 3;
  int sticky_weight = 3;

  /// While quarantined, every `probe_interval`-th job the executor is
  /// asked about is admitted as a probe; its outcome decides whether the
  /// device is re-admitted. The jobs in between flow to the CPU path.
  int probe_interval = 8;
};

/// DeviceHealthMonitor is the circuit breaker between the DB and the
/// offload executor. The executor reports per-job outcomes
/// (RecordJobSuccess / RecordJobFailure); CanExecute consults Admit().
///
/// States: healthy -> (K consecutive failures) -> quarantined ->
/// (periodic probe job succeeds) -> healthy again. While quarantined,
/// Admit() denies all jobs except the periodic probe, so compactions
/// flow to the always-available CPU executor and the DB degrades
/// gracefully instead of stalling.
class DeviceHealthMonitor {
 public:
  /// `card_id` >= 0 binds the monitor to one card of a multi-card
  /// DeviceSet: gauges publish under `health.card<N>.*` instead of the
  /// legacy `health.*` names and OnDeviceHealthChange events carry the
  /// id, so per-card breakers never alias. The default -1 keeps the
  /// single-device behaviour bit-for-bit.
  explicit DeviceHealthMonitor(DeviceHealthOptions options = {},
                               int card_id = -1);

  DeviceHealthMonitor(const DeviceHealthMonitor&) = delete;
  DeviceHealthMonitor& operator=(const DeviceHealthMonitor&) = delete;

  int card_id() const { return card_id_; }

  /// Should this job be sent to the device? Counts denials while
  /// quarantined and grants every probe_interval-th job as a probe.
  bool Admit() EXCLUDES(mutex_);

  /// One job completed on the device (possibly after internal retries).
  void RecordJobSuccess() EXCLUDES(mutex_);

  /// One job failed on the device after exhausting its retries.
  /// `sticky` marks a fault no retry can clear (card off the bus).
  void RecordJobFailure(bool sticky) EXCLUDES(mutex_);

  bool quarantined() const EXCLUDES(mutex_);

  struct Snapshot {
    bool quarantined = false;
    int consecutive_failures = 0;
    uint64_t jobs_succeeded = 0;
    uint64_t jobs_failed = 0;
    uint64_t sticky_failures = 0;
    uint64_t quarantines = 0;   // Times the breaker opened.
    uint64_t probes = 0;        // Probe jobs admitted while open.
    uint64_t readmissions = 0;  // Times a probe closed the breaker.
    uint64_t jobs_denied = 0;   // Jobs routed to CPU by the breaker.
  };
  Snapshot snapshot() const EXCLUDES(mutex_);

  /// One-line counter dump for DB::GetProperty("fcae.device-health").
  /// mutex_ is a leaf in the lock order (see DESIGN.md): it is safe to
  /// call this while holding DBImpl::mutex_ or the executor's mutex,
  /// which is what keeps the property readable mid-quarantine.
  std::string ToString() const EXCLUDES(mutex_);

  /// Publishes breaker state to obs: gauges named `health.*` are set on
  /// every state change, and breaker transitions (quarantine/
  /// readmission) are recorded as trace instants. Either pointer may be
  /// null; both are borrowed and must outlive the monitor. Idempotent —
  /// the offload executor calls this once per job with the handles the
  /// DB put on the CompactionJob.
  void AttachObservability(obs::MetricsRegistry* metrics,
                           obs::TraceRecorder* trace) EXCLUDES(mutex_);

  /// Registers an event fan-out that receives OnDeviceHealthChange on
  /// every breaker transition (quarantine and readmission). Borrowed,
  /// may be null; idempotent like AttachObservability. Callbacks fire
  /// with mutex_ released, on the thread reporting the job outcome.
  void AttachNotifier(const obs::EventNotifier* notifier) EXCLUDES(mutex_);

 private:
  /// Pushes the current counters to the attached gauges. Caller holds
  /// mutex_; the registry's own lock is a leaf below it.
  void PublishLocked() REQUIRES(mutex_);

  /// Gauge name for `field`: "health.<field>" when unbound,
  /// "health.card<N>.<field>" when bound to a card.
  std::string GaugeName(const char* field) const;

  const DeviceHealthOptions options_;
  const int card_id_;

  mutable Mutex mutex_;
  bool quarantined_ GUARDED_BY(mutex_) = false;
  int consecutive_failures_ GUARDED_BY(mutex_) = 0;
  int denials_since_probe_ GUARDED_BY(mutex_) = 0;
  uint64_t jobs_succeeded_ GUARDED_BY(mutex_) = 0;
  uint64_t jobs_failed_ GUARDED_BY(mutex_) = 0;
  uint64_t sticky_failures_ GUARDED_BY(mutex_) = 0;
  uint64_t quarantines_ GUARDED_BY(mutex_) = 0;
  uint64_t probes_ GUARDED_BY(mutex_) = 0;
  uint64_t readmissions_ GUARDED_BY(mutex_) = 0;
  uint64_t jobs_denied_ GUARDED_BY(mutex_) = 0;

  obs::MetricsRegistry* metrics_ GUARDED_BY(mutex_) = nullptr;
  obs::TraceRecorder* trace_ GUARDED_BY(mutex_) = nullptr;
  const obs::EventNotifier* notifier_ GUARDED_BY(mutex_) = nullptr;
};

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_DEVICE_HEALTH_MONITOR_H_
