#ifndef FCAE_HOST_FCAE_DEVICE_H_
#define FCAE_HOST_FCAE_DEVICE_H_

#include <cstdint>
#include <vector>

#include "fpga/compaction_engine.h"
#include "fpga/config.h"
#include "fpga/device_memory.h"
#include "fpga/fault_injector.h"
#include "fpga/pcie_model.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fcae {
namespace host {

/// Timing of one offloaded kernel invocation.
struct DeviceRunStats {
  uint64_t kernel_cycles = 0;
  double kernel_micros = 0;   // cycles / clock
  double pcie_micros = 0;     // DMA in + out (modeled)
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t faults_injected = 0;     // Faults hit during this invocation.
  uint64_t dma_retransfers = 0;     // Link-CRC-detected DMA replays.
  fpga::EngineStats engine;
};

/// FcaeDevice stands in for the PCIe-attached KCU1500 card: it owns the
/// engine configuration, serializes kernel invocations (one compaction
/// engine instance on the chip), models the DMA transfers, and runs the
/// cycle-level engine simulation against the staged images.
///
/// A DeviceFaultInjector may be attached to model the failure modes of a
/// real card (see fpga/fault_injector.h). Faults surface as:
///  - Status::Busy         — device-busy, immediately retryable;
///  - Status::IOError      — kernel deadline exceeded (injected hang or
///                           a run past EngineConfig::kernel_deadline_cycles);
///  - Status::DeviceLost   — sticky card drop; no retry can succeed;
///  - silent DMA corruption — the call *succeeds* with flipped output
///                           bytes; only host-side verification catches it.
class FcaeDevice {
 public:
  explicit FcaeDevice(const fpga::EngineConfig& config,
                      const fpga::PcieModel& pcie = fpga::PcieModel());

  FcaeDevice(const FcaeDevice&) = delete;
  FcaeDevice& operator=(const FcaeDevice&) = delete;

  const fpga::EngineConfig& config() const { return config_; }

  /// Maximum number of compaction inputs the synthesized engine
  /// accepts (the N of the paper).
  int max_inputs() const { return config_.num_inputs; }

  /// Attaches a fault injector (borrowed; may be null to detach). The
  /// injector is consulted once per kernel launch.
  void set_fault_injector(fpga::DeviceFaultInjector* injector)
      EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    fault_injector_ = injector;
  }

  /// Runs one compaction kernel: DMA the inputs in, execute, DMA the
  /// outputs back. Blocks while the (simulated) kernel runs; a second
  /// caller queues on the device mutex like a second job would queue on
  /// the real card. On failure *output is cleared — a failed kernel
  /// never hands partial results to the host.
  Status ExecuteCompaction(const std::vector<const fpga::DeviceInput*>& inputs,
                           uint64_t smallest_snapshot, bool drop_deletions,
                           fpga::DeviceOutput* output, DeviceRunStats* stats)
      EXCLUDES(mutex_, stats_mutex_);

  /// Merges an arbitrary number of inputs as a tournament of N-input
  /// kernel passes; intermediate runs are re-staged inside device DRAM
  /// (fpga::ConvertOutputToInput), so the PCIe cost covers only the
  /// initial inputs and the final outputs. Intermediate passes never
  /// drop deletion markers (a marker may shadow data in another group);
  /// only the final pass applies `drop_deletions`. Each pass is a
  /// separate kernel launch for fault purposes: a fault in any
  /// intermediate pass fails the whole job, frees all intermediate DRAM
  /// staging and clears *output.
  Status ExecuteTournament(const std::vector<const fpga::DeviceInput*>& inputs,
                           uint64_t smallest_snapshot, bool drop_deletions,
                           fpga::DeviceOutput* output, DeviceRunStats* stats)
      EXCLUDES(mutex_, stats_mutex_);

  /// Totals across the device lifetime.
  uint64_t total_kernel_cycles() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return total_kernel_cycles_;
  }
  double total_pcie_micros() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return total_pcie_micros_;
  }
  uint64_t kernels_launched() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return kernels_launched_;
  }

  /// Device DRAM currently held by tournament intermediates. Zero
  /// whenever no tournament is in flight — in particular after a failed
  /// one (no leaked staging).
  uint64_t intermediate_dram_bytes() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return intermediate_dram_bytes_;
  }
  uint64_t intermediate_dram_peak_bytes() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return intermediate_dram_peak_bytes_;
  }

  /// Kernel runs killed by the cycle-deadline watchdog (natural, i.e.
  /// not injected, timeouts included).
  uint64_t deadline_kills() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return deadline_kills_;
  }

 private:
  /// One kernel launch: consults the fault injector, runs the engine,
  /// enforces the cycle deadline and applies silent corruption.
  Status RunKernel(const std::vector<const fpga::DeviceInput*>& inputs,
                   uint64_t smallest_snapshot, bool drop_deletions,
                   fpga::DeviceOutput* output, DeviceRunStats* stats)
      REQUIRES(mutex_);

  const fpga::EngineConfig config_;
  const fpga::PcieModel pcie_;
  Mutex mutex_;
  fpga::DeviceFaultInjector* fault_injector_ GUARDED_BY(mutex_) = nullptr;

  // Counters below are guarded by stats_mutex_ so readers (health
  // probes, tests) need not queue behind a running kernel. Lock order:
  // stats_mutex_ is a leaf taken while mutex_ is held, never the other
  // way around.
  mutable Mutex stats_mutex_ ACQUIRED_AFTER(mutex_);
  uint64_t total_kernel_cycles_ GUARDED_BY(stats_mutex_) = 0;
  double total_pcie_micros_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t kernels_launched_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t intermediate_dram_bytes_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t intermediate_dram_peak_bytes_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t deadline_kills_ GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_FCAE_DEVICE_H_
