#ifndef FCAE_HOST_FCAE_DEVICE_H_
#define FCAE_HOST_FCAE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "fpga/compaction_engine.h"
#include "fpga/config.h"
#include "fpga/device_memory.h"
#include "fpga/fault_injector.h"
#include "fpga/pcie_bus.h"
#include "fpga/pcie_model.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fcae {
namespace host {

/// Timing of one offloaded kernel invocation.
struct DeviceRunStats {
  uint64_t kernel_cycles = 0;
  double kernel_micros = 0;   // cycles / clock
  double pcie_micros = 0;     // DMA in + out (modeled)
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  uint64_t faults_injected = 0;     // Faults hit during this invocation.
  uint64_t dma_retransfers = 0;     // Link-CRC-detected DMA replays.
  /// Modeled micros of DMA hidden behind kernel compute by the
  /// double-buffered staging pipeline (zero when the job did not arrive
  /// back-to-back behind another job on the same card).
  double dma_overlap_micros = 0;
  /// Modeled micros this job's DMA bursts waited for the shared PCIe
  /// bus because another card was bursting at the same time.
  double bus_wait_micros = 0;
  fpga::EngineStats engine;
};

/// FcaeDevice stands in for the PCIe-attached KCU1500 card: it owns the
/// engine configuration, serializes kernel invocations (one compaction
/// engine instance on the chip), models the DMA transfers, and runs the
/// cycle-level engine simulation against the staged images.
///
/// A DeviceFaultInjector may be attached to model the failure modes of a
/// real card (see fpga/fault_injector.h). Faults surface as:
///  - Status::Busy         — device-busy, immediately retryable;
///  - Status::IOError      — kernel deadline exceeded (injected hang or
///                           a run past EngineConfig::kernel_deadline_cycles);
///  - Status::DeviceLost   — sticky card drop; no retry can succeed;
///  - silent DMA corruption — the call *succeeds* with flipped output
///                           bytes; only host-side verification catches it.
class FcaeDevice {
 public:
  /// `bus`, when non-null, is the shared multi-card PCIe bus this
  /// card's DMA bursts contend on (borrowed; must outlive the device).
  /// `card_id` distinguishes cards in a DeviceSet; single-device setups
  /// keep the default 0.
  explicit FcaeDevice(const fpga::EngineConfig& config,
                      const fpga::PcieModel& pcie = fpga::PcieModel(),
                      fpga::PcieBus* bus = nullptr, int card_id = 0);

  FcaeDevice(const FcaeDevice&) = delete;
  FcaeDevice& operator=(const FcaeDevice&) = delete;

  const fpga::EngineConfig& config() const { return config_; }

  int card_id() const { return card_id_; }

  /// Maximum number of compaction inputs the synthesized engine
  /// accepts (the N of the paper).
  int max_inputs() const { return config_.num_inputs; }

  /// Attaches a fault injector (borrowed; may be null to detach). The
  /// injector is consulted once per kernel launch.
  void set_fault_injector(fpga::DeviceFaultInjector* injector)
      EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    fault_injector_ = injector;
  }

  /// Runs one compaction kernel: DMA the inputs in, execute, DMA the
  /// outputs back. Blocks while the (simulated) kernel runs; a second
  /// caller queues on the device mutex like a second job would queue on
  /// the real card. On failure *output is cleared — a failed kernel
  /// never hands partial results to the host.
  /// `bounds`, when non-null and active, restricts the merge to user
  /// keys in (lower, upper] (sharded offload; the engine's Key-Value
  /// Transfer drops records outside). Borrowed for the duration.
  Status ExecuteCompaction(const std::vector<const fpga::DeviceInput*>& inputs,
                           uint64_t smallest_snapshot, bool drop_deletions,
                           fpga::DeviceOutput* output, DeviceRunStats* stats,
                           const fpga::KeyBounds* bounds = nullptr)
      EXCLUDES(mutex_, stats_mutex_);

  /// Merges an arbitrary number of inputs as a tournament of N-input
  /// kernel passes; intermediate runs are re-staged inside device DRAM
  /// (fpga::ConvertOutputToInput), so the PCIe cost covers only the
  /// initial inputs and the final outputs. Intermediate passes never
  /// drop deletion markers (a marker may shadow data in another group);
  /// only the final pass applies `drop_deletions`. Each pass is a
  /// separate kernel launch for fault purposes: a fault in any
  /// intermediate pass fails the whole job, frees all intermediate DRAM
  /// staging and clears *output.
  Status ExecuteTournament(const std::vector<const fpga::DeviceInput*>& inputs,
                           uint64_t smallest_snapshot, bool drop_deletions,
                           fpga::DeviceOutput* output, DeviceRunStats* stats,
                           const fpga::KeyBounds* bounds = nullptr)
      EXCLUDES(mutex_, stats_mutex_);

  /// Totals across the device lifetime.
  uint64_t total_kernel_cycles() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return total_kernel_cycles_;
  }
  double total_pcie_micros() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return total_pcie_micros_;
  }
  uint64_t kernels_launched() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return kernels_launched_;
  }

  /// Modeled micros of DMA hidden behind compute across the device
  /// lifetime (the pipelined double-buffering payoff).
  double total_dma_overlap_micros() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return total_dma_overlap_micros_;
  }

  /// Modeled micros of shared-bus contention delay across the lifetime.
  double total_bus_wait_micros() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return total_bus_wait_micros_;
  }

  /// Jobs that arrived while the card was already busy and were
  /// therefore eligible for DMA/compute overlap.
  uint64_t pipelined_jobs() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return pipelined_jobs_;
  }

  /// Device DRAM currently held by tournament intermediates. Zero
  /// whenever no tournament is in flight — in particular after a failed
  /// one (no leaked staging).
  uint64_t intermediate_dram_bytes() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return intermediate_dram_bytes_;
  }
  uint64_t intermediate_dram_peak_bytes() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return intermediate_dram_peak_bytes_;
  }

  /// Kernel runs killed by the cycle-deadline watchdog (natural, i.e.
  /// not injected, timeouts included).
  uint64_t deadline_kills() const EXCLUDES(stats_mutex_) {
    MutexLock lock(&stats_mutex_);
    return deadline_kills_;
  }

 private:
  /// One kernel launch: consults the fault injector, runs the engine,
  /// enforces the cycle deadline and applies silent corruption.
  Status RunKernel(const std::vector<const fpga::DeviceInput*>& inputs,
                   uint64_t smallest_snapshot, bool drop_deletions,
                   fpga::DeviceOutput* output, DeviceRunStats* stats,
                   const fpga::KeyBounds* bounds) REQUIRES(mutex_);

  /// Advances the double-buffered DMA pipeline timeline for one
  /// completed job and fills stats->dma_overlap_micros /
  /// bus_wait_micros. `back_to_back` is true when the job arrived while
  /// the card was still busy — only then can its transfer-in overlap
  /// the predecessor's kernel and its kernel overlap the predecessor's
  /// transfer-out (two staging slots, so at most one job ahead).
  /// `in_micros`/`in_wait` are the inbound burst and its bus-contention
  /// delay, charged by the caller at job start — the burst must be on
  /// the bus while the job runs so concurrent cards see it.
  void ModelPipeline(bool back_to_back, double in_micros, double in_wait,
                     uint64_t out_bytes, double kernel_micros,
                     DeviceRunStats* stats) REQUIRES(mutex_);

  const fpga::EngineConfig config_;
  const fpga::PcieModel pcie_;
  fpga::PcieBus* const bus_;  // Borrowed shared bus; null = lone card.
  const int card_id_;
  Mutex mutex_;
  fpga::DeviceFaultInjector* fault_injector_ GUARDED_BY(mutex_) = nullptr;

  /// Jobs in flight or queued on mutex_. A job that sees a nonzero
  /// count at entry arrived back-to-back and runs pipelined.
  std::atomic<int> pending_jobs_{0};

  // Modeled pipeline timeline (event times in modeled micros since the
  // card powered on). Two staging slots implement the double buffer: a
  // transfer-in may start only once its slot was freed by the
  // kernel-start two jobs ago.
  double prev_dma_in_end_ GUARDED_BY(mutex_) = 0;
  double prev_kernel_end_ GUARDED_BY(mutex_) = 0;
  double prev_out_end_ GUARDED_BY(mutex_) = 0;
  double slot_free_[2] GUARDED_BY(mutex_) = {0, 0};
  int slot_idx_ GUARDED_BY(mutex_) = 0;

  // Counters below are guarded by stats_mutex_ so readers (health
  // probes, tests) need not queue behind a running kernel. Lock order:
  // stats_mutex_ is a leaf taken while mutex_ is held, never the other
  // way around.
  mutable Mutex stats_mutex_ ACQUIRED_AFTER(mutex_);
  uint64_t total_kernel_cycles_ GUARDED_BY(stats_mutex_) = 0;
  double total_pcie_micros_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t kernels_launched_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t intermediate_dram_bytes_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t intermediate_dram_peak_bytes_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t deadline_kills_ GUARDED_BY(stats_mutex_) = 0;
  double total_dma_overlap_micros_ GUARDED_BY(stats_mutex_) = 0;
  double total_bus_wait_micros_ GUARDED_BY(stats_mutex_) = 0;
  uint64_t pipelined_jobs_ GUARDED_BY(stats_mutex_) = 0;
};

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_FCAE_DEVICE_H_
