#ifndef FCAE_HOST_FCAE_DEVICE_H_
#define FCAE_HOST_FCAE_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "fpga/compaction_engine.h"
#include "fpga/config.h"
#include "fpga/device_memory.h"
#include "fpga/pcie_model.h"
#include "util/status.h"

namespace fcae {
namespace host {

/// Timing of one offloaded kernel invocation.
struct DeviceRunStats {
  uint64_t kernel_cycles = 0;
  double kernel_micros = 0;   // cycles / clock
  double pcie_micros = 0;     // DMA in + out (modeled)
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;
  fpga::EngineStats engine;
};

/// FcaeDevice stands in for the PCIe-attached KCU1500 card: it owns the
/// engine configuration, serializes kernel invocations (one compaction
/// engine instance on the chip), models the DMA transfers, and runs the
/// cycle-level engine simulation against the staged images.
class FcaeDevice {
 public:
  explicit FcaeDevice(const fpga::EngineConfig& config,
                      const fpga::PcieModel& pcie = fpga::PcieModel());

  FcaeDevice(const FcaeDevice&) = delete;
  FcaeDevice& operator=(const FcaeDevice&) = delete;

  const fpga::EngineConfig& config() const { return config_; }

  /// Maximum number of compaction inputs the synthesized engine
  /// accepts (the N of the paper).
  int max_inputs() const { return config_.num_inputs; }

  /// Runs one compaction kernel: DMA the inputs in, execute, DMA the
  /// outputs back. Blocks while the (simulated) kernel runs; a second
  /// caller queues on the device mutex like a second job would queue on
  /// the real card.
  Status ExecuteCompaction(const std::vector<const fpga::DeviceInput*>& inputs,
                           uint64_t smallest_snapshot, bool drop_deletions,
                           fpga::DeviceOutput* output, DeviceRunStats* stats);

  /// Merges an arbitrary number of inputs as a tournament of N-input
  /// kernel passes; intermediate runs are re-staged inside device DRAM
  /// (fpga::ConvertOutputToInput), so the PCIe cost covers only the
  /// initial inputs and the final outputs. Intermediate passes never
  /// drop deletion markers (a marker may shadow data in another group);
  /// only the final pass applies `drop_deletions`.
  Status ExecuteTournament(const std::vector<const fpga::DeviceInput*>& inputs,
                           uint64_t smallest_snapshot, bool drop_deletions,
                           fpga::DeviceOutput* output, DeviceRunStats* stats);

  /// Totals across the device lifetime.
  uint64_t total_kernel_cycles() const { return total_kernel_cycles_; }
  double total_pcie_micros() const { return total_pcie_micros_; }
  uint64_t kernels_launched() const { return kernels_launched_; }

 private:
  const fpga::EngineConfig config_;
  const fpga::PcieModel pcie_;
  std::mutex mutex_;

  uint64_t total_kernel_cycles_ = 0;
  double total_pcie_micros_ = 0;
  uint64_t kernels_launched_ = 0;
};

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_FCAE_DEVICE_H_
