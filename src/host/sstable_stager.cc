#include "host/sstable_stager.h"

#include <memory>

#include "table/block_builder.h"
#include "table/format.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/file_checksum.h"
#include "util/options.h"
#include "util/rate_limiter.h"
#include "lsm/dbformat.h"
#include "fpga/block_parse.h"
#include "table/filter_block.h"
#include "util/filter_policy.h"

namespace fcae {
namespace host {

namespace {

// Internal key = user key + 8-byte mark ((sequence << 8) | type).
Slice UserKeyOf(const std::string& internal_key) {
  return internal_key.size() >= 8
             ? Slice(internal_key.data(), internal_key.size() - 8)
             : Slice(internal_key);
}

// Appends a stored-format block (contents + kNoCompression trailer with
// the masked CRC) to *dst, the representation the engine's block decode
// path expects.
void AppendStoredBlock(const Slice& contents, std::string* dst) {
  dst->append(contents.data(), contents.size());
  char trailer[kBlockTrailerSize];
  trailer[0] = kNoCompression;
  uint32_t crc = crc32c::Value(contents.data(), contents.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  dst->append(trailer, kBlockTrailerSize);
}

}  // namespace

Status SstableStager::AddTable(const std::string& fname,
                               fpga::DeviceInput* input,
                               const fpga::KeyBounds* bounds) {
  uint64_t file_size;
  Status s = env_->GetFileSize(fname, &file_size);
  if (!s.ok()) return s;
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file too short to be an sstable", fname);
  }

  RandomAccessFile* raw_file;
  s = env_->NewRandomAccessFile(fname, &raw_file);
  if (!s.ok()) return s;
  std::unique_ptr<RandomAccessFile> file(raw_file);

  // Footer -> index block handle + metaindex handle.
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  s = file->Read(file_size - Footer::kEncodedLength, Footer::kEncodedLength,
                 &footer_input, footer_space);
  if (!s.ok()) return s;
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  const BlockHandle& index_handle = footer.index_handle();
  const uint64_t index_stored_size = index_handle.size() + kBlockTrailerSize;

  // The data-block region is everything before the first meta block
  // (blocks after it — filter, metaindex, index — are never addressed by
  // data BlockHandles, so staging up to the metaindex offset is enough;
  // any filter block inside is simply dead bytes the engine never
  // fetches).
  const uint64_t data_region_size = footer.metaindex_handle().offset();

  // Read the index block (as stored, trailer included): staged verbatim
  // on the unbounded path, parsed for block selection on the bounded
  // one.
  std::string index_stored(index_stored_size, '\0');
  {
    Slice result;
    s = file->Read(index_handle.offset(), index_stored_size, &result,
                   index_stored.data());
    if (!s.ok()) return s;
    if (result.size() != index_stored_size) {
      return Status::Corruption("truncated index block", fname);
    }
    if (result.data() != index_stored.data()) {
      index_stored.assign(result.data(), result.size());
    }
  }

  uint64_t region_start = 0;
  uint64_t region_end = data_region_size;
  if (bounds != nullptr && bounds->active()) {
    // Bounded staging: walk the index and keep the contiguous run of
    // data blocks that can hold user keys in (lower, upper]. Block i
    // holds the keys in (last_key[i-1], last_key[i]], so it is still
    // short of the shard while its own last user key is <= lower, and
    // past it once the *previous* block's last user key is > upper.
    std::string index_contents;
    s = fpga::DecodeStoredBlock(Slice(index_stored),
                                /*verify_checksum=*/true, &index_contents);
    if (!s.ok()) return s;
    std::vector<fpga::ParsedEntry> entries;
    s = fpga::ParseBlockEntries(index_contents, &entries);
    if (!s.ok()) return s;

    InternalKeyComparator icmp(BytewiseComparator());
    Options index_options;
    index_options.comparator = &icmp;
    index_options.block_restart_interval = 1;
    BlockBuilder trimmed_index(&index_options);
    bool any = false;
    for (size_t i = 0; i < entries.size(); i++) {
      if (bounds->has_lower &&
          UserKeyOf(entries[i].key).Compare(Slice(bounds->lower)) <= 0) {
        continue;  // Whole block at or below the exclusive lower bound.
      }
      if (bounds->has_upper && i > 0 &&
          UserKeyOf(entries[i - 1].key).Compare(Slice(bounds->upper)) > 0) {
        break;  // This block starts past the inclusive upper bound.
      }
      Slice handle_input(entries[i].value);
      BlockHandle handle;
      s = handle.DecodeFrom(&handle_input);
      if (!s.ok()) return s;
      if (handle.offset() + handle.size() + kBlockTrailerSize >
          data_region_size) {
        return Status::Corruption("index entry out of range", fname);
      }
      if (!any) {
        region_start = handle.offset();
        any = true;
      }
      region_end = handle.offset() + handle.size() + kBlockTrailerSize;
      // Handles are rebased to the trimmed region so the staged index
      // addresses the staged bytes exactly like an untrimmed one does.
      BlockHandle rebased;
      rebased.set_offset(handle.offset() - region_start);
      rebased.set_size(handle.size());
      std::string handle_encoding;
      rebased.EncodeTo(&handle_encoding);
      trimmed_index.Add(entries[i].key, handle_encoding);
    }
    if (!any) {
      // Every data block lies outside the shard: nothing to stage.
      return Status::OK();
    }
    index_stored.clear();
    AppendStoredBlock(trimmed_index.Finish(), &index_stored);
  }

  fpga::SstableDescriptor desc;
  desc.index_offset = input->index_memory.size();
  desc.index_size = index_stored.size();
  desc.data_offset = input->data_memory.size();
  desc.data_size = region_end - region_start;

  input->index_memory.append(index_stored);

  // Stage the (possibly trimmed) data region verbatim.
  {
    std::string buf(desc.data_size, '\0');
    Slice result;
    s = file->Read(region_start, desc.data_size, &result, buf.data());
    if (!s.ok()) return s;
    if (result.size() != desc.data_size) {
      return Status::Corruption("truncated data region", fname);
    }
    input->data_memory.append(result.data(), result.size());
  }

  input->sstables.push_back(desc);
  return Status::OK();
}

Status SstableStager::StageRun(const std::vector<std::string>& fnames,
                               fpga::DeviceInput* input,
                               const fpga::KeyBounds* bounds) {
  for (const std::string& fname : fnames) {
    Status s = AddTable(fname, input, bounds);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status AssembleTableFile(Env* env, const std::string& fname,
                         const fpga::DeviceOutputTable& table,
                         uint64_t* file_size,
                         const FilterPolicy* filter_policy,
                         RateLimiter* rate_limiter,
                         uint32_t* file_checksum) {
  WritableFile* raw_file;
  Status s = env->NewWritableFile(fname, &raw_file);
  if (!s.ok()) return s;
  if (rate_limiter != nullptr) {
    // Assembly writeback is compaction output: low-priority lane, same
    // as the CPU executor's, so flushes keep absolute priority.
    raw_file = new RateLimitedWritableFile(raw_file, rate_limiter,
                                           RateLimiter::Priority::kLow);
  }
  // Outermost so the captured crc covers the full assembled image.
  ChecksumWritableFile* checksum_file = new ChecksumWritableFile(raw_file);
  std::unique_ptr<WritableFile> file(checksum_file);

  uint64_t offset = 0;
  auto append_raw_block = [&](const Slice& contents,
                              BlockHandle* handle) -> Status {
    handle->set_offset(offset);
    handle->set_size(contents.size());
    Status as = file->Append(contents);
    if (!as.ok()) return as;
    char trailer[kBlockTrailerSize];
    trailer[0] = kNoCompression;
    uint32_t crc = crc32c::Value(contents.data(), contents.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    as = file->Append(Slice(trailer, kBlockTrailerSize));
    if (!as.ok()) return as;
    offset += contents.size() + kBlockTrailerSize;
    return Status::OK();
  };

  // 1. Data blocks exactly as the engine produced them (each already
  //    carries its own trailer).
  s = file->Append(table.data_memory);
  if (!s.ok()) return s;
  offset += table.data_memory.size();

  // Index separators are internal keys; the builder's ordering assert
  // must use internal-key order (user key asc, mark desc).
  static const InternalKeyComparator* icmp =
      new InternalKeyComparator(BytewiseComparator());
  Options block_options;
  block_options.comparator = icmp;

  // 2. Optional filter block, rebuilt on the host from the engine's
  //    data blocks. Keys are fed as internal keys, exactly as
  //    TableBuilder feeds them (the DB passes its InternalFilterPolicy,
  //    which strips the mark fields itself).
  BlockHandle filter_handle;
  bool has_filter = false;
  if (filter_policy != nullptr) {
    FilterBlockBuilder filter_builder(filter_policy);
    filter_builder.StartBlock(0);
    Status fs = Status::OK();
    for (const fpga::OutputIndexEntry& e : table.index_entries) {
      if (e.offset + e.size + kBlockTrailerSize > table.data_memory.size()) {
        fs = Status::Corruption("index entry out of range");
        break;
      }
      filter_builder.StartBlock(e.offset);
      std::string contents;
      fs = fpga::DecodeStoredBlock(
          Slice(table.data_memory.data() + e.offset,
                e.size + kBlockTrailerSize),
          /*verify_checksum=*/false, &contents);
      if (!fs.ok()) break;
      std::vector<fpga::ParsedEntry> entries;
      fs = fpga::ParseBlockEntries(contents, &entries);
      if (!fs.ok()) break;
      for (const fpga::ParsedEntry& entry : entries) {
        filter_builder.AddKey(entry.key);
      }
    }
    if (!fs.ok()) return fs;
    s = append_raw_block(filter_builder.Finish(), &filter_handle);
    if (!s.ok()) return s;
    has_filter = true;
  }

  // 3. Metaindex block (maps "filter.<Name>" to the filter block).
  BlockHandle metaindex_handle;
  {
    Options meta_options = block_options;
    BlockBuilder metaindex_block(&meta_options);
    if (has_filter) {
      std::string key = "filter.";
      key.append(filter_policy->Name());
      std::string handle_encoding;
      filter_handle.EncodeTo(&handle_encoding);
      metaindex_block.Add(key, handle_encoding);
    }
    s = append_raw_block(metaindex_block.Finish(), &metaindex_handle);
    if (!s.ok()) return s;
  }

  // 4. Index block from the engine's (last_key, handle) entries. The
  //    engine emits the blocks' exact last keys as separators; with
  //    restart interval 1 the index is binary searchable like any
  //    TableBuilder-produced index.
  BlockHandle index_handle;
  {
    Options index_options = block_options;
    index_options.block_restart_interval = 1;
    BlockBuilder index_block(&index_options);
    for (const fpga::OutputIndexEntry& e : table.index_entries) {
      BlockHandle h;
      h.set_offset(e.offset);
      h.set_size(e.size);
      std::string handle_encoding;
      h.EncodeTo(&handle_encoding);
      index_block.Add(e.last_key, handle_encoding);
    }
    s = append_raw_block(index_block.Finish(), &index_handle);
    if (!s.ok()) return s;
  }

  // 5. Footer.
  {
    Footer footer;
    footer.set_metaindex_handle(metaindex_handle);
    footer.set_index_handle(index_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    s = file->Append(footer_encoding);
    if (!s.ok()) return s;
    offset += footer_encoding.size();
  }

  s = file->Sync();
  if (s.ok()) {
    s = file->Close();
  }
  *file_size = offset;
  if (file_checksum != nullptr) {
    *file_checksum = checksum_file->checksum();
  }
  return s;
}

}  // namespace host
}  // namespace fcae
