#include "host/fcae_device.h"

#include <algorithm>
#include <memory>

#include "fpga/output_to_input.h"
#include "util/random.h"

namespace fcae {
namespace host {

namespace {

/// Applies a silent DMA corruption: flips a few bytes of one output
/// table, chosen deterministically from the decision's corruption seed.
/// The flips may land in block payloads, trailers or restart arrays —
/// exactly the reason host verification re-checks CRCs and key order.
void CorruptOutput(uint64_t seed, fpga::DeviceOutput* output) {
  if (output->tables.empty()) return;
  Random rng(static_cast<uint32_t>(seed ^ (seed >> 32)) | 1);
  fpga::DeviceOutputTable& table =
      output->tables[rng.Uniform(static_cast<int>(output->tables.size()))];
  if (table.data_memory.empty()) return;
  const int flips = 1 + static_cast<int>(rng.Uniform(8));
  for (int i = 0; i < flips; i++) {
    const size_t pos =
        static_cast<size_t>(rng.Next64() % table.data_memory.size());
    table.data_memory[pos] =
        static_cast<char>(table.data_memory[pos] ^ (1u << rng.Uniform(8)));
  }
}

}  // namespace

FcaeDevice::FcaeDevice(const fpga::EngineConfig& config,
                       const fpga::PcieModel& pcie, fpga::PcieBus* bus,
                       int card_id)
    : config_(config), pcie_(pcie), bus_(bus), card_id_(card_id) {}

void FcaeDevice::ModelPipeline(bool back_to_back, double in_micros,
                               double in_wait, uint64_t out_bytes,
                               double kernel_micros, DeviceRunStats* stats) {
  const double out_micros = pcie_.TransferMicros(out_bytes);
  const double out_wait =
      bus_ != nullptr ? bus_->ChargeOut(card_id_, out_micros) : 0;

  // A job that found the card idle restarts the timeline serially: its
  // transfer-in was not staged ahead, so nothing overlaps. A job that
  // queued behind a running predecessor had its transfer-in issued as
  // soon as the predecessor's own transfer-in finished (the DMA engine
  // is free then, and the second staging slot holds the bytes).
  const double arrival = back_to_back
                             ? prev_dma_in_end_
                             : std::max(prev_out_end_, prev_kernel_end_);
  const double in_start = std::max(arrival, slot_free_[slot_idx_]);
  const double in_end = in_start + in_micros + in_wait;
  const double kernel_start = std::max(in_end, prev_kernel_end_);
  // Transfer-in time hidden behind the predecessor's kernel.
  const double overlap_in =
      std::max(0.0, std::min(in_end, prev_kernel_end_) - in_start);
  const double kernel_end = kernel_start + kernel_micros;
  const double out_start = std::max(kernel_end, prev_out_end_);
  const double out_end = out_start + out_micros + out_wait;
  // Predecessor transfer-out time hidden behind this job's kernel.
  const double overlap_out =
      std::max(0.0, std::min(prev_out_end_, kernel_end) - kernel_start);

  // The staging slot this job used frees for reuse two jobs later,
  // once its bytes have been consumed by the kernel.
  slot_free_[slot_idx_] = kernel_end;
  slot_idx_ ^= 1;
  prev_dma_in_end_ = in_end;
  prev_kernel_end_ = kernel_end;
  prev_out_end_ = out_end;

  stats->dma_overlap_micros = overlap_in + overlap_out;
  stats->bus_wait_micros = in_wait + out_wait;

  MutexLock stats_lock(&stats_mutex_);
  total_dma_overlap_micros_ += stats->dma_overlap_micros;
  total_bus_wait_micros_ += stats->bus_wait_micros;
  if (back_to_back) pipelined_jobs_++;
}

Status FcaeDevice::RunKernel(
    const std::vector<const fpga::DeviceInput*>& inputs,
    uint64_t smallest_snapshot, bool drop_deletions,
    fpga::DeviceOutput* output, DeviceRunStats* stats,
    const fpga::KeyBounds* bounds) {
  fpga::FaultDecision decision;
  if (fault_injector_ != nullptr) {
    decision = fault_injector_->NextLaunch();
  }
  {
    MutexLock lock(&stats_mutex_);
    kernels_launched_++;
  }

  switch (decision.cls) {
    case fpga::DeviceFaultClass::kCardDropped:
      stats->faults_injected++;
      return Status::DeviceLost("card dropped off the bus");
    case fpga::DeviceFaultClass::kDeviceBusy:
      stats->faults_injected++;
      return Status::Busy("device kernel queue refused the job");
    default:
      break;
  }

  fpga::CompactionEngine engine(config_, inputs, smallest_snapshot,
                                drop_deletions, output, bounds);
  Status s = engine.Run();
  if (!s.ok()) return s;

  uint64_t cycles = engine.stats().cycles;
  if (decision.cls == fpga::DeviceFaultClass::kKernelTimeout) {
    // The kernel hung: the host's watchdog burned the full deadline (or
    // twice the nominal run when no deadline is armed) before killing it.
    stats->faults_injected++;
    const uint64_t charged = config_.kernel_deadline_cycles > 0
                                 ? std::max(config_.kernel_deadline_cycles,
                                            cycles)
                                 : 2 * cycles;
    stats->kernel_cycles += charged;
    {
      MutexLock lock(&stats_mutex_);
      total_kernel_cycles_ += charged;
    }
    return Status::IOError("kernel deadline exceeded (device hang)");
  }
  if (config_.kernel_deadline_cycles > 0 &&
      cycles > config_.kernel_deadline_cycles) {
    // A genuine (non-injected) overrun of the watchdog deadline.
    stats->kernel_cycles += cycles;
    MutexLock lock(&stats_mutex_);
    total_kernel_cycles_ += cycles;
    deadline_kills_++;
    return Status::IOError("kernel deadline exceeded");
  }

  if (decision.cls == fpga::DeviceFaultClass::kDmaCorruption) {
    stats->faults_injected++;
    if (decision.silent) {
      CorruptOutput(decision.corruption_seed, output);
    } else {
      // Link CRC caught it; the DMA replays and the job succeeds.
      stats->dma_retransfers++;
      stats->pcie_micros += pcie_.RetransferMicros(output->TotalBytes());
    }
  }

  stats->kernel_cycles += cycles;
  stats->engine.records_in += engine.stats().records_in;
  stats->engine.records_dropped += engine.stats().records_dropped;
  stats->engine.records_bounds_dropped +=
      engine.stats().records_bounds_dropped;
  // Keep the full stats of the most recent pass; Execute* fixes up the
  // accumulated fields afterwards.
  fpga::EngineStats merged = engine.stats();
  merged.records_in = stats->engine.records_in;
  merged.records_dropped = stats->engine.records_dropped;
  merged.records_bounds_dropped = stats->engine.records_bounds_dropped;
  merged.cycles = stats->kernel_cycles;
  stats->engine = merged;
  {
    MutexLock lock(&stats_mutex_);
    total_kernel_cycles_ += cycles;
  }
  return Status::OK();
}

Status FcaeDevice::ExecuteCompaction(
    const std::vector<const fpga::DeviceInput*>& inputs,
    uint64_t smallest_snapshot, bool drop_deletions,
    fpga::DeviceOutput* output, DeviceRunStats* stats,
    const fpga::KeyBounds* bounds) {
  if (static_cast<int>(inputs.size()) > config_.num_inputs) {
    return Status::InvalidArgument(
        "engine input count exceeds synthesized N");
  }

  // A job that finds another job in flight (or queued) arrived
  // back-to-back: its transfer-in was double-buffered behind the
  // predecessor's kernel, so ModelPipeline may credit overlap.
  const bool back_to_back =
      pending_jobs_.fetch_add(1, std::memory_order_acq_rel) > 0;
  struct PendingGuard {
    std::atomic<int>* pending;
    ~PendingGuard() { pending->fetch_sub(1, std::memory_order_acq_rel); }
  } pending_guard{&pending_jobs_};

  MutexLock lock(&mutex_);
  struct BusGuard {
    fpga::PcieBus* bus;
    int card;
    ~BusGuard() {
      if (bus != nullptr) bus->EndJob(card);
    }
  } bus_guard{bus_, card_id_};
  if (bus_ != nullptr) bus_->BeginJob(card_id_);

  *stats = DeviceRunStats();
  for (const fpga::DeviceInput* input : inputs) {
    stats->input_bytes += input->TotalBytes();
  }
  // The inbound burst goes on the bus before the kernel runs, so a
  // sibling card starting mid-kernel collides with it.
  const double in_micros = pcie_.TransferMicros(stats->input_bytes);
  const double in_wait =
      bus_ != nullptr ? bus_->ChargeIn(card_id_, in_micros) : 0;

  Status s = RunKernel(inputs, smallest_snapshot, drop_deletions, output,
                       stats, bounds);
  if (!s.ok()) {
    *output = fpga::DeviceOutput();  // Never hand out partial results.
    return s;
  }

  stats->kernel_micros = config_.CyclesToMicros(stats->kernel_cycles);
  stats->output_bytes = output->TotalBytes();
  stats->pcie_micros +=
      pcie_.RoundTripMicros(stats->input_bytes, stats->output_bytes);
  ModelPipeline(back_to_back, in_micros, in_wait, stats->output_bytes,
                stats->kernel_micros, stats);

  MutexLock stats_lock(&stats_mutex_);
  total_pcie_micros_ += stats->pcie_micros;
  return Status::OK();
}

Status FcaeDevice::ExecuteTournament(
    const std::vector<const fpga::DeviceInput*>& inputs,
    uint64_t smallest_snapshot, bool drop_deletions,
    fpga::DeviceOutput* output, DeviceRunStats* stats,
    const fpga::KeyBounds* bounds) {
  const bool back_to_back =
      pending_jobs_.fetch_add(1, std::memory_order_acq_rel) > 0;
  struct PendingGuard {
    std::atomic<int>* pending;
    ~PendingGuard() { pending->fetch_sub(1, std::memory_order_acq_rel); }
  } pending_guard{&pending_jobs_};

  MutexLock lock(&mutex_);
  struct BusGuard {
    fpga::PcieBus* bus;
    int card;
    ~BusGuard() {
      if (bus != nullptr) bus->EndJob(card);
    }
  } bus_guard{bus_, card_id_};
  if (bus_ != nullptr) bus_->BeginJob(card_id_);

  *stats = DeviceRunStats();
  for (const fpga::DeviceInput* input : inputs) {
    stats->input_bytes += input->TotalBytes();
  }
  // Only the initial inputs cross the link; the burst is charged up
  // front so sibling cards contend with it for the whole tournament.
  const double in_micros = pcie_.TransferMicros(stats->input_bytes);
  const double in_wait =
      bus_ != nullptr ? bus_->ChargeIn(card_id_, in_micros) : 0;

  // Rounds of up to N-input merges. `owned` keeps intermediate images
  // (the card DRAM) alive; `current` always points at this round's runs.
  // The DRAM gauge is zeroed on every exit path: a failed tournament
  // frees all its staging.
  std::vector<std::unique_ptr<fpga::DeviceInput>> owned;
  struct DramGuard {
    FcaeDevice* device;
    ~DramGuard() {
      MutexLock lock(&device->stats_mutex_);
      device->intermediate_dram_bytes_ = 0;
    }
  } dram_guard{this};
  std::vector<const fpga::DeviceInput*> current = inputs;

  const int n = config_.num_inputs;
  while (static_cast<int>(current.size()) > n) {
    std::vector<const fpga::DeviceInput*> next;
    for (size_t g = 0; g < current.size(); g += n) {
      const size_t end = std::min(current.size(), g + n);
      if (end - g == 1) {
        // Singleton group: carries over unmerged.
        next.push_back(current[g]);
        continue;
      }
      std::vector<const fpga::DeviceInput*> group(current.begin() + g,
                                                  current.begin() + end);
      fpga::DeviceOutput intermediate;
      // Intermediate passes must keep deletion markers: data for the
      // same user key may live in another group. Shard bounds apply
      // from the first pass — out-of-shard keys never reach card DRAM.
      Status s = RunKernel(group, smallest_snapshot,
                           /*drop_deletions=*/false, &intermediate, stats,
                           bounds);
      if (!s.ok()) {
        *output = fpga::DeviceOutput();
        return s;
      }

      auto restaged = std::make_unique<fpga::DeviceInput>();
      s = fpga::ConvertOutputToInput(intermediate, restaged.get());
      if (!s.ok()) {
        *output = fpga::DeviceOutput();
        return s;
      }
      {
        MutexLock stats_lock(&stats_mutex_);
        intermediate_dram_bytes_ += restaged->TotalBytes();
        intermediate_dram_peak_bytes_ =
            std::max(intermediate_dram_peak_bytes_, intermediate_dram_bytes_);
      }
      next.push_back(restaged.get());
      // Keep every intermediate alive until the merge completes: a
      // singleton group may carry a pointer from an earlier round.
      owned.push_back(std::move(restaged));
    }
    current = std::move(next);
  }

  // Final pass applies the real drop rule.
  Status s = RunKernel(current, smallest_snapshot, drop_deletions, output,
                       stats, bounds);
  if (!s.ok()) {
    *output = fpga::DeviceOutput();
    return s;
  }

  stats->kernel_micros = config_.CyclesToMicros(stats->kernel_cycles);
  stats->output_bytes = output->TotalBytes();
  // Only the initial inputs and final outputs cross the PCIe link.
  stats->pcie_micros +=
      pcie_.RoundTripMicros(stats->input_bytes, stats->output_bytes);
  ModelPipeline(back_to_back, in_micros, in_wait, stats->output_bytes,
                stats->kernel_micros, stats);

  MutexLock stats_lock(&stats_mutex_);
  total_pcie_micros_ += stats->pcie_micros;
  return Status::OK();
}

}  // namespace host
}  // namespace fcae
