#include "host/fcae_device.h"

#include <memory>

#include "fpga/output_to_input.h"

namespace fcae {
namespace host {

FcaeDevice::FcaeDevice(const fpga::EngineConfig& config,
                       const fpga::PcieModel& pcie)
    : config_(config), pcie_(pcie) {}

Status FcaeDevice::ExecuteCompaction(
    const std::vector<const fpga::DeviceInput*>& inputs,
    uint64_t smallest_snapshot, bool drop_deletions,
    fpga::DeviceOutput* output, DeviceRunStats* stats) {
  if (static_cast<int>(inputs.size()) > config_.num_inputs) {
    return Status::InvalidArgument(
        "engine input count exceeds synthesized N");
  }

  std::lock_guard<std::mutex> lock(mutex_);

  *stats = DeviceRunStats();
  for (const fpga::DeviceInput* input : inputs) {
    stats->input_bytes += input->TotalBytes();
  }

  fpga::CompactionEngine engine(config_, inputs, smallest_snapshot,
                                drop_deletions, output);
  Status s = engine.Run();
  if (!s.ok()) {
    return s;
  }

  stats->engine = engine.stats();
  stats->kernel_cycles = engine.stats().cycles;
  stats->kernel_micros = config_.CyclesToMicros(stats->kernel_cycles);
  stats->output_bytes = output->TotalBytes();
  stats->pcie_micros =
      pcie_.RoundTripMicros(stats->input_bytes, stats->output_bytes);

  total_kernel_cycles_ += stats->kernel_cycles;
  total_pcie_micros_ += stats->pcie_micros;
  kernels_launched_++;
  return Status::OK();
}

Status FcaeDevice::ExecuteTournament(
    const std::vector<const fpga::DeviceInput*>& inputs,
    uint64_t smallest_snapshot, bool drop_deletions,
    fpga::DeviceOutput* output, DeviceRunStats* stats) {
  std::lock_guard<std::mutex> lock(mutex_);

  *stats = DeviceRunStats();
  for (const fpga::DeviceInput* input : inputs) {
    stats->input_bytes += input->TotalBytes();
  }

  // Rounds of up to N-input merges. `owned` keeps intermediate images
  // (the card DRAM) alive; `current` always points at this round's runs.
  std::vector<std::unique_ptr<fpga::DeviceInput>> owned;
  std::vector<const fpga::DeviceInput*> current = inputs;

  const int n = config_.num_inputs;
  while (static_cast<int>(current.size()) > n) {
    std::vector<const fpga::DeviceInput*> next;
    for (size_t g = 0; g < current.size(); g += n) {
      const size_t end = std::min(current.size(), g + n);
      if (end - g == 1) {
        // Singleton group: carries over unmerged.
        next.push_back(current[g]);
        continue;
      }
      std::vector<const fpga::DeviceInput*> group(current.begin() + g,
                                                  current.begin() + end);
      fpga::DeviceOutput intermediate;
      // Intermediate passes must keep deletion markers: data for the
      // same user key may live in another group.
      fpga::CompactionEngine engine(config_, group, smallest_snapshot,
                                    /*drop_deletions=*/false, &intermediate);
      Status s = engine.Run();
      if (!s.ok()) return s;
      stats->kernel_cycles += engine.stats().cycles;
      stats->engine.records_in += engine.stats().records_in;
      stats->engine.records_dropped += engine.stats().records_dropped;

      auto restaged = std::make_unique<fpga::DeviceInput>();
      s = fpga::ConvertOutputToInput(intermediate, restaged.get());
      if (!s.ok()) return s;
      next.push_back(restaged.get());
      // Keep every intermediate alive until the merge completes: a
      // singleton group may carry a pointer from an earlier round.
      owned.push_back(std::move(restaged));
    }
    current = std::move(next);
  }

  // Final pass applies the real drop rule.
  fpga::CompactionEngine engine(config_, current, smallest_snapshot,
                                drop_deletions, output);
  Status s = engine.Run();
  if (!s.ok()) return s;

  stats->kernel_cycles += engine.stats().cycles;
  fpga::EngineStats final_stats = engine.stats();
  final_stats.cycles = stats->kernel_cycles;
  final_stats.records_in += stats->engine.records_in;
  final_stats.records_dropped += stats->engine.records_dropped;
  stats->engine = final_stats;

  stats->kernel_micros = config_.CyclesToMicros(stats->kernel_cycles);
  stats->output_bytes = output->TotalBytes();
  // Only the initial inputs and final outputs cross the PCIe link.
  stats->pcie_micros =
      pcie_.RoundTripMicros(stats->input_bytes, stats->output_bytes);

  total_kernel_cycles_ += stats->kernel_cycles;
  total_pcie_micros_ += stats->pcie_micros;
  kernels_launched_++;
  return Status::OK();
}

}  // namespace host
}  // namespace fcae
