#ifndef FCAE_HOST_DEVICE_SET_H_
#define FCAE_HOST_DEVICE_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "fpga/config.h"
#include "fpga/fault_injector.h"
#include "fpga/pcie_bus.h"
#include "fpga/pcie_model.h"
#include "host/device_health_monitor.h"
#include "host/fcae_device.h"

namespace fcae {

namespace obs {
class EventNotifier;
class MetricsRegistry;
class TraceRecorder;
}  // namespace obs

namespace host {

/// DeviceSet owns the M simulated cards of a multi-card deployment:
/// one FcaeDevice per card (all sharing one PcieBus, so simultaneous
/// DMA bursts contend like they would behind a real PCIe switch), one
/// DeviceHealthMonitor per card (per-card quarantine — one dead card
/// never blacklists its siblings), and optionally one fault injector
/// per card with a per-card seed.
///
/// Placement lives here so the offload executor, the benches and the
/// tests share one policy: PickCard() returns the healthy card with
/// the fewest queued bytes; when every card is quarantined it lets the
/// breakers decide (each card's Admit() may grant a probe), and only
/// when all of them deny does the caller fall back to the CPU path.
class DeviceSet {
 public:
  DeviceSet(const fpga::EngineConfig& config, int num_cards,
            const fpga::PcieModel& pcie = fpga::PcieModel(),
            const DeviceHealthOptions& health = DeviceHealthOptions());
  ~DeviceSet();

  DeviceSet(const DeviceSet&) = delete;
  DeviceSet& operator=(const DeviceSet&) = delete;

  int num_cards() const { return static_cast<int>(cards_.size()); }
  FcaeDevice* device(int card) { return cards_[card]->device.get(); }
  DeviceHealthMonitor* monitor(int card) {
    return cards_[card]->monitor.get();
  }
  const DeviceHealthMonitor* monitor(int card) const {
    return cards_[card]->monitor.get();
  }
  fpga::PcieBus* bus() { return &bus_; }

  /// Arms every card with its own deterministic fault stream: card i
  /// draws from `base` with seed base.seed + i, so fault histories
  /// diverge across cards exactly like independent hardware would.
  void InjectFaults(const fpga::DeviceFaultConfig& base);

  /// Arms (or replaces) the injector of one card only.
  void InjectFaults(int card, const fpga::DeviceFaultConfig& config);

  /// Null until InjectFaults armed the card.
  fpga::DeviceFaultInjector* injector(int card) {
    return cards_[card]->injector.get();
  }

  /// Forwards to every card's health monitor (idempotent, borrowed
  /// pointers — same contract as DeviceHealthMonitor).
  void AttachObservability(obs::MetricsRegistry* metrics,
                           obs::TraceRecorder* trace);
  void AttachNotifier(const obs::EventNotifier* notifier);

  /// Queued-byte bookkeeping for least-loaded placement. Callers add
  /// the job's estimated input bytes when a shard is bound to a card
  /// and subtract the same amount when the job leaves the card.
  void AddQueued(int card, uint64_t bytes) {
    cards_[card]->queued_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void SubQueued(int card, uint64_t bytes) {
    cards_[card]->queued_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  }
  uint64_t queued_bytes(int card) const {
    return cards_[card]->queued_bytes.load(std::memory_order_relaxed);
  }

  /// Placement policy: the non-quarantined card with the fewest queued
  /// bytes (ties break toward the lowest card id). When every card is
  /// quarantined, offers the job to each breaker in card order as a
  /// potential probe; the first Admit() grant wins. Returns -1 when
  /// every breaker denies — the caller must fall back to CPU.
  int PickCard();

 private:
  struct Card {
    std::unique_ptr<FcaeDevice> device;
    std::unique_ptr<DeviceHealthMonitor> monitor;
    std::unique_ptr<fpga::DeviceFaultInjector> injector;
    std::atomic<uint64_t> queued_bytes{0};
  };

  fpga::PcieBus bus_;
  std::vector<std::unique_ptr<Card>> cards_;
};

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_DEVICE_SET_H_
