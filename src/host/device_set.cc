#include "host/device_set.h"

#include <algorithm>

namespace fcae {
namespace host {

DeviceSet::DeviceSet(const fpga::EngineConfig& config, int num_cards,
                     const fpga::PcieModel& pcie,
                     const DeviceHealthOptions& health) {
  const int n = std::max(1, num_cards);
  cards_.reserve(n);
  for (int i = 0; i < n; i++) {
    auto card = std::make_unique<Card>();
    card->device = std::make_unique<FcaeDevice>(config, pcie, &bus_, i);
    card->monitor = std::make_unique<DeviceHealthMonitor>(health, i);
    cards_.push_back(std::move(card));
  }
}

DeviceSet::~DeviceSet() = default;

void DeviceSet::InjectFaults(const fpga::DeviceFaultConfig& base) {
  for (int i = 0; i < num_cards(); i++) {
    fpga::DeviceFaultConfig config = base;
    config.seed = base.seed + static_cast<uint32_t>(i);
    InjectFaults(i, config);
  }
}

void DeviceSet::InjectFaults(int card, const fpga::DeviceFaultConfig& config) {
  cards_[card]->injector =
      std::make_unique<fpga::DeviceFaultInjector>(config);
  cards_[card]->device->set_fault_injector(cards_[card]->injector.get());
}

void DeviceSet::AttachObservability(obs::MetricsRegistry* metrics,
                                    obs::TraceRecorder* trace) {
  for (auto& card : cards_) {
    card->monitor->AttachObservability(metrics, trace);
  }
}

void DeviceSet::AttachNotifier(const obs::EventNotifier* notifier) {
  for (auto& card : cards_) {
    card->monitor->AttachNotifier(notifier);
  }
}

int DeviceSet::PickCard() {
  int best = -1;
  uint64_t best_queued = 0;
  for (int i = 0; i < num_cards(); i++) {
    if (cards_[i]->monitor->quarantined()) continue;
    const uint64_t queued = queued_bytes(i);
    if (best < 0 || queued < best_queued) {
      best = i;
      best_queued = queued;
    }
  }
  if (best >= 0) return best;
  // Every card is quarantined: let each breaker consider the job as a
  // probe. Denials are counted by the breakers themselves.
  for (int i = 0; i < num_cards(); i++) {
    if (cards_[i]->monitor->Admit()) return i;
  }
  return -1;
}

}  // namespace host
}  // namespace fcae
