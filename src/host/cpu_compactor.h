#ifndef FCAE_HOST_CPU_COMPACTOR_H_
#define FCAE_HOST_CPU_COMPACTOR_H_

#include <cstdint>
#include <vector>

#include "fpga/device_memory.h"
#include "util/status.h"

namespace fcae {
namespace host {

/// Kernel-time statistics of a software compaction over staged images.
struct CpuCompactStats {
  double micros = 0;  // Measured wall-clock kernel time.
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t records_dropped = 0;
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;

  /// Compaction speed as defined in Section VII-B1: input bytes /
  /// kernel time (MB/s).
  double SpeedMBps() const {
    if (micros <= 0) return 0;
    return (static_cast<double>(input_bytes) / (1024.0 * 1024.0)) /
           (micros / 1e6);
  }
};

/// Knobs shared with the engine so both sides produce identical tables.
struct CpuCompactorOptions {
  size_t data_block_threshold = 4 * 1024;
  size_t sstable_threshold = 2 * 1024 * 1024;
  bool compress_output = true;
  uint64_t smallest_snapshot = ~0ull >> 8;
  bool drop_deletions = false;
};

/// The paper's CPU baseline: a single-threaded sort-merge over the same
/// memory-resident input images the device consumes, doing the full
/// work — trailer checks, Snappy decode, prefix-decompression, N-way
/// merge, validity filtering, block re-encoding with Snappy, index
/// rebuild. Kernel time excludes staging and disk I/O, matching the
/// paper's measurement ("assuming that all input and output memory are
/// already set").
Status CpuCompactImages(const std::vector<const fpga::DeviceInput*>& inputs,
                        const CpuCompactorOptions& options,
                        fpga::DeviceOutput* output, CpuCompactStats* stats);

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_CPU_COMPACTOR_H_
