#include "host/cpu_compactor.h"

#include <memory>
#include <string>

#include "compress/snappy.h"
#include "fpga/block_parse.h"
#include "lsm/dbformat.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/options.h"

namespace fcae {
namespace host {

namespace {

/// A lazy cursor over one staged input: decodes one data block at a
/// time, exactly the access pattern of LevelDB's table iterator over a
/// memory-backed file.
class ImageCursor {
 public:
  explicit ImageCursor(const fpga::DeviceInput* input) : input_(input) {}

  Status Init() { return Advance(); }

  bool Valid() const { return valid_; }
  const std::string& key() const { return entries_[pos_].key; }
  const std::string& value() const { return entries_[pos_].value; }

  Status Next() {
    pos_++;
    if (pos_ < entries_.size()) {
      return Status::OK();
    }
    return Advance();
  }

 private:
  /// Loads entries from the next data block (walking index blocks as
  /// needed).
  Status Advance() {
    valid_ = false;
    while (true) {
      if (next_handle_ < handles_.size()) {
        const auto [offset, size] = handles_[next_handle_++];
        const uint64_t stored = size + kBlockTrailerSize;
        const uint64_t start = data_base_ + offset;
        if (start + stored > input_->data_memory.size()) {
          return Status::Corruption("data block outside staged memory");
        }
        std::string contents;
        Status s = fpga::DecodeStoredBlock(
            Slice(input_->data_memory.data() + start,
                  static_cast<size_t>(stored)),
            /*verify_checksum=*/true, &contents);
        if (!s.ok()) return s;
        entries_.clear();
        s = fpga::ParseBlockEntries(contents, &entries_);
        if (!s.ok()) return s;
        pos_ = 0;
        if (entries_.empty()) continue;
        valid_ = true;
        return Status::OK();
      }
      // Next SSTable's index block.
      if (next_sstable_ >= input_->sstables.size()) {
        return Status::OK();  // Exhausted.
      }
      const fpga::SstableDescriptor& desc =
          input_->sstables[next_sstable_++];
      data_base_ = desc.data_offset;
      if (desc.index_offset + desc.index_size >
          input_->index_memory.size()) {
        return Status::Corruption("index block outside staged memory");
      }
      std::string contents;
      Status s = fpga::DecodeStoredBlock(
          Slice(input_->index_memory.data() + desc.index_offset,
                static_cast<size_t>(desc.index_size)),
          /*verify_checksum=*/true, &contents);
      if (!s.ok()) return s;
      std::vector<fpga::ParsedEntry> index_entries;
      s = fpga::ParseBlockEntries(contents, &index_entries);
      if (!s.ok()) return s;
      handles_.clear();
      next_handle_ = 0;
      for (const fpga::ParsedEntry& e : index_entries) {
        Slice handle_input(e.value);
        BlockHandle handle;
        if (!handle.DecodeFrom(&handle_input).ok()) {
          return Status::Corruption("bad handle in staged index block");
        }
        handles_.emplace_back(handle.offset(), handle.size());
      }
    }
  }

  const fpga::DeviceInput* input_;
  size_t next_sstable_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> handles_;
  size_t next_handle_ = 0;
  uint64_t data_base_ = 0;
  std::vector<fpga::ParsedEntry> entries_;
  size_t pos_ = 0;
  bool valid_ = false;
};

/// Output-side builder mirroring the engine's encoder (blocks + index
/// entries + table rollover) so the two paths emit identical tables.
class ImageTableWriter {
 public:
  ImageTableWriter(const CpuCompactorOptions& options,
                   fpga::DeviceOutput* output)
      : options_(options),
        output_(output),
        icmp_(BytewiseComparator()) {
    block_options_.comparator = &icmp_;
    block_options_.block_restart_interval = 16;
    builder_ = std::make_unique<BlockBuilder>(&block_options_);
  }

  void Add(const std::string& key, const std::string& value) {
    if (!table_open_) {
      table_open_ = true;
      table_.smallest_key = key;
    }
    last_key_ = key;
    table_.largest_key = key;
    table_.num_entries++;
    builder_->Add(key, value);
    if (builder_->CurrentSizeEstimate() >= options_.data_block_threshold) {
      FlushBlock();
      if (table_.data_memory.size() >= options_.sstable_threshold) {
        FinishTable();
      }
    }
  }

  void Finalize() {
    FlushBlock();
    FinishTable();
  }

 private:
  void FlushBlock() {
    if (builder_->empty()) return;
    Slice raw = builder_->Finish();
    Slice contents;
    CompressionType type = kNoCompression;
    if (options_.compress_output) {
      snappy::Compress(raw.data(), raw.size(), &scratch_);
      if (scratch_.size() < raw.size() - (raw.size() / 8u)) {
        contents = scratch_;
        type = kSnappyCompression;
      } else {
        contents = raw;
      }
    } else {
      contents = raw;
    }

    fpga::OutputIndexEntry entry;
    entry.last_key = last_key_;
    entry.offset = table_.data_memory.size();
    entry.size = contents.size();
    table_.data_memory.append(contents.data(), contents.size());
    char trailer[kBlockTrailerSize];
    trailer[0] = static_cast<char>(type);
    uint32_t crc = crc32c::Value(contents.data(), contents.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    table_.data_memory.append(trailer, kBlockTrailerSize);
    table_.index_entries.push_back(std::move(entry));
    builder_->Reset();
  }

  void FinishTable() {
    if (!table_open_) return;
    output_->tables.push_back(std::move(table_));
    table_ = fpga::DeviceOutputTable();
    table_open_ = false;
  }

  const CpuCompactorOptions& options_;
  fpga::DeviceOutput* output_;
  InternalKeyComparator icmp_;
  Options block_options_;
  std::unique_ptr<BlockBuilder> builder_;
  fpga::DeviceOutputTable table_;
  bool table_open_ = false;
  std::string last_key_;
  std::string scratch_;
};

int CompareInternalKeys(const std::string& a, const std::string& b) {
  Slice ua = ExtractUserKey(a);
  Slice ub = ExtractUserKey(b);
  int r = ua.Compare(ub);
  if (r != 0) return r;
  uint64_t ma = ExtractMark(a);
  uint64_t mb = ExtractMark(b);
  if (ma > mb) return -1;
  if (ma < mb) return +1;
  return 0;
}

}  // namespace

Status CpuCompactImages(const std::vector<const fpga::DeviceInput*>& inputs,
                        const CpuCompactorOptions& options,
                        fpga::DeviceOutput* output, CpuCompactStats* stats) {
  Env* env = Env::Default();
  const uint64_t start_micros = env->NowMicros();

  std::vector<std::unique_ptr<ImageCursor>> cursors;
  for (const fpga::DeviceInput* input : inputs) {
    stats->input_bytes += input->TotalBytes();
    auto cursor = std::make_unique<ImageCursor>(input);
    Status s = cursor->Init();
    if (!s.ok()) return s;
    cursors.push_back(std::move(cursor));
  }

  ImageTableWriter writer(options, output);

  // Validity Check state (identical rule to fpga::Comparer::CheckDrop).
  std::string current_user_key;
  bool has_current_user_key = false;
  uint64_t last_sequence_for_key = kMaxSequenceNumber;

  while (true) {
    // Select the smallest head (linear scan: the CPU analogue of the
    // compare tree; N is tiny).
    int best = -1;
    for (size_t i = 0; i < cursors.size(); i++) {
      if (!cursors[i]->Valid()) continue;
      if (best < 0 ||
          CompareInternalKeys(cursors[i]->key(), cursors[best]->key()) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;

    const std::string& key = cursors[best]->key();
    stats->records_in++;

    bool drop = false;
    ParsedInternalKey parsed;
    if (ParseInternalKey(key, &parsed)) {
      if (!has_current_user_key ||
          parsed.user_key.Compare(Slice(current_user_key)) != 0) {
        current_user_key.assign(parsed.user_key.data(),
                                parsed.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }
      if (last_sequence_for_key <= options.smallest_snapshot) {
        drop = true;
      } else if (parsed.type == kTypeDeletion &&
                 parsed.sequence <= options.smallest_snapshot &&
                 options.drop_deletions) {
        drop = true;
      }
      last_sequence_for_key = parsed.sequence;
    } else {
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    }

    if (drop) {
      stats->records_dropped++;
    } else {
      writer.Add(key, cursors[best]->value());
      stats->records_out++;
    }

    Status s = cursors[best]->Next();
    if (!s.ok()) return s;
  }

  writer.Finalize();

  for (const fpga::DeviceOutputTable& t : output->tables) {
    stats->output_bytes += t.data_memory.size();
  }
  stats->micros = static_cast<double>(env->NowMicros() - start_micros);
  return Status::OK();
}

}  // namespace host
}  // namespace fcae
