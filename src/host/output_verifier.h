#ifndef FCAE_HOST_OUTPUT_VERIFIER_H_
#define FCAE_HOST_OUTPUT_VERIFIER_H_

#include <cstdint>

#include "fpga/device_memory.h"
#include "lsm/dbformat.h"
#include "util/status.h"

namespace fcae {
namespace host {

struct OutputVerifyStats {
  uint64_t tables = 0;
  uint64_t blocks = 0;
  uint64_t entries = 0;
};

/// Verifies one device-returned output table before it can become an
/// SSTable. Invariants checked:
///  - every index entry's block handle lies inside the returned data
///    memory, handles are ascending and non-overlapping;
///  - every data block's stored trailer CRC32C matches its bytes (and
///    compressed blocks decompress cleanly);
///  - internal keys are strictly increasing across the whole table
///    (user key ascending, mark descending — no duplicates);
///  - each block's last key equals its index entry's separator;
///  - the first/last keys match MetaOut's smallest/largest bounds, and
///    the record count matches MetaOut's num_entries.
/// Any violation returns Status::Corruption: a silently corrupt device
/// result can never reach the manifest.
Status VerifyDeviceOutputTable(const fpga::DeviceOutputTable& table,
                               const InternalKeyComparator& icmp,
                               OutputVerifyStats* stats);

/// Verifies every table of a device output (see above).
Status VerifyDeviceOutput(const fpga::DeviceOutput& output,
                          const InternalKeyComparator& icmp,
                          OutputVerifyStats* stats);

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_OUTPUT_VERIFIER_H_
