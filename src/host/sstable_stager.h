#ifndef FCAE_HOST_SSTABLE_STAGER_H_
#define FCAE_HOST_SSTABLE_STAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/config.h"
#include "fpga/device_memory.h"
#include "util/status.h"

namespace fcae {

class Env;
class FilterPolicy;
class RateLimiter;

namespace host {

/// Builds the device input images of Section VI-B from on-disk
/// SSTables: for each file, the index block (as stored, including its
/// compression trailer) goes to Index Block Memory and the file's
/// data-block region goes verbatim to Data Block Memory, so the
/// BlockHandles inside the index address the staged region directly and
/// the storage format needs no modification.
class SstableStager {
 public:
  explicit SstableStager(Env* env) : env_(env) {}

  /// Appends the table stored in `fname` to `input` as its next
  /// SSTable. Tables in one DeviceInput must form a sorted run in the
  /// order added (paper Section IV step 2: a level's tables are
  /// concatenated into one big input).
  ///
  /// `bounds`, when non-null and active, trims the staging to the data
  /// blocks that can hold user keys in (lower, upper]: the contiguous
  /// run of overlapping blocks is staged (trimming is block-granular
  /// and conservative — boundary blocks stay, and the engine's
  /// Key-Value Transfer filters the leaked records) together with a
  /// rebuilt index block whose handles are rebased to the trimmed
  /// region. A table entirely outside the bounds stages nothing and
  /// adds no descriptor.
  Status AddTable(const std::string& fname, fpga::DeviceInput* input,
                  const fpga::KeyBounds* bounds = nullptr);

  /// Convenience: builds one DeviceInput from a run of files.
  Status StageRun(const std::vector<std::string>& fnames,
                  fpga::DeviceInput* input,
                  const fpga::KeyBounds* bounds = nullptr);

 private:
  Env* env_;
};

/// Assembles a standard SSTable file from one device output table: the
/// engine's data blocks verbatim, a host-built metaindex + index block
/// from the returned index entries, and the footer (the paper's
/// Section V-B: "the host is in charge of combining data blocks with
/// index blocks into new formatted SSTables"). When `filter_policy` is
/// non-null the host additionally rebuilds the filter block by decoding
/// the returned data blocks (the engine itself does not compute
/// filters), so offloaded compactions keep the same read-path behaviour
/// as software ones. Returns the final file size in *file_size.
/// `rate_limiter`, when non-null, throttles the writeback on the
/// low-priority lane (assembly is compaction output, same as the CPU
/// executor's). When `file_checksum` is non-null it receives the
/// whole-file crc32c of the assembled image — the offload install
/// site's contribution to the manifest's integrity ground truth,
/// computed over the *host-assembled* bytes, after the data blocks
/// crossed the DMA boundary back from the device.
Status AssembleTableFile(Env* env, const std::string& fname,
                         const fpga::DeviceOutputTable& table,
                         uint64_t* file_size,
                         const FilterPolicy* filter_policy = nullptr,
                         RateLimiter* rate_limiter = nullptr,
                         uint32_t* file_checksum = nullptr);

}  // namespace host
}  // namespace fcae

#endif  // FCAE_HOST_SSTABLE_STAGER_H_
