#include "lsm/filename.h"

#include <cassert>
#include <cstdio>

#include "util/crash_env.h"
#include "util/env.h"

namespace fcae {

namespace {

std::string MakeFileName(const std::string& dbname, uint64_t number,
                         const char* suffix) {
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

}  // namespace

std::string LogFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "ldb");
}

std::string DescriptorFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  char buf[100];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string LockFileName(const std::string& dbname) { return dbname + "/LOCK"; }

std::string TempFileName(const std::string& dbname, uint64_t number) {
  assert(number > 0);
  return MakeFileName(dbname, number, "dbtmp");
}

// Owned filenames have the form:
//    dbname/CURRENT
//    dbname/LOCK
//    dbname/LOG
//    dbname/MANIFEST-[0-9]+
//    dbname/[0-9]+.(log|ldb|dbtmp)
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  Slice rest(filename);
  if (rest == Slice("CURRENT")) {
    *number = 0;
    *type = FileType::kCurrentFile;
  } else if (rest == Slice("LOCK")) {
    *number = 0;
    *type = FileType::kDBLockFile;
  } else if (rest == Slice("LOG") || rest == Slice("LOG.old")) {
    *number = 0;
    *type = FileType::kInfoLogFile;
  } else if (rest.StartsWith("MANIFEST-")) {
    rest.RemovePrefix(strlen("MANIFEST-"));
    uint64_t num = 0;
    if (rest.empty()) return false;
    for (size_t i = 0; i < rest.size(); i++) {
      char c = rest[i];
      if (c < '0' || c > '9') return false;
      num = num * 10 + (c - '0');
    }
    *type = FileType::kDescriptorFile;
    *number = num;
  } else {
    // Trailing-number files: NNNNNN.suffix
    uint64_t num = 0;
    size_t i = 0;
    while (i < rest.size() && rest[i] >= '0' && rest[i] <= '9') {
      num = num * 10 + (rest[i] - '0');
      i++;
    }
    if (i == 0) return false;
    Slice suffix(rest.data() + i, rest.size() - i);
    if (suffix == Slice(".log")) {
      *type = FileType::kLogFile;
    } else if (suffix == Slice(".ldb") || suffix == Slice(".sst")) {
      *type = FileType::kTableFile;
    } else if (suffix == Slice(".dbtmp")) {
      *type = FileType::kTempFile;
    } else {
      return false;
    }
    *number = num;
  }
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number) {
  // Remove leading "dbname/" and add newline to the manifest file name.
  std::string manifest = DescriptorFileName(dbname, descriptor_number);
  Slice contents = manifest;
  assert(contents.StartsWith(dbname + "/"));
  contents.RemovePrefix(dbname.size() + 1);
  std::string tmp = TempFileName(dbname, descriptor_number);
  // Durable install protocol: make the temp file's contents durable
  // before the rename publishes it, then fsync the directory so the
  // rename itself survives a crash. Without the final SyncDir a power
  // cut could leave CURRENT pointing at the previous manifest even
  // though LogAndApply already returned success.
  Status s = WriteStringToFileSync(env, contents.ToString() + "\n", tmp);
  FCAE_CRASH_POINT("current:after_tmp_write");
  if (s.ok()) {
    s = env->RenameFile(tmp, CurrentFileName(dbname));
  }
  if (s.ok()) {
    FCAE_CRASH_POINT("current:after_rename");
    s = env->SyncDir(dbname);
  }
  if (!s.ok()) {
    // Best-effort tmp cleanup; the install failure itself is propagated.
    env->RemoveFile(tmp).IgnoreError();
  }
  return s;
}

}  // namespace fcae
