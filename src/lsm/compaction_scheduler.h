#ifndef FCAE_LSM_COMPACTION_SCHEDULER_H_
#define FCAE_LSM_COMPACTION_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

class Env;
class InternalKeyComparator;
struct FileMetaData;

namespace obs {
class MetricsRegistry;
}

/// Bookkeeping for the DB's parallel background work (DESIGN.md §8):
/// a dedicated flush lane plus a pool of up to `max_workers` compaction
/// workers running concurrently on disjoint level pairs.
///
/// Job states: a compaction worker is *scheduled* from dispatch until it
/// returns; it is *running* while it owns a claimed level pair (between
/// BeginCompaction and EndCompaction). A claimed compaction at level L
/// occupies levels {L, L+1}; a flush installing above L0 reserves just
/// its target level. The busy-level bitmask is what keeps concurrent
/// jobs disjoint.
///
/// Like VersionSet, the scheduler is not internally synchronized: every
/// non-static method must be called with the DB mutex held (the mutex
/// the wake-up CondVar passed to the constructor is bound to). Dispatch
/// via Env::SchedulePool only enqueues, so it is safe under the mutex.
class CompactionScheduler {
 public:
  /// `wakeup` is the DB's background-work CondVar; UnlockManifest()
  /// signals it so manifest waiters recheck. `metrics` may be null
  /// (unit tests); `env` may be null if Schedule* is never called.
  CompactionScheduler(Env* env, CondVar* wakeup, int max_workers,
                      obs::MetricsRegistry* metrics);

  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  int max_workers() const { return max_workers_; }

  // --- Flush lane (one dedicated thread) ---

  bool flush_scheduled() const { return flush_scheduled_; }

  /// Marks the flush slot taken and enqueues fn(arg) on the flush pool.
  void ScheduleFlush(void (*fn)(void*), void* arg);

  /// Called by the flush worker when it returns.
  void FlushFinished();

  // --- Scrub lane (one dedicated low-priority thread) ---

  bool scrub_scheduled() const { return scrub_scheduled_; }

  /// Marks the scrub slot taken and enqueues fn(arg) on the scrub pool.
  /// The integrity scrubber (DESIGN.md §14) runs here: one thread, and
  /// its I/O rides the RateLimiter's low lane, so scrubbing never
  /// competes with flushes or compactions for more than leftover
  /// bandwidth.
  void ScheduleScrub(void (*fn)(void*), void* arg);

  /// Called by the scrub worker when it returns.
  void ScrubFinished();

  // --- Compaction worker pool ---

  /// True if another worker may be dispatched (scheduled < max).
  bool CanScheduleCompaction() const {
    return scheduled_workers_ < max_workers_;
  }

  /// Takes a worker slot and enqueues fn(arg) on the compaction pool.
  void ScheduleCompaction(void (*fn)(void*), void* arg);

  /// Called by a compaction worker when it returns (whether or not it
  /// found work).
  void WorkerFinished();

  /// Workers dispatched but not yet holding a level claim. Used to
  /// decide how many more workers to dispatch for pending work.
  int idle_scheduled_workers() const {
    return scheduled_workers_ - running_compactions_;
  }

  int scheduled_workers() const { return scheduled_workers_; }
  int running_compactions() const { return running_compactions_; }

  // --- Level claims (disjointness) ---

  uint32_t busy_levels() const { return busy_levels_; }

  /// True iff a compaction merging level -> level+1 may start now.
  bool LevelsFree(int level) const {
    return (busy_levels_ & (3u << level)) == 0;
  }

  /// Claims {level, level+1} for a compaction. Requires LevelsFree().
  void BeginCompaction(int level);
  void EndCompaction(int level);

  /// True iff a memtable flush may target `level` (> 0) without landing
  /// inside an in-flight compaction's level pair.
  bool FlushLevelFree(int level) const {
    return (busy_levels_ & (1u << level)) == 0;
  }

  /// Reserves `level` (> 0) for a flush install; released after the
  /// version edit lands.
  void ReserveFlushLevel(int level);
  void ReleaseFlushLevel(int level);

  /// True iff no in-flight job occupies `level` itself (a compaction at
  /// level-1 or level, a flush targeting level, or another repair). A
  /// corruption repair replaces one file within `level`, so a
  /// single-level claim is enough to keep its install edit from racing
  /// a job that adds or removes files there (DESIGN.md §14).
  bool RepairLevelFree(int level) const {
    return (busy_levels_ & (1u << level)) == 0;
  }

  /// Claims `level` for a repair install; requires RepairLevelFree().
  void BeginRepair(int level);
  void EndRepair(int level);

  // --- Manifest serialization ---

  /// VersionSet::LogAndApply drops the DB mutex during the MANIFEST
  /// write, so concurrent calls would interleave records. Every caller
  /// brackets LogAndApply with Lock/UnlockManifest; LockManifest waits
  /// on the wake-up CondVar while another job holds the manifest.
  void LockManifest();
  void UnlockManifest();

  // --- Shutdown / introspection ---

  /// True while any dispatched background work (flush, compaction
  /// worker, or scrub pass) has not finished; ~DBImpl drains on this.
  bool HasBackgroundWork() const {
    return flush_scheduled_ || scrub_scheduled_ || scheduled_workers_ > 0;
  }

  /// Accounting for a job split into `shards` sub-compactions.
  void RecordShardedJob(int shards);

  /// One line for DB::GetProperty("fcae.scheduler").
  std::string DebugString() const;

  /// Plans user-key shard boundaries for splitting a compaction whose
  /// level+1 inputs are `parents` into at most `max_shards` key-disjoint
  /// sub-compactions. Boundaries are drawn from the largest user keys
  /// of the level+1 input files (so each shard reads a contiguous file
  /// run); shard i covers user keys (boundary[i-1], boundary[i]], with
  /// the first/last shard unbounded below/above. Returns an empty
  /// vector (no sharding) when the job is too small to split. Pure
  /// function; needs no lock.
  static std::vector<std::string> PlanShardBoundaries(
      const std::vector<FileMetaData*>& parents,
      const InternalKeyComparator& icmp, int max_shards);

 private:
  Env* const env_;
  CondVar* const wakeup_;
  const int max_workers_;

  // All mutable state below is guarded by the DB mutex (see class
  // comment); annotations cannot name a caller-owned lock.
  bool flush_scheduled_ = false;
  bool scrub_scheduled_ = false;
  int scheduled_workers_ = 0;
  int running_compactions_ = 0;
  uint32_t busy_levels_ = 0;
  bool manifest_busy_ = false;

  // Lifetime totals (also mirrored to metrics when available).
  int64_t flushes_started_ = 0;
  int64_t scrubs_started_ = 0;
  int64_t compactions_started_ = 0;
  int64_t sharded_jobs_ = 0;
  int64_t shards_run_ = 0;
  int64_t manifest_waits_ = 0;

  obs::MetricsRegistry* const metrics_;  // May be null.

  void UpdateGauges();
};

}  // namespace fcae

#endif  // FCAE_LSM_COMPACTION_SCHEDULER_H_
