#include "lsm/compaction_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "lsm/version_set.h"
#include "obs/metrics.h"
#include "util/crash_env.h"
#include "util/env.h"

namespace fcae {

namespace {
const char* kFlushPool = "fcae-flush";
const char* kCompactPool = "fcae-compact";
const char* kScrubPool = "fcae-scrub";
}  // namespace

CompactionScheduler::CompactionScheduler(Env* env, CondVar* wakeup,
                                         int max_workers,
                                         obs::MetricsRegistry* metrics)
    : env_(env),
      wakeup_(wakeup),
      max_workers_(std::max(1, max_workers)),
      metrics_(metrics) {
  UpdateGauges();
}

void CompactionScheduler::ScheduleFlush(void (*fn)(void*), void* arg) {
  assert(!flush_scheduled_);
  flush_scheduled_ = true;
  flushes_started_++;
  if (metrics_ != nullptr) {
    metrics_->counter("scheduler.flushes_started")->Increment();
  }
  UpdateGauges();
  env_->SchedulePool(kFlushPool, 1, fn, arg);
}

void CompactionScheduler::FlushFinished() {
  assert(flush_scheduled_);
  flush_scheduled_ = false;
  UpdateGauges();
}

void CompactionScheduler::ScheduleScrub(void (*fn)(void*), void* arg) {
  assert(!scrub_scheduled_);
  scrub_scheduled_ = true;
  scrubs_started_++;
  if (metrics_ != nullptr) {
    metrics_->counter("scheduler.scrubs_started")->Increment();
  }
  UpdateGauges();
  env_->SchedulePool(kScrubPool, 1, fn, arg);
}

void CompactionScheduler::ScrubFinished() {
  assert(scrub_scheduled_);
  scrub_scheduled_ = false;
  UpdateGauges();
}

void CompactionScheduler::ScheduleCompaction(void (*fn)(void*), void* arg) {
  assert(scheduled_workers_ < max_workers_);
  scheduled_workers_++;
  UpdateGauges();
  env_->SchedulePool(kCompactPool, max_workers_, fn, arg);
}

void CompactionScheduler::WorkerFinished() {
  assert(scheduled_workers_ > 0);
  scheduled_workers_--;
  UpdateGauges();
}

void CompactionScheduler::BeginCompaction(int level) {
  assert(LevelsFree(level));
  busy_levels_ |= (3u << level);
  running_compactions_++;
  compactions_started_++;
  if (metrics_ != nullptr) {
    metrics_->counter("scheduler.compactions_started")->Increment();
  }
  UpdateGauges();
}

void CompactionScheduler::EndCompaction(int level) {
  assert((busy_levels_ & (3u << level)) == (3u << level));
  assert(running_compactions_ > 0);
  busy_levels_ &= ~(3u << level);
  running_compactions_--;
  UpdateGauges();
}

void CompactionScheduler::ReserveFlushLevel(int level) {
  assert(level > 0);
  assert(FlushLevelFree(level));
  busy_levels_ |= (1u << level);
  UpdateGauges();
}

void CompactionScheduler::ReleaseFlushLevel(int level) {
  assert(level > 0);
  assert((busy_levels_ & (1u << level)) != 0);
  busy_levels_ &= ~(1u << level);
  UpdateGauges();
}

void CompactionScheduler::BeginRepair(int level) {
  assert(RepairLevelFree(level));
  busy_levels_ |= (1u << level);
  UpdateGauges();
}

void CompactionScheduler::EndRepair(int level) {
  assert((busy_levels_ & (1u << level)) != 0);
  busy_levels_ &= ~(1u << level);
  UpdateGauges();
}

void CompactionScheduler::LockManifest() {
  while (manifest_busy_) {
    manifest_waits_++;
    if (metrics_ != nullptr) {
      metrics_->counter("scheduler.manifest_waits")->Increment();
    }
    wakeup_->Wait();
  }
  manifest_busy_ = true;
  // Holding the manifest lock means a version install is imminent; a
  // crash here must leave the previous manifest as the durable truth.
  FCAE_CRASH_POINT("scheduler:manifest_locked");
}

void CompactionScheduler::UnlockManifest() {
  assert(manifest_busy_);
  manifest_busy_ = false;
  wakeup_->SignalAll();
}

void CompactionScheduler::RecordShardedJob(int shards) {
  sharded_jobs_++;
  shards_run_ += shards;
  if (metrics_ != nullptr) {
    metrics_->counter("scheduler.sharded_jobs")->Increment();
    metrics_->counter("scheduler.shards_run")
        ->Increment(static_cast<uint64_t>(shards));
  }
}

void CompactionScheduler::UpdateGauges() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("scheduler.workers_scheduled")->Set(scheduled_workers_);
  metrics_->gauge("scheduler.workers_running")->Set(running_compactions_);
  metrics_->gauge("scheduler.busy_levels")
      ->Set(static_cast<int64_t>(busy_levels_));
  metrics_->gauge("scheduler.flush_scheduled")->Set(flush_scheduled_ ? 1 : 0);
  metrics_->gauge("scheduler.scrub_scheduled")->Set(scrub_scheduled_ ? 1 : 0);
}

std::string CompactionScheduler::DebugString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "scheduler{workers=%d/%d running=%d busy-levels=0x%x flush=%d "
      "scrub=%d scrubs=%lld "
      "flushes=%lld compactions=%lld sharded-jobs=%lld shards=%lld "
      "manifest-waits=%lld}",
      scheduled_workers_, max_workers_, running_compactions_, busy_levels_,
      flush_scheduled_ ? 1 : 0, scrub_scheduled_ ? 1 : 0,
      static_cast<long long>(scrubs_started_),
      static_cast<long long>(flushes_started_),
      static_cast<long long>(compactions_started_),
      static_cast<long long>(sharded_jobs_),
      static_cast<long long>(shards_run_),
      static_cast<long long>(manifest_waits_));
  return std::string(buf);
}

std::vector<std::string> CompactionScheduler::PlanShardBoundaries(
    const std::vector<FileMetaData*>& parents,
    const InternalKeyComparator& icmp, int max_shards) {
  std::vector<std::string> boundaries;
  if (max_shards <= 1) return boundaries;
  // Boundaries come from the level+1 file grid: each candidate is the
  // largest user key of one file, so every shard reads a contiguous,
  // roughly equal run of level+1 files. Fewer than two files means
  // there is nothing to split.
  const int n = static_cast<int>(parents.size());
  if (n < 2) return boundaries;

  const int shards = std::min(max_shards, n);
  const Comparator* ucmp = icmp.user_comparator();
  for (int s = 1; s < shards; s++) {
    // Last file of shard s-1: evenly split the parent file run.
    const int file_index = (s * n) / shards - 1;
    Slice key = parents[file_index]->largest.user_key();
    // Boundaries must be strictly increasing; duplicates can appear
    // when many parents share a largest user key.
    if (!boundaries.empty() &&
        ucmp->Compare(key, Slice(boundaries.back())) <= 0) {
      continue;
    }
    boundaries.emplace_back(key.data(), key.size());
  }
  return boundaries;
}

}  // namespace fcae
