#ifndef FCAE_LSM_DB_H_
#define FCAE_LSM_DB_H_

#include <cstdint>
#include <string>

#include "util/options.h"
#include "util/slice.h"
#include "util/status.h"

namespace fcae {

class Iterator;
class WriteBatch;

/// Abstract handle to a particular state of a DB; created by
/// DB::GetSnapshot() and released with DB::ReleaseSnapshot().
class Snapshot {
 protected:
  virtual ~Snapshot() = default;
};

/// A range of keys [start, limit).
struct Range {
  Range() = default;
  Range(const Slice& s, const Slice& l) : start(s), limit(l) {}

  Slice start;
  Slice limit;
};

/// A DB is a persistent ordered map from keys to values, safe for
/// concurrent access from multiple threads without external
/// synchronization. This is the LevelDB-compatible public interface the
/// paper integrates the FPGA compaction engine into.
class DB {
 public:
  /// Opens the database named `name`; stores a heap-allocated DB in
  /// *dbptr on success. The caller deletes *dbptr when done.
  [[nodiscard]] static Status Open(const Options& options,
                                   const std::string& name,
                     DB** dbptr);

  DB() = default;
  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual ~DB();

  /// Sets the database entry for `key` to `value`.
  [[nodiscard]] virtual Status Put(const WriteOptions& options,
                                   const Slice& key, const Slice& value) = 0;

  /// Removes the database entry (if any) for `key`. It is not an error
  /// if `key` is absent.
  [[nodiscard]] virtual Status Delete(const WriteOptions& options,
                                      const Slice& key) = 0;

  /// Applies the specified updates to the database atomically.
  [[nodiscard]] virtual Status Write(const WriteOptions& options,
                                     WriteBatch* updates) = 0;

  /// If the database contains an entry for `key`, stores the value in
  /// *value and returns OK; returns a NotFound status otherwise.
  [[nodiscard]] virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  /// Returns a heap-allocated iterator over the database contents. The
  /// caller deletes the iterator before the DB.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  /// Returns a handle to the current DB state; iterators and Gets made
  /// with this snapshot observe a stable view.
  virtual const Snapshot* GetSnapshot() = 0;

  /// Releases a previously acquired snapshot.
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// DB implementations export properties about their state via this
  /// method. Known properties:
  ///   "fcae.num-files-at-level<N>"  — number of files at level N
  ///   "fcae.stats"                  — compaction statistics
  ///   "fcae.sstables"               — per-level file listing
  ///   "fcae.approximate-memory-usage" — memtable memory
  ///   "fcae.background-error"       — error state machine (ok/soft/hard)
  ///   "fcae.num-quarantined-files"  — tables quarantined for corruption
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  /// Attempts to clear a *soft* (retryable-I/O) background error and
  /// restart flushes/compactions: the DB proves storage healthy by
  /// durably installing a fresh manifest, reclaims orphaned outputs,
  /// and becomes writable again. Soft errors also auto-resume with
  /// bounded backoff; call this to retry immediately or after the
  /// automatic attempts are exhausted. Returns the sticky error if the
  /// state is a hard error (e.g. corruption), which only a reopen —
  /// and possibly a repair — can clear. Default: NotSupported.
  [[nodiscard]] virtual Status Resume();

  /// Runs one full integrity-scrub cycle synchronously (DESIGN.md §14):
  /// every live table is verified — whole-file checksum against the
  /// manifest, per-block CRCs, key order, and manifest bounds — and any
  /// table that fails is quarantined (reads route around it) and
  /// repaired by salvaging its clean blocks. Returns OK when the cycle
  /// completed, even if corruption was found and healed; check the
  /// `scrub.*` / `integrity.*` metrics or listener events for what
  /// happened. The periodic scrubber (Options::scrub_interval_seconds)
  /// runs the same cycle in the background. Default: NotSupported.
  [[nodiscard]] virtual Status ScrubNow();

  /// For each range [i], stores the approximate file-system space used
  /// in sizes[i].
  virtual void GetApproximateSizes(const Range* range, int n,
                                   uint64_t* sizes) = 0;

  /// Compacts the underlying storage for the key range [*begin, *end]
  /// (nullptr = unbounded). Blocks until done.
  virtual void CompactRange(const Slice* begin, const Slice* end) = 0;
};

/// Deletes the contents of the specified database. Be very careful.
Status DestroyDB(const std::string& name, const Options& options);

}  // namespace fcae

#endif  // FCAE_LSM_DB_H_
