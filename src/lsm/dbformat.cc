#include "lsm/dbformat.h"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace fcae {

void AppendInternalKey(std::string* result, const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

std::string ParsedInternalKey::DebugString() const {
  std::ostringstream ss;
  ss << '\'' << user_key.ToString() << "' @ " << sequence << " : "
     << static_cast<int>(type);
  return ss.str();
}

std::string InternalKey::DebugString() const {
  ParsedInternalKey parsed;
  if (ParseInternalKey(rep_, &parsed)) {
    return parsed.DebugString();
  }
  std::ostringstream ss;
  ss << "(bad)" << rep_;
  return ss.str();
}

const char* InternalKeyComparator::Name() const {
  return "fcae.InternalKeyComparator";
}

int InternalKeyComparator::Compare(const Slice& akey, const Slice& bkey) const {
  // Order by:
  //    increasing user key (according to user-supplied comparator)
  //    decreasing sequence number
  //    decreasing type (though sequence# should be enough to disambiguate)
  int r = user_comparator_->Compare(ExtractUserKey(akey), ExtractUserKey(bkey));
  if (r == 0) {
    const uint64_t anum = ExtractMark(akey);
    const uint64_t bnum = ExtractMark(bkey);
    if (anum > bnum) {
      r = -1;
    } else if (anum < bnum) {
      r = +1;
    }
  }
  return r;
}

void InternalKeyComparator::FindShortestSeparator(std::string* start,
                                                  const Slice& limit) const {
  // Attempt to shorten the user portion of the key.
  Slice user_start = ExtractUserKey(*start);
  Slice user_limit = ExtractUserKey(limit);
  std::string tmp(user_start.data(), user_start.size());
  user_comparator_->FindShortestSeparator(&tmp, user_limit);
  if (tmp.size() < user_start.size() &&
      user_comparator_->Compare(user_start, tmp) < 0) {
    // User key has become shorter physically, but larger logically.
    // Tack on the earliest possible number to the shortened user key.
    PutFixed64(&tmp,
               PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
    assert(this->Compare(*start, tmp) < 0);
    assert(this->Compare(tmp, limit) < 0);
    start->swap(tmp);
  }
}

void InternalKeyComparator::FindShortSuccessor(std::string* key) const {
  Slice user_key = ExtractUserKey(*key);
  std::string tmp(user_key.data(), user_key.size());
  user_comparator_->FindShortSuccessor(&tmp);
  if (tmp.size() < user_key.size() &&
      user_comparator_->Compare(user_key, tmp) < 0) {
    // User key has become shorter physically, but larger logically.
    PutFixed64(&tmp,
               PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
    assert(this->Compare(*key, tmp) < 0);
    key->swap(tmp);
  }
}

const char* InternalFilterPolicy::Name() const { return user_policy_->Name(); }

void InternalFilterPolicy::CreateFilter(const Slice* keys, int n,
                                        std::string* dst) const {
  // We rely on the fact that the code in table.cc does not mind us
  // adjusting keys[].
  Slice* mkey = const_cast<Slice*>(keys);
  for (int i = 0; i < n; i++) {
    mkey[i] = ExtractUserKey(keys[i]);
  }
  user_policy_->CreateFilter(keys, n, dst);
}

bool InternalFilterPolicy::KeyMayMatch(const Slice& key,
                                       const Slice& f) const {
  return user_policy_->KeyMayMatch(ExtractUserKey(key), f);
}

LookupKey::LookupKey(const Slice& user_key, SequenceNumber s) {
  size_t usize = user_key.size();
  size_t needed = usize + 13;  // A conservative estimate.
  char* dst;
  if (needed <= sizeof(space_)) {
    dst = space_;
  } else {
    dst = new char[needed];
  }
  start_ = dst;
  dst = EncodeVarint32(dst, static_cast<uint32_t>(usize + 8));
  kstart_ = dst;
  std::memcpy(dst, user_key.data(), usize);
  dst += usize;
  EncodeFixed64(dst, PackSequenceAndType(s, kValueTypeForSeek));
  dst += 8;
  end_ = dst;
}

}  // namespace fcae
