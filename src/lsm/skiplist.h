#ifndef FCAE_LSM_SKIPLIST_H_
#define FCAE_LSM_SKIPLIST_H_

// The MemTable (Fig. 1 of the paper) is backed by this skiplist.
//
// Thread safety:
//  - Writes require external synchronization (one writer at a time).
//    In the running system that serialization is NOT DBImpl::mutex_:
//    the writer at the front of the DBImpl write queue inserts with the
//    mutex released, and the front-of-queue role itself is the mutual
//    exclusion (see DBImpl::Write and the threading section of
//    DESIGN.md). This is why the list carries no capability
//    annotations — the guard is a protocol, not a lock.
//  - Reads require a guarantee that the SkipList will not be destroyed
//    while the read is in progress, and need no other synchronization;
//    the invariants below make lock-free reads safe.
//
// Invariants:
//  (1) Allocated nodes are never deleted until the SkipList is destroyed.
//  (2) The contents of a Node (except next pointers) are immutable after
//      the Node has been linked into the SkipList. Only Insert() modifies
//      the list, and it initializes the node and uses release-stores to
//      publish it.

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/arena.h"
#include "util/random.h"

namespace fcae {

template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  /// Creates a new SkipList object that will use "cmp" for comparing
  /// keys, and will allocate memory using "*arena". Objects allocated in
  /// the arena must remain allocated for the lifetime of the skiplist.
  explicit SkipList(Comparator cmp, Arena* arena);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key into the list. Requires: nothing that compares equal to
  /// key is currently in the list.
  void Insert(const Key& key);

  /// Returns true iff an entry that compares equal to key is in the list.
  bool Contains(const Key& key) const;

  /// Iteration over the contents of a skip list.
  class Iterator {
   public:
    /// The returned iterator is not valid until positioned.
    explicit Iterator(const SkipList* list);

    bool Valid() const;
    const Key& key() const;
    void Next();
    void Prev();
    void Seek(const Key& target);
    void SeekToFirst();
    void SeekToLast();

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  enum { kMaxHeight = 12 };

  inline int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  Node* NewNode(const Key& key, int height);
  int RandomHeight();
  bool Equal(const Key& a, const Key& b) const {
    return (compare_(a, b) == 0);
  }

  /// Returns true if key is greater than the data stored in "n".
  bool KeyIsAfterNode(const Key& key, Node* n) const;

  /// Returns the earliest node that comes at or after key (nullptr if
  /// none). If prev is non-null, fills prev[level] with a pointer to the
  /// previous node at "level" for every level in [0..max_height_-1].
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const;

  /// Returns the latest node with a key < key (head_ if none).
  Node* FindLessThan(const Key& key) const;

  /// Returns the last node in the list (head_ if empty).
  Node* FindLast() const;

  // Immutable after construction.
  Comparator const compare_;
  Arena* const arena_;  // Arena used for allocations of nodes.

  Node* const head_;

  // Modified only by Insert(). Read racily by readers, but stale values
  // are ok.
  std::atomic<int> max_height_;  // Height of the entire list.

  // Read/written only by Insert().
  Random rnd_;
};

// Implementation details follow.

template <typename Key, class Comparator>
struct SkipList<Key, Comparator>::Node {
  explicit Node(const Key& k) : key(k) {}

  Key const key;

  /// Accessors/mutators for links. Wrapped in methods so we can add the
  /// appropriate barriers as necessary.
  Node* Next(int n) {
    assert(n >= 0);
    // An acquire load so that we observe a fully initialized version of
    // the returned Node.
    return next_[n].load(std::memory_order_acquire);
  }
  void SetNext(int n, Node* x) {
    assert(n >= 0);
    // A release store so anybody who reads through this pointer observes
    // a fully initialized version of the inserted node.
    next_[n].store(x, std::memory_order_release);
  }

  /// No-barrier variants that can be safely used in a few locations.
  Node* NoBarrier_Next(int n) {
    assert(n >= 0);
    return next_[n].load(std::memory_order_relaxed);
  }
  void NoBarrier_SetNext(int n, Node* x) {
    assert(n >= 0);
    next_[n].store(x, std::memory_order_relaxed);
  }

 private:
  // Array of length equal to the node height. next_[0] is lowest level.
  std::atomic<Node*> next_[1];
};

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::NewNode(const Key& key, int height) {
  char* const node_memory = arena_->AllocateAligned(
      sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
  return new (node_memory) Node(key);
}

template <typename Key, class Comparator>
inline SkipList<Key, Comparator>::Iterator::Iterator(const SkipList* list) {
  list_ = list;
  node_ = nullptr;
}

template <typename Key, class Comparator>
inline bool SkipList<Key, Comparator>::Iterator::Valid() const {
  return node_ != nullptr;
}

template <typename Key, class Comparator>
inline const Key& SkipList<Key, Comparator>::Iterator::key() const {
  assert(Valid());
  return node_->key;
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Next() {
  assert(Valid());
  node_ = node_->Next(0);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Prev() {
  // Instead of using explicit "prev" links, we just search for the last
  // node that falls before key.
  assert(Valid());
  node_ = list_->FindLessThan(node_->key);
  if (node_ == list_->head_) {
    node_ = nullptr;
  }
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::Seek(const Key& target) {
  node_ = list_->FindGreaterOrEqual(target, nullptr);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::SeekToFirst() {
  node_ = list_->head_->Next(0);
}

template <typename Key, class Comparator>
inline void SkipList<Key, Comparator>::Iterator::SeekToLast() {
  node_ = list_->FindLast();
  if (node_ == list_->head_) {
    node_ = nullptr;
  }
}

template <typename Key, class Comparator>
int SkipList<Key, Comparator>::RandomHeight() {
  // Increase height with probability 1 in kBranching.
  static const unsigned int kBranching = 4;
  int height = 1;
  while (height < kMaxHeight && rnd_.OneIn(kBranching)) {
    height++;
  }
  assert(height > 0);
  assert(height <= kMaxHeight);
  return height;
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::KeyIsAfterNode(const Key& key, Node* n) const {
  // null n is considered infinite.
  return (n != nullptr) && (compare_(n->key, key) < 0);
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindGreaterOrEqual(const Key& key,
                                              Node** prev) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (KeyIsAfterNode(key, next)) {
      // Keep searching in this list.
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) {
        return next;
      } else {
        // Switch to next list.
        level--;
      }
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLessThan(const Key& key) const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    assert(x == head_ || compare_(x->key, key) < 0);
    Node* next = x->Next(level);
    if (next == nullptr || compare_(next->key, key) >= 0) {
      if (level == 0) {
        return x;
      } else {
        // Switch to next list.
        level--;
      }
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
typename SkipList<Key, Comparator>::Node*
SkipList<Key, Comparator>::FindLast() const {
  Node* x = head_;
  int level = GetMaxHeight() - 1;
  while (true) {
    Node* next = x->Next(level);
    if (next == nullptr) {
      if (level == 0) {
        return x;
      } else {
        // Switch to next list.
        level--;
      }
    } else {
      x = next;
    }
  }
}

template <typename Key, class Comparator>
SkipList<Key, Comparator>::SkipList(Comparator cmp, Arena* arena)
    : compare_(cmp),
      arena_(arena),
      head_(NewNode(0 /* any key will do */, kMaxHeight)),
      max_height_(1),
      rnd_(0xdeadbeef) {
  for (int i = 0; i < kMaxHeight; i++) {
    head_->SetNext(i, nullptr);
  }
}

template <typename Key, class Comparator>
void SkipList<Key, Comparator>::Insert(const Key& key) {
  Node* prev[kMaxHeight];
  Node* x = FindGreaterOrEqual(key, prev);

  // Our data structure does not allow duplicate insertion.
  assert(x == nullptr || !Equal(key, x->key));

  int height = RandomHeight();
  if (height > GetMaxHeight()) {
    for (int i = GetMaxHeight(); i < height; i++) {
      prev[i] = head_;
    }
    // It is ok to mutate max_height_ without any synchronization with
    // concurrent readers: a reader that observes the new value will see
    // either the new level's nullptr from head_ (valid) or the new node.
    max_height_.store(height, std::memory_order_relaxed);
  }

  x = NewNode(key, height);
  for (int i = 0; i < height; i++) {
    // NoBarrier_SetNext() suffices since we will add a barrier when we
    // publish a pointer to x in prev[i].
    x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
    prev[i]->SetNext(i, x);
  }
}

template <typename Key, class Comparator>
bool SkipList<Key, Comparator>::Contains(const Key& key) const {
  Node* x = FindGreaterOrEqual(key, nullptr);
  return x != nullptr && Equal(key, x->key);
}

}  // namespace fcae

#endif  // FCAE_LSM_SKIPLIST_H_
