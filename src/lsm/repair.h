#ifndef FCAE_LSM_REPAIR_H_
#define FCAE_LSM_REPAIR_H_

#include <string>

#include "util/options.h"
#include "util/status.h"

namespace fcae {

/// Reconstructs a database whose descriptor state (MANIFEST/CURRENT) is
/// lost or corrupt:
///
///  1. every WAL file is replayed into fresh level-0 tables;
///  2. every table file is scanned to recover its key range, maximum
///     sequence number and integrity (unreadable tables are moved to a
///     "lost/" subdirectory rather than deleted);
///  3. a new descriptor referencing all recovered tables at level 0 is
///     written and installed.
///
/// Some previously-deleted data may resurface (a known property of
/// manifest reconstruction: the level structure that made deletion
/// markers disposable is gone), but every acknowledged write that
/// reached a log or table is preserved.
Status RepairDB(const std::string& dbname, const Options& options);

}  // namespace fcae

#endif  // FCAE_LSM_REPAIR_H_
