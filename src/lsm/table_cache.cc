#include "lsm/table_cache.h"

#include "lsm/filename.h"
#include "obs/metrics.h"
#include "obs/perf_context.h"
#include "util/coding.h"

namespace fcae {

namespace {

struct TableAndFile {
  RandomAccessFile* file;
  Table* table;
};

void DeleteEntry(const Slice& key, void* value) {
  TableAndFile* tf = reinterpret_cast<TableAndFile*>(value);
  delete tf->table;
  delete tf->file;
  delete tf;
}

void UnrefEntry(void* arg1, void* arg2) {
  Cache* cache = reinterpret_cast<Cache*>(arg1);
  Cache::Handle* h = reinterpret_cast<Cache::Handle*>(arg2);
  cache->Release(h);
}

}  // namespace

TableCache::TableCache(const std::string& dbname, const Options& options,
                       int entries)
    : env_(options.env),
      dbname_(dbname),
      options_(options),
      capacity_(entries),
      cache_(NewLRUCache(entries)) {}

void TableCache::SetMetricsRegistry(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (metrics_ != nullptr) {
    metrics_->gauge("db.table_cache.capacity")->Set(capacity_);
    metrics_->gauge("db.table_cache.open_tables")
        ->Set(static_cast<int64_t>(OpenTableCount()));
    // Pre-register so snapshots carry zeros before the first read.
    metrics_->counter("db.table_cache.hits");
    metrics_->counter("db.table_cache.misses");
  }
}

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size,
                             Cache::Handle** handle) {
  Status s;
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  Slice key(buf, sizeof(buf));
  *handle = cache_->Lookup(key);
  if (*handle != nullptr) {
    FCAE_PERF_COUNT(table_cache_hits, 1);
    if (metrics_ != nullptr) {
      metrics_->counter("db.table_cache.hits")->Increment();
    }
  }
  if (*handle == nullptr) {
    FCAE_PERF_COUNT(table_cache_misses, 1);
    if (metrics_ != nullptr) {
      metrics_->counter("db.table_cache.misses")->Increment();
    }
    std::string fname = TableFileName(dbname_, file_number);
    RandomAccessFile* file = nullptr;
    Table* table = nullptr;
    s = env_->NewRandomAccessFile(fname, &file);
    if (s.ok()) {
      s = Table::Open(options_, file, file_size, &table);
    }

    if (!s.ok()) {
      assert(table == nullptr);
      delete file;
      // We do not cache error results so that if the error is transient,
      // or somebody repairs the file, we recover automatically.
    } else {
      TableAndFile* tf = new TableAndFile;
      tf->file = file;
      tf->table = table;
      *handle = cache_->Insert(key, tf, 1, &DeleteEntry);
      if (metrics_ != nullptr) {
        // The insert may have evicted (and closed) the LRU victim: the
        // gauge tracks descriptors actually held, never past capacity_.
        metrics_->gauge("db.table_cache.open_tables")
            ->Set(static_cast<int64_t>(OpenTableCount()));
      }
    }
  }
  return s;
}

Iterator* TableCache::NewIterator(const ReadOptions& options,
                                  uint64_t file_number, uint64_t file_size,
                                  Table** tableptr) {
  if (tableptr != nullptr) {
    *tableptr = nullptr;
  }

  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Table* table = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
  Iterator* result = table->NewIterator(options);
  result->RegisterCleanup(&UnrefEntry, cache_.get(), handle);
  if (tableptr != nullptr) {
    *tableptr = table;
  }
  return result;
}

Status TableCache::Get(const ReadOptions& options, uint64_t file_number,
                       uint64_t file_size, const Slice& k, void* arg,
                       void (*handle_result)(void*, const Slice&,
                                             const Slice&)) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (s.ok()) {
    Table* t = reinterpret_cast<TableAndFile*>(cache_->Value(handle))->table;
    s = t->InternalGet(options, k, arg, handle_result);
    cache_->Release(handle);
  }
  return s;
}

void TableCache::Evict(uint64_t file_number) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  cache_->Erase(Slice(buf, sizeof(buf)));
  if (metrics_ != nullptr) {
    metrics_->gauge("db.table_cache.open_tables")
        ->Set(static_cast<int64_t>(OpenTableCount()));
  }
}

}  // namespace fcae
