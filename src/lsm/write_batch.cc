#include "lsm/write_batch.h"

// WriteBatch::rep_ :=
//    sequence: fixed64
//    count: fixed32
//    data: record[count]
// record :=
//    kTypeValue varstring varstring         |
//    kTypeDeletion varstring
// varstring :=
//    len: varint32
//    data: uint8[len]

#include "lsm/dbformat.h"
#include "lsm/memtable.h"
#include "util/coding.h"

namespace fcae {

namespace {
// WriteBatch header has an 8-byte sequence number followed by a 4-byte
// count.
constexpr size_t kHeader = 12;
}  // namespace

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader);
}

size_t WriteBatch::ApproximateSize() const { return rep_.size(); }

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }

  input.RemovePrefix(kHeader);
  Slice key, value;
  int found = 0;
  while (!input.empty()) {
    found++;
    char tag = input[0];
    input.RemovePrefix(1);
    switch (tag) {
      case kTypeValue:
        if (GetLengthPrefixedSlice(&input, &key) &&
            GetLengthPrefixedSlice(&input, &value)) {
          handler->Put(key, value);
        } else {
          return Status::Corruption("bad WriteBatch Put");
        }
        break;
      case kTypeDeletion:
        if (GetLengthPrefixedSlice(&input, &key)) {
          handler->Delete(key);
        } else {
          return Status::Corruption("bad WriteBatch Delete");
        }
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != WriteBatchInternal::Count(this)) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

int WriteBatchInternal::Count(const WriteBatch* b) {
  return static_cast<int>(DecodeFixed32(b->rep_.data() + 8));
}

void WriteBatchInternal::SetCount(WriteBatch* b, int n) {
  EncodeFixed32(&b->rep_[8], n);
}

uint64_t WriteBatchInternal::Sequence(const WriteBatch* b) {
  return DecodeFixed64(b->rep_.data());
}

void WriteBatchInternal::SetSequence(WriteBatch* b, uint64_t seq) {
  EncodeFixed64(&b->rep_[0], seq);
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  WriteBatchInternal::SetCount(this, WriteBatchInternal::Count(this) + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

void WriteBatch::Append(const WriteBatch& source) {
  WriteBatchInternal::Append(this, &source);
}

namespace {

class MemTableInserter : public WriteBatch::Handler {
 public:
  SequenceNumber sequence_;
  MemTable* mem_;

  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(sequence_, kTypeValue, key, value);
    sequence_++;
  }
  void Delete(const Slice& key) override {
    mem_->Add(sequence_, kTypeDeletion, key, Slice());
    sequence_++;
  }
};

}  // namespace

Status WriteBatchInternal::InsertInto(const WriteBatch* b, MemTable* mem) {
  MemTableInserter inserter;
  inserter.sequence_ = WriteBatchInternal::Sequence(b);
  inserter.mem_ = mem;
  return b->Iterate(&inserter);
}

void WriteBatchInternal::SetContents(WriteBatch* b, const Slice& contents) {
  assert(contents.size() >= kHeader);
  b->rep_.assign(contents.data(), contents.size());
}

void WriteBatchInternal::Append(WriteBatch* dst, const WriteBatch* src) {
  SetCount(dst, Count(dst) + Count(src));
  assert(src->rep_.size() >= kHeader);
  dst->rep_.append(src->rep_.data() + kHeader, src->rep_.size() - kHeader);
}

}  // namespace fcae
