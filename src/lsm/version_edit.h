#ifndef FCAE_LSM_VERSION_EDIT_H_
#define FCAE_LSM_VERSION_EDIT_H_

#include <set>
#include <utility>
#include <vector>

#include "lsm/dbformat.h"
#include "util/status.h"

namespace fcae {

class VersionSet;

/// Metadata of one SSTable file in the version tree.
struct FileMetaData {
  FileMetaData() : refs(0), allowed_seeks(1 << 30), file_size(0) {}

  int refs;
  int allowed_seeks;  // Seeks allowed until compaction.
  uint64_t number;
  uint64_t file_size;    // File size in bytes.
  InternalKey smallest;  // Smallest internal key served by table.
  InternalKey largest;   // Largest internal key served by table.
  // Whole-file crc32c captured at install time (DESIGN.md §14). Ground
  // truth for the scrubber; absent for files installed before the
  // checksum tag existed (has_file_checksum == false), which the
  // scrubber treats as "verify block CRCs only".
  uint32_t file_checksum = 0;
  bool has_file_checksum = false;
};

/// A VersionEdit is a delta applied to a Version to produce the next
/// Version; serialized into the MANIFEST for recovery.
class VersionEdit {
 public:
  VersionEdit() { Clear(); }
  ~VersionEdit() = default;

  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFile(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }
  void SetCompactPointer(int level, const InternalKey& key) {
    compact_pointers_.push_back(std::make_pair(level, key));
  }

  /// Adds the specified file at the specified level.
  /// Requires: "smallest" and "largest" are the smallest and largest
  /// internal keys in the file.
  void AddFile(int level, uint64_t file, uint64_t file_size,
               const InternalKey& smallest, const InternalKey& largest) {
    FileMetaData f;
    f.number = file;
    f.file_size = file_size;
    f.smallest = smallest;
    f.largest = largest;
    new_files_.push_back(std::make_pair(level, f));
  }

  /// Adds a file carrying full metadata (including any recorded
  /// whole-file checksum). Used when re-installing an existing file —
  /// trivial moves, manifest snapshots — so the checksum survives the
  /// re-encode, and by install sites that captured a checksum.
  void AddFile(int level, const FileMetaData& f) {
    new_files_.push_back(std::make_pair(level, f));
  }

  /// Deletes the specified file from the specified level.
  void RemoveFile(int level, uint64_t file) {
    deleted_files_.insert(std::make_pair(level, file));
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  std::string DebugString() const;

 private:
  friend class VersionSet;

  using DeletedFileSet = std::set<std::pair<int, uint64_t>>;

  std::string comparator_;
  uint64_t log_number_;
  uint64_t next_file_number_;
  SequenceNumber last_sequence_;
  bool has_comparator_;
  bool has_log_number_;
  bool has_next_file_number_;
  bool has_last_sequence_;

  std::vector<std::pair<int, InternalKey>> compact_pointers_;
  DeletedFileSet deleted_files_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
};

}  // namespace fcae

#endif  // FCAE_LSM_VERSION_EDIT_H_
