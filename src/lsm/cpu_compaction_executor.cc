#include <memory>

#include "lsm/compaction_executor.h"
#include "lsm/filename.h"
#include "lsm/table_cache.h"
#include "obs/trace.h"
#include "table/table_builder.h"
#include "util/env.h"
#include "util/file_checksum.h"
#include "util/rate_limiter.h"

namespace fcae {

namespace {

/// The software merge path: a straightforward single-threaded N-way
/// merge over the input tables, applying the shared drop rule, writing
/// standard SSTables via TableBuilder. This is the paper's CPU baseline
/// ("single CPU thread") measured in Table V.
class CpuCompactionExecutor : public CompactionExecutor {
 public:
  const char* Name() const override { return "cpu"; }

  bool CanExecute(const CompactionJob& job) const override { return true; }

  Status Execute(const CompactionJob& job,
                 std::vector<CompactionOutput>* outputs,
                 CompactionExecStats* stats) override {
    Env* env = job.options->env;
    const uint64_t start_micros = env->NowMicros();

    // The whole software path is one merge stage (read + merge + write
    // are interleaved in the loop below), so it traces as one span.
    obs::SpanTimer merge_span(job.trace, "merge", "cpu", job.trace_tid);

    std::unique_ptr<Iterator> input(job.make_input_iterator());
    input->SeekToFirst();

    Status status;
    std::string current_user_key;
    bool has_current_user_key = false;
    SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

    WritableFile* outfile = nullptr;
    ChecksumWritableFile* checksum_file = nullptr;  // Aliases outfile.
    std::unique_ptr<TableBuilder> builder;
    CompactionOutput current;

    const Comparator* ucmp = job.icmp->user_comparator();

    auto finish_output = [&]() -> Status {
      assert(builder != nullptr);
      Status s = builder->Finish();
      current.file_size = builder->FileSize();
      current.file_checksum = checksum_file->checksum();
      current.has_file_checksum = true;
      builder.reset();
      if (s.ok()) s = outfile->Sync();
      if (s.ok()) s = outfile->Close();
      delete outfile;
      outfile = nullptr;
      checksum_file = nullptr;
      if (s.ok() && current.file_size > 0) {
        outputs->push_back(current);
        stats->bytes_written += current.file_size;
        // Verify usability.
        ReadOptions verify_options;
        verify_options.verify_checksums = job.options->paranoid_checks;
        verify_options.fill_cache = false;
        Iterator* it = job.table_cache->NewIterator(
            verify_options, current.number, current.file_size);
        s = it->status();
        delete it;
      }
      return s;
    };

    for (; input->Valid() && status.ok(); input->Next()) {
      Slice key = input->key();

      // Decide whether to drop this entry (identical logic to the FPGA
      // engine's Validity Check module; see fpga/comparer.cc).
      bool drop = false;
      ParsedInternalKey ikey;
      if (!ParseInternalKey(key, &ikey)) {
        // Do not hide corruption.
        current_user_key.clear();
        has_current_user_key = false;
        last_sequence_for_key = kMaxSequenceNumber;
      } else {
        stats->entries_in++;
        if (!has_current_user_key ||
            ucmp->Compare(ikey.user_key, Slice(current_user_key)) != 0) {
          // First occurrence of this user key.
          current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
          has_current_user_key = true;
          last_sequence_for_key = kMaxSequenceNumber;
        }

        if (last_sequence_for_key <= job.smallest_snapshot) {
          // Hidden by a newer entry for the same user key.
          drop = true;
        } else if (ikey.type == kTypeDeletion &&
                   ikey.sequence <= job.smallest_snapshot &&
                   job.no_deeper_data) {
          // This deletion marker is obsolete and no deeper level can
          // contain the deleted key: drop it.
          drop = true;
        }

        last_sequence_for_key = ikey.sequence;
      }

      if (drop) {
        stats->entries_dropped++;
        continue;
      }

      // Open output file if necessary.
      if (builder == nullptr) {
        current = CompactionOutput();
        current.number = job.new_file_number();
        std::string fname = TableFileName(job.dbname, current.number);
        status = env->NewWritableFile(fname, &outfile);
        if (!status.ok()) break;
        if (job.options->rate_limiter != nullptr) {
          // Compaction output rides the low-priority lane so a capped
          // background budget serves flushes first.
          outfile = new RateLimitedWritableFile(
              outfile, job.options->rate_limiter,
              RateLimiter::Priority::kLow);
        }
        checksum_file = new ChecksumWritableFile(outfile);
        outfile = checksum_file;
        builder = std::make_unique<TableBuilder>(*job.options, outfile);
        current.smallest.DecodeFrom(key);
      }
      current.largest.DecodeFrom(key);
      builder->Add(key, input->value());

      // Close output file if it is big enough.
      if (builder->FileSize() >= job.compaction->MaxOutputFileSize()) {
        status = finish_output();
      }
    }

    if (status.ok() && builder != nullptr) {
      status = finish_output();
    } else if (builder != nullptr) {
      builder->Abandon();
      builder.reset();
      delete outfile;
    }

    if (status.ok()) {
      status = input->status();
    }

    for (int which = 0; which < 2; which++) {
      for (int i = 0; i < job.compaction->num_input_files(which); i++) {
        stats->bytes_read += job.compaction->input(which, i)->file_size;
      }
    }
    merge_span.AddArg("entries_in", std::to_string(stats->entries_in));
    merge_span.AddArg("entries_dropped",
                      std::to_string(stats->entries_dropped));
    stats->micros += env->NowMicros() - start_micros;
    return status;
  }
};

}  // namespace

CompactionExecutor* NewCpuCompactionExecutor() {
  return new CpuCompactionExecutor();
}

}  // namespace fcae
