#ifndef FCAE_LSM_LOG_WRITER_H_
#define FCAE_LSM_LOG_WRITER_H_

#include <cstdint>

#include "lsm/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace fcae {

class WritableFile;

namespace log {

/// Appends length-prefixed, checksummed records to a WAL file.
class Writer {
 public:
  /// Creates a writer that will append data to "*dest". "*dest" must be
  /// initially empty and must remain live while this Writer is in use.
  explicit Writer(WritableFile* dest);

  /// Creates a writer that will append data to "*dest", which must have
  /// initial length "dest_length" (used to reopen a log for appending).
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  ~Writer() = default;

  Status AddRecord(const Slice& slice);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_;  // Current offset in block.

  // crc32c values for all supported record types, pre-computed to reduce
  // the cost of computing the crc of the type that is appended.
  uint32_t type_crc_[kMaxRecordType + 1];
};

}  // namespace log
}  // namespace fcae

#endif  // FCAE_LSM_LOG_WRITER_H_
