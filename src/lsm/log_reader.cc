#include "lsm/log_reader.h"

#include <cstdio>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"

namespace fcae {
namespace log {

Reader::Reader(SequentialFile* file, Reporter* reporter, bool checksum)
    : file_(file),
      reporter_(reporter),
      checksum_(checksum),
      backing_store_(new char[kBlockSize]),
      buffer_(),
      eof_(false) {}

Reader::~Reader() { delete[] backing_store_; }

bool Reader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  record->Clear();
  bool in_fragmented_record = false;

  Slice fragment;
  while (true) {
    const unsigned int record_type = ReadPhysicalRecord(&fragment);

    switch (record_type) {
      case kFullType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end(1)");
        }
        scratch->clear();
        *record = fragment;
        return true;

      case kFirstType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end(2)");
        }
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;

      case kMiddleType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(),
                           "missing start of fragmented record(1)");
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case kLastType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(),
                           "missing start of fragmented record(2)");
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          return true;
        }
        break;

      case kEof:
        if (in_fragmented_record) {
          // A writer died in the middle of the record; silently skip the
          // incomplete tail.
          scratch->clear();
        }
        return false;

      case kBadRecord:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "error in middle of record");
          in_fragmented_record = false;
          scratch->clear();
        }
        break;

      default: {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "unknown record type %u", record_type);
        ReportCorruption(
            (fragment.size() + (in_fragmented_record ? scratch->size() : 0)),
            buf);
        in_fragmented_record = false;
        scratch->clear();
        break;
      }
    }
  }
}

void Reader::ReportCorruption(uint64_t bytes, const char* reason) {
  ReportDrop(bytes, Status::Corruption(reason));
}

void Reader::ReportDrop(uint64_t bytes, const Status& reason) {
  if (reporter_ != nullptr) {
    reporter_->Corruption(static_cast<size_t>(bytes), reason);
  }
}

unsigned int Reader::ReadPhysicalRecord(Slice* result) {
  while (true) {
    if (buffer_.size() < static_cast<size_t>(kHeaderSize)) {
      if (!eof_) {
        // Last read was a full block; discard the trailer and read more.
        buffer_.Clear();
        Status status = file_->Read(kBlockSize, &buffer_, backing_store_);
        if (!status.ok()) {
          buffer_.Clear();
          ReportDrop(kBlockSize, status);
          eof_ = true;
          return kEof;
        } else if (buffer_.size() < static_cast<size_t>(kBlockSize)) {
          eof_ = true;
        }
        continue;
      } else {
        // A truncated header at EOF can result from a crash mid-write;
        // treat it as a clean end of stream.
        buffer_.Clear();
        return kEof;
      }
    }

    // Parse the header.
    const char* header = buffer_.data();
    const uint32_t a = static_cast<uint32_t>(header[4]) & 0xff;
    const uint32_t b = static_cast<uint32_t>(header[5]) & 0xff;
    const unsigned int type = header[6];
    const uint32_t length = a | (b << 8);
    if (kHeaderSize + length > buffer_.size()) {
      size_t drop_size = buffer_.size();
      buffer_.Clear();
      if (!eof_) {
        ReportCorruption(drop_size, "bad record length");
        return kBadRecord;
      }
      // Truncated record at EOF: the writer died mid-write; do not
      // report it.
      return kEof;
    }

    if (type == kZeroType && length == 0) {
      // Skip zero-length records without reporting: such records are
      // produced by preallocation.
      buffer_.Clear();
      return kBadRecord;
    }

    // Check crc.
    if (checksum_) {
      uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
      uint32_t actual_crc = crc32c::Value(header + 6, 1 + length);
      if (actual_crc != expected_crc) {
        // Drop the rest of the buffer: the length field itself may be
        // corrupt, so resynchronize at the next block.
        size_t drop_size = buffer_.size();
        buffer_.Clear();
        ReportCorruption(drop_size, "checksum mismatch");
        return kBadRecord;
      }
    }

    buffer_.RemovePrefix(kHeaderSize + length);
    *result = Slice(header + kHeaderSize, length);
    return type;
  }
}

}  // namespace log
}  // namespace fcae
