#ifndef FCAE_LSM_BUILDER_H_
#define FCAE_LSM_BUILDER_H_

#include <string>

#include "util/status.h"

namespace fcae {

struct Options;
struct FileMetaData;

class Env;
class Iterator;
class TableCache;

/// Builds a Table file from the contents of *iter (the first type of
/// compaction in the paper: dumping an Immutable MemTable to an SSTable).
/// On success, the rest of *meta is filled with metadata about the
/// generated table; if no data is present, meta->file_size is zero and no
/// file is produced.
Status BuildTable(const std::string& dbname, Env* env, const Options& options,
                  TableCache* table_cache, Iterator* iter,
                  FileMetaData* meta);

}  // namespace fcae

#endif  // FCAE_LSM_BUILDER_H_
