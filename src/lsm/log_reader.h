#ifndef FCAE_LSM_LOG_READER_H_
#define FCAE_LSM_LOG_READER_H_

#include <cstdint>
#include <string>

#include "lsm/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace fcae {

class SequentialFile;

namespace log {

/// Reads the record stream produced by log::Writer, recovering from
/// truncated tails and reporting corrupt regions.
class Reader {
 public:
  /// Interface for reporting errors found while reading the log.
  class Reporter {
   public:
    virtual ~Reporter() = default;

    /// Some corruption was detected; `bytes` is the approximate number
    /// of bytes dropped due to the corruption.
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  /// Creates a reader consuming "*file" (must remain live while in use).
  /// Reports dropped data to "*reporter" if non-null. If checksum is
  /// true, verifies checksums when available.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  ~Reader();

  /// Reads the next record into *record. Returns true if read
  /// successfully, false on EOF. *scratch may be used as temporary
  /// backing storage; the record is only valid until the next mutating
  /// call.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extend record types with the following special values.
  enum {
    kEof = kMaxRecordType + 1,
    // Returned whenever we find an invalid physical record (bad crc,
    // length overflow, ...).
    kBadRecord = kMaxRecordType + 2
  };

  /// Return type, or one of the preceding special values.
  unsigned int ReadPhysicalRecord(Slice* result);

  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  char* const backing_store_;
  Slice buffer_;
  bool eof_;  // Last Read() indicated EOF by returning < kBlockSize.
};

}  // namespace log
}  // namespace fcae

#endif  // FCAE_LSM_LOG_READER_H_
