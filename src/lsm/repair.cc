#include "lsm/repair.h"

#include <memory>
#include <vector>

#include "lsm/builder.h"
#include "lsm/db_impl.h"
#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "lsm/log_reader.h"
#include "lsm/log_writer.h"
#include "lsm/memtable.h"
#include "lsm/table_cache.h"
#include "lsm/version_edit.h"
#include "lsm/write_batch.h"
#include "table/iterator.h"
#include "util/env.h"

namespace fcae {

namespace {

class Repairer {
 public:
  Repairer(const std::string& dbname, const Options& options)
      : dbname_(dbname),
        env_(options.env),
        icmp_(options.comparator),
        ipolicy_(options.filter_policy),
        options_(SanitizeOptions(dbname, &icmp_, &ipolicy_, options)),
        next_file_number_(1) {
    // TableCache can be small since we expect 2 usages here.
    table_cache_ = new TableCache(dbname_, options_, 10);
  }

  ~Repairer() { delete table_cache_; }

  Status Run() {
    Status status = FindFiles();
    if (status.ok()) {
      ConvertLogFilesToTables();
      ExtractMetaData();
      status = WriteDescriptor();
    }
    return status;
  }

 private:
  struct TableInfo {
    FileMetaData meta;
    SequenceNumber max_sequence;
  };

  Status FindFiles() {
    std::vector<std::string> filenames;
    Status status = env_->GetChildren(dbname_, &filenames);
    if (!status.ok()) {
      return status;
    }
    if (filenames.empty()) {
      return Status::IOError(dbname_, "repair found no files");
    }

    uint64_t number;
    FileType type;
    for (size_t i = 0; i < filenames.size(); i++) {
      if (ParseFileName(filenames[i], &number, &type)) {
        if (type == FileType::kDescriptorFile) {
          manifests_.push_back(filenames[i]);
        } else {
          if (number + 1 > next_file_number_) {
            next_file_number_ = number + 1;
          }
          if (type == FileType::kLogFile) {
            logs_.push_back(number);
          } else if (type == FileType::kTableFile) {
            table_numbers_.push_back(number);
          } else {
            // Ignore other files.
          }
        }
      }
    }
    return status;
  }

  void ConvertLogFilesToTables() {
    for (size_t i = 0; i < logs_.size(); i++) {
      std::string logname = LogFileName(dbname_, logs_[i]);
      Status status = ConvertLogToTable(logs_[i]);
      if (!status.ok()) {
        std::fprintf(stderr, "Log #%llu: ignoring conversion error: %s\n",
                     static_cast<unsigned long long>(logs_[i]),
                     status.ToString().c_str());
      }
      ArchiveFile(logname);
    }
  }

  Status ConvertLogToTable(uint64_t log) {
    struct LogReporter : public log::Reader::Reporter {
      uint64_t lognum;
      void Corruption(size_t bytes, const Status& s) override {
        std::fprintf(stderr, "Log #%llu: dropping %d bytes; %s\n",
                     static_cast<unsigned long long>(lognum),
                     static_cast<int>(bytes), s.ToString().c_str());
      }
    };

    // Open the log file.
    std::string logname = LogFileName(dbname_, log);
    SequentialFile* lfile;
    Status status = env_->NewSequentialFile(logname, &lfile);
    if (!status.ok()) {
      return status;
    }

    // Create the log reader.
    LogReporter reporter;
    reporter.lognum = log;
    // Do not check checksums: the whole point is recovering whatever
    // parses.
    log::Reader reader(lfile, &reporter, false /*checksum*/);

    // Read all the records and add to a memtable.
    std::string scratch;
    Slice record;
    WriteBatch batch;
    MemTable* mem = new MemTable(icmp_);
    mem->Ref();
    int counter = 0;
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 12) {
        reporter.Corruption(record.size(),
                            Status::Corruption("log record too small"));
        continue;
      }
      WriteBatchInternal::SetContents(&batch, record);
      status = WriteBatchInternal::InsertInto(&batch, mem);
      if (status.ok()) {
        counter += WriteBatchInternal::Count(&batch);
      } else {
        std::fprintf(stderr, "Log #%llu: ignoring %s\n",
                     static_cast<unsigned long long>(log),
                     status.ToString().c_str());
        status = Status::OK();  // Keep going with the rest of the file.
      }
    }
    delete lfile;

    // Do not record a version edit for this conversion to a Table since
    // ExtractMetaData() will scan the archived log file to recompute it.
    FileMetaData meta;
    meta.number = next_file_number_++;
    Iterator* iter = mem->NewIterator();
    status = BuildTable(dbname_, env_, options_, table_cache_, iter, &meta);
    delete iter;
    mem->Unref();
    mem = nullptr;
    if (status.ok()) {
      if (meta.file_size > 0) {
        table_numbers_.push_back(meta.number);
      }
    }
    std::fprintf(stderr, "Log #%llu: %d ops saved to Table #%llu %s\n",
                 static_cast<unsigned long long>(log), counter,
                 static_cast<unsigned long long>(meta.number),
                 status.ToString().c_str());
    return status;
  }

  void ExtractMetaData() {
    for (size_t i = 0; i < table_numbers_.size(); i++) {
      ScanTable(table_numbers_[i]);
    }
  }

  void ScanTable(uint64_t number) {
    TableInfo t;
    t.meta.number = number;
    std::string fname = TableFileName(dbname_, number);
    uint64_t file_size = 0;
    Status status = env_->GetFileSize(fname, &file_size);
    t.meta.file_size = file_size;

    if (status.ok()) {
      // Extract metadata by scanning through table. Salvage must not
      // resurrect rotten bytes, so block CRCs are always verified here
      // regardless of Options::paranoid_checks.
      ReadOptions scan_options;
      scan_options.verify_checksums = true;
      int counter = 0;
      Iterator* iter = table_cache_->NewIterator(
          scan_options, t.meta.number, t.meta.file_size);
      bool empty = true;
      ParsedInternalKey parsed;
      t.max_sequence = 0;
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        Slice key = iter->key();
        if (!ParseInternalKey(key, &parsed)) {
          std::fprintf(stderr, "Table #%llu: unparsable key\n",
                       static_cast<unsigned long long>(t.meta.number));
          continue;
        }

        counter++;
        if (empty) {
          empty = false;
          t.meta.smallest.DecodeFrom(key);
        }
        t.meta.largest.DecodeFrom(key);
        if (parsed.sequence > t.max_sequence) {
          t.max_sequence = parsed.sequence;
        }
      }
      if (!iter->status().ok()) {
        status = iter->status();
      }
      delete iter;
      if (empty && status.ok()) {
        status = Status::Corruption("table holds no parsable entries");
      }
      std::fprintf(stderr, "Table #%llu: %d entries %s\n",
                   static_cast<unsigned long long>(t.meta.number), counter,
                   status.ToString().c_str());
    }
    if (status.ok()) {
      tables_.push_back(t);
    } else {
      RepairTable(fname);  // Moves the bad table aside.
    }
  }

  void RepairTable(const std::string& src) {
    ArchiveFile(src);
  }

  Status WriteDescriptor() {
    std::string tmp = TempFileName(dbname_, 1);
    WritableFile* file;
    Status status = env_->NewWritableFile(tmp, &file);
    if (!status.ok()) {
      return status;
    }

    SequenceNumber max_sequence = 0;
    for (size_t i = 0; i < tables_.size(); i++) {
      if (max_sequence < tables_[i].max_sequence) {
        max_sequence = tables_[i].max_sequence;
      }
    }

    VersionEdit edit;
    edit.SetComparatorName(icmp_.user_comparator()->Name());
    edit.SetLogNumber(0);
    edit.SetNextFile(next_file_number_);
    edit.SetLastSequence(max_sequence);

    for (size_t i = 0; i < tables_.size(); i++) {
      // All tables land in level 0: their ranges may overlap, and
      // level 0 is the only level allowed to overlap. Normal
      // compaction re-sorts them over time.
      const TableInfo& t = tables_[i];
      edit.AddFile(0, t.meta);
    }

    {
      log::Writer log(file);
      std::string record;
      edit.EncodeTo(&record);
      status = log.AddRecord(record);
    }
    if (status.ok()) {
      status = file->Close();
    }
    delete file;
    file = nullptr;

    if (!status.ok()) {
      env_->RemoveFile(tmp).IgnoreError();  // best-effort tmp cleanup
      return status;
    }

    // Discard older manifests.
    for (size_t i = 0; i < manifests_.size(); i++) {
      ArchiveFile(dbname_ + "/" + manifests_[i]);
    }

    // Install new manifest.
    status = env_->RenameFile(tmp, DescriptorFileName(dbname_, 1));
    if (status.ok()) {
      status = SetCurrentFile(env_, dbname_, 1);
    } else {
      env_->RemoveFile(tmp).IgnoreError();  // best-effort tmp cleanup
    }
    return status;
  }

  void ArchiveFile(const std::string& fname) {
    // Move into another directory: rooted at the same dbname with a
    // "lost" suffix (the mem env has no real directories; a renamed
    // path works for both envs).
    const char* slash = strrchr(fname.c_str(), '/');
    std::string new_dir;
    if (slash != nullptr) {
      new_dir.assign(fname.data(), slash - fname.data());
    }
    new_dir.append("/lost");
    // Ignore error: if the lost/ dir cannot be made, the rename below
    // fails and the file stays where it was.
    env_->CreateDir(new_dir).IgnoreError();
    std::string new_file = new_dir;
    new_file.append("/");
    new_file.append((slash == nullptr) ? fname.c_str() : slash + 1);
    Status s = env_->RenameFile(fname, new_file);
    std::fprintf(stderr, "Archiving %s: %s\n", fname.c_str(),
                 s.ToString().c_str());
  }

  const std::string dbname_;
  Env* const env_;
  InternalKeyComparator const icmp_;
  InternalFilterPolicy const ipolicy_;
  const Options options_;
  TableCache* table_cache_;

  std::vector<std::string> manifests_;
  std::vector<uint64_t> table_numbers_;
  std::vector<uint64_t> logs_;
  std::vector<TableInfo> tables_;
  uint64_t next_file_number_;
};

}  // namespace

Status RepairDB(const std::string& dbname, const Options& options) {
  Repairer repairer(dbname, options);
  return repairer.Run();
}

}  // namespace fcae
