#ifndef FCAE_LSM_SNAPSHOT_H_
#define FCAE_LSM_SNAPSHOT_H_

#include <cassert>

#include "lsm/db.h"
#include "lsm/dbformat.h"

namespace fcae {

class SnapshotList;

/// Snapshots are kept in a doubly-linked list in the DB; each
/// SnapshotImpl corresponds to a particular sequence number.
class SnapshotImpl : public Snapshot {
 public:
  explicit SnapshotImpl(SequenceNumber sequence_number)
      : sequence_number_(sequence_number) {}

  SequenceNumber sequence_number() const { return sequence_number_; }

 private:
  friend class SnapshotList;

  // SnapshotImpl is kept in a doubly-linked circular list. The
  // SnapshotList implementation operates on the next/previous fields
  // directly.
  SnapshotImpl* prev_;
  SnapshotImpl* next_;

  const SequenceNumber sequence_number_;

#if !defined(NDEBUG)
  SnapshotList* list_ = nullptr;
#endif
};

class SnapshotList {
 public:
  SnapshotList() : head_(0) {
    head_.prev_ = &head_;
    head_.next_ = &head_;
  }

  bool empty() const { return head_.next_ == &head_; }
  SnapshotImpl* oldest() const {
    assert(!empty());
    return head_.next_;
  }
  SnapshotImpl* newest() const {
    assert(!empty());
    return head_.prev_;
  }

  /// Creates a SnapshotImpl and appends it to the end of the list.
  SnapshotImpl* New(SequenceNumber sequence_number) {
    assert(empty() || newest()->sequence_number_ <= sequence_number);

    SnapshotImpl* snapshot = new SnapshotImpl(sequence_number);

#if !defined(NDEBUG)
    snapshot->list_ = this;
#endif
    snapshot->next_ = &head_;
    snapshot->prev_ = head_.prev_;
    snapshot->prev_->next_ = snapshot;
    snapshot->next_->prev_ = snapshot;
    return snapshot;
  }

  /// Removes a SnapshotImpl from this list. The snapshot must have been
  /// created by calling New() on this list.
  void Delete(const SnapshotImpl* snapshot) {
#if !defined(NDEBUG)
    assert(snapshot->list_ == this);
#endif
    snapshot->prev_->next_ = snapshot->next_;
    snapshot->next_->prev_ = snapshot->prev_;
    delete snapshot;
  }

 private:
  // Dummy head of doubly-linked list of snapshots.
  SnapshotImpl head_;
};

}  // namespace fcae

#endif  // FCAE_LSM_SNAPSHOT_H_
