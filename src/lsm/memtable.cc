#include "lsm/memtable.h"

#include "table/iterator.h"
#include "util/coding.h"
#include "util/env.h"

namespace fcae {

namespace {

/// Memtable entries are encoded as:
///    klength  varint32
///    internal_key  char[klength]   (user key + 8-byte mark)
///    vlength  varint32
///    value    char[vlength]
Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);  // +5: we assume "p" is not corrupted
  return Slice(p, len);
}

const char* EncodeKey(std::string* scratch, const Slice& target) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(target.size()));
  scratch->append(target.data(), target.size());
  return scratch->data();
}

}  // namespace

MemTable::MemTable(const InternalKeyComparator& comparator)
    : comparator_(comparator), refs_(0), table_(comparator_, &arena_) {}

MemTable::~MemTable() { assert(refs_ == 0); }

size_t MemTable::ApproximateMemoryUsage() { return arena_.MemoryUsage(); }

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  // Internal keys are encoded as length-prefixed strings.
  Slice a = GetLengthPrefixedSliceAt(aptr);
  Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  MemTableIterator(const MemTableIterator&) = delete;
  MemTableIterator& operator=(const MemTableIterator&) = delete;

  ~MemTableIterator() override = default;

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override { iter_.Seek(EncodeKey(&tmp_, k)); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixedSliceAt(iter_.key()); }
  Slice value() const override {
    Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }

  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string tmp_;  // For passing to EncodeKey.
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_); }

void MemTable::Add(SequenceNumber s, ValueType type, const Slice& key,
                   const Slice& value) {
  // Format of an entry is concatenation of:
  //  key_size     : varint32 of internal_key.size()
  //  key bytes    : char[internal_key.size()]
  //  tag          : uint64((sequence << 8) | type)
  //  value_size   : varint32 of value.size()
  //  value bytes  : char[value.size()]
  size_t key_size = key.size();
  size_t val_size = value.size();
  size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  std::memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, (s << 8) | type);
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  std::memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  table_.Insert(buf);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) {
  Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (iter.Valid()) {
    // The entry found is either the exact user key (possibly at an older
    // sequence number) or a larger user key; check which.
    const char* entry = iter.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    if (comparator_.comparator.user_comparator()->Compare(
            Slice(key_ptr, key_length - 8), key.user_key()) == 0) {
      // Correct user key.
      const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
      switch (static_cast<ValueType>(tag & 0xff)) {
        case kTypeValue: {
          Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
          value->assign(v.data(), v.size());
          return true;
        }
        case kTypeDeletion:
          *s = Status::NotFound(Slice());
          return true;
      }
    }
  }
  return false;
}

}  // namespace fcae
