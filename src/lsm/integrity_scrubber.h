#ifndef FCAE_LSM_INTEGRITY_SCRUBBER_H_
#define FCAE_LSM_INTEGRITY_SCRUBBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fcae {

class Env;
class InternalKeyComparator;
class RateLimiter;
class Version;
struct Options;

/// One table to verify: a value snapshot of its manifest facts, taken
/// under the DB mutex so verification can run with the mutex released.
/// By the time a file is verified the version may have moved on — the
/// driver re-checks liveness before acting on a failure.
struct ScrubItem {
  int level = -1;
  uint64_t number = 0;
  uint64_t file_size = 0;
  bool has_file_checksum = false;
  uint32_t file_checksum = 0;
  std::string smallest;  // Encoded internal key (manifest lower bound).
  std::string largest;   // Encoded internal key (manifest upper bound).
};

/// Work-list builder and per-file verifier behind the background
/// integrity scrubber (DESIGN.md §14). Stateless: the DB drives one
/// cycle at a time on the scheduler's scrub lane, interleaving
/// BuildWorkList (mutex held) with VerifyItem calls (mutex released).
class IntegrityScrubber {
 public:
  /// Snapshots every live table of `v` into self-contained verify
  /// items, shallowest level first. Caller must hold the DB mutex (the
  /// Version file lists are guarded by it) and keep `v` referenced only
  /// for the duration of this call.
  static std::vector<ScrubItem> BuildWorkList(const Version* v);

  /// Verifies one table end to end: size vs manifest, whole-file
  /// checksum (when recorded), per-block CRCs, key order, and manifest
  /// bounds. Runs without the DB mutex; reads ride `limiter`'s
  /// low-priority lane when non-null. Returns Corruption for integrity
  /// failures, other codes for environmental errors (e.g. the file was
  /// compacted away mid-verify). `bytes_verified` (nullable) receives
  /// the file size on any outcome that read the file.
  [[nodiscard]] static Status VerifyItem(Env* env, const Options& options,
                                         const std::string& dbname,
                                         const InternalKeyComparator* icmp,
                                         RateLimiter* limiter,
                                         const ScrubItem& item,
                                         uint64_t* bytes_verified);
};

}  // namespace fcae

#endif  // FCAE_LSM_INTEGRITY_SCRUBBER_H_
