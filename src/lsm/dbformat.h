#ifndef FCAE_LSM_DBFORMAT_H_
#define FCAE_LSM_DBFORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/comparator.h"
#include "util/filter_policy.h"
#include "util/slice.h"

namespace fcae {

/// Maximum number of levels in the LSM tree.
constexpr int kNumLevels = 7;

/// Level-0 compaction is started when we hit this many files.
constexpr int kL0CompactionTrigger = 4;

/// Soft limit on number of level-0 files: writes are slowed at this point.
constexpr int kL0SlowdownWritesTrigger = 8;

/// Maximum number of level-0 files: writes are stopped at this point.
constexpr int kL0StopWritesTrigger = 12;

/// Maximum level to which a new compacted memtable is pushed if it does
/// not create overlap.
constexpr int kMaxMemCompactLevel = 2;

/// The value type tag stored in the low 8 bits of the 64-bit mark field.
enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

/// kValueTypeForSeek defines the ValueType that should be passed when
/// constructing a ParsedInternalKey object for seeking to a particular
/// sequence number (since we sort sequence numbers in decreasing order
/// and the value type is embedded as the low 8 bits in the sequence
/// number in internal keys, we need to use the highest-numbered
/// ValueType, not the lowest).
constexpr ValueType kValueTypeForSeek = kTypeValue;

using SequenceNumber = uint64_t;

/// Sequence numbers occupy the top 56 bits of the 64-bit mark field.
constexpr SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

/// An internal key decomposed into its parts. The paper's "mark fields"
/// (the trailing 8 bytes after the user key) are exactly
/// (sequence << 8) | type.
struct ParsedInternalKey {
  ParsedInternalKey() = default;
  ParsedInternalKey(const Slice& u, const SequenceNumber& seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}

  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;

  std::string DebugString() const;
};

/// Length of the encoding of `key`.
inline size_t InternalKeyEncodingLength(const ParsedInternalKey& key) {
  return key.user_key.size() + 8;
}

/// Appends the serialization of `key` to *result.
void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

/// Parses an internal key; returns false on malformed input.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

/// Returns the user key portion of an internal key.
inline Slice ExtractUserKey(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return Slice(internal_key.data(), internal_key.size() - 8);
}

/// Returns the raw 64-bit mark field ((sequence << 8) | type).
inline uint64_t ExtractMark(const Slice& internal_key) {
  assert(internal_key.size() >= 8);
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

/// Packs a sequence number and value type into a mark field.
inline uint64_t PackSequenceAndType(uint64_t seq, ValueType t) {
  assert(seq <= kMaxSequenceNumber);
  return (seq << 8) | t;
}

/// A comparator for internal keys: orders by user key ascending, then by
/// sequence number descending (newer entries first), then type
/// descending.
class InternalKeyComparator : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* c) : user_comparator_(c) {}

  const char* Name() const override;
  int Compare(const Slice& a, const Slice& b) const override;
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

  int Compare(const class InternalKey& a, const class InternalKey& b) const;

 private:
  const Comparator* user_comparator_;
};

/// Filter policy wrapper that converts internal keys to user keys before
/// consulting the user-supplied policy.
class InternalFilterPolicy : public FilterPolicy {
 public:
  explicit InternalFilterPolicy(const FilterPolicy* p) : user_policy_(p) {}
  const char* Name() const override;
  void CreateFilter(const Slice* keys, int n, std::string* dst) const override;
  bool KeyMayMatch(const Slice& key, const Slice& filter) const override;

 private:
  const FilterPolicy* const user_policy_;
};

/// InternalKey owns the encoded bytes of an internal key. Using a class
/// instead of a plain string avoids accidentally mixing user keys and
/// internal keys.
class InternalKey {
 public:
  InternalKey() = default;  // Leave rep_ as empty to indicate it is invalid.
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool DecodeFrom(const Slice& s) {
    rep_.assign(s.data(), s.size());
    return !rep_.empty();
  }

  Slice Encode() const {
    assert(!rep_.empty());
    return rep_;
  }

  Slice user_key() const { return ExtractUserKey(rep_); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

  std::string DebugString() const;

 private:
  std::string rep_;
};

inline int InternalKeyComparator::Compare(const InternalKey& a,
                                          const InternalKey& b) const {
  return Compare(a.Encode(), b.Encode());
}

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  const size_t n = internal_key.size();
  if (n < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + n - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), n - 8);
  return (c <= static_cast<uint8_t>(kTypeValue));
}

/// A helper class useful for DB::Get(): holds one allocation with
/// the memtable lookup key (length-prefixed internal key) and the
/// internal key.
class LookupKey {
 public:
  /// Initializes *this for looking up user_key at snapshot `sequence`.
  LookupKey(const Slice& user_key, SequenceNumber sequence);

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  ~LookupKey();

  /// A key suitable for lookup in a MemTable.
  Slice memtable_key() const { return Slice(start_, end_ - start_); }

  /// An internal key (suitable for passing to an internal iterator).
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }

  /// The user key.
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  // We construct a char array of the form:
  //    klength  varint32               <-- start_
  //    userkey  char[klength]          <-- kstart_
  //    tag      uint64
  //                                    <-- end_
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // Avoid allocation for short keys.
};

inline LookupKey::~LookupKey() {
  if (start_ != space_) delete[] start_;
}

}  // namespace fcae

#endif  // FCAE_LSM_DBFORMAT_H_
