#include "lsm/integrity_scrubber.h"

#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "lsm/version_edit.h"
#include "lsm/version_set.h"
#include "table/table_verifier.h"

namespace fcae {

std::vector<ScrubItem> IntegrityScrubber::BuildWorkList(const Version* v) {
  std::vector<ScrubItem> items;
  for (int level = 0; level < kNumLevels; level++) {
    for (const FileMetaData* f : v->files(level)) {
      ScrubItem item;
      item.level = level;
      item.number = f->number;
      item.file_size = f->file_size;
      item.has_file_checksum = f->has_file_checksum;
      item.file_checksum = f->file_checksum;
      item.smallest = f->smallest.Encode().ToString();
      item.largest = f->largest.Encode().ToString();
      items.push_back(std::move(item));
    }
  }
  return items;
}

Status IntegrityScrubber::VerifyItem(Env* env, const Options& options,
                                     const std::string& dbname,
                                     const InternalKeyComparator* icmp,
                                     RateLimiter* limiter,
                                     const ScrubItem& item,
                                     uint64_t* bytes_verified) {
  TableVerifySpec spec;
  spec.file_size = item.file_size;
  spec.has_file_checksum = item.has_file_checksum;
  spec.file_checksum = item.file_checksum;
  spec.comparator = icmp;
  spec.smallest = item.smallest;
  spec.largest = item.largest;
  spec.rate_limiter = limiter;

  TableVerifyReport report;
  Status s = VerifyTable(env, options, TableFileName(dbname, item.number),
                         spec, &report);
  if (bytes_verified != nullptr) {
    *bytes_verified = report.bytes;
  }
  return s;
}

}  // namespace fcae
