#ifndef FCAE_LSM_FILENAME_H_
#define FCAE_LSM_FILENAME_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace fcae {

class Env;

enum class FileType {
  kLogFile,
  kDBLockFile,
  kTableFile,
  kDescriptorFile,
  kCurrentFile,
  kTempFile,
  kInfoLogFile,
};

/// Returns the name of the WAL file with the specified number.
std::string LogFileName(const std::string& dbname, uint64_t number);

/// Returns the name of the SSTable with the specified number.
std::string TableFileName(const std::string& dbname, uint64_t number);

/// Returns the name of the descriptor (manifest) file.
std::string DescriptorFileName(const std::string& dbname, uint64_t number);

/// Returns the name of the CURRENT file, which points at the current
/// manifest.
std::string CurrentFileName(const std::string& dbname);

/// Returns the name of the database lock file.
std::string LockFileName(const std::string& dbname);

/// Returns the name of a temporary file.
std::string TempFileName(const std::string& dbname, uint64_t number);

/// If `filename` is an fcae database file, stores its type in *type and
/// the file number (0 for metadata files without one) in *number and
/// returns true.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

/// Makes the CURRENT file point to the descriptor file with the given
/// number.
Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number);

}  // namespace fcae

#endif  // FCAE_LSM_FILENAME_H_
