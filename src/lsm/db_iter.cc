#include "lsm/db_iter.h"

#include "lsm/db_impl.h"
#include "obs/perf_context.h"
#include "table/iterator.h"
#include "util/random.h"

namespace fcae {

namespace {

// DBIter combines multiple entries for the same user key found in the
// underlying internal iterator into a single entry, accounting for
// sequence numbers and deletion markers.
class DBIter : public Iterator {
 public:
  // Which direction is the iterator currently moving?
  // (1) When moving forward, the internal iterator is positioned at the
  //     exact entry that yields this->key(), this->value().
  // (2) When moving backwards, the internal iterator is positioned just
  //     before all entries whose user key == this->key().
  enum Direction { kForward, kReverse };

  DBIter(DBImpl* db, const Comparator* cmp, Iterator* iter,
         SequenceNumber s, uint32_t seed)
      : db_(db),
        user_comparator_(cmp),
        iter_(iter),
        sequence_(s),
        direction_(kForward),
        valid_(false),
        rnd_(seed),
        bytes_until_read_sampling_(RandomCompactionPeriod()) {}

  DBIter(const DBIter&) = delete;
  DBIter& operator=(const DBIter&) = delete;

  ~DBIter() override { delete iter_; }

  bool Valid() const override { return valid_; }
  Slice key() const override {
    assert(valid_);
    return (direction_ == kForward) ? ExtractUserKey(iter_->key())
                                    : saved_key_;
  }
  Slice value() const override {
    assert(valid_);
    return (direction_ == kForward) ? iter_->value() : saved_value_;
  }
  Status status() const override {
    if (status_.ok()) {
      return iter_->status();
    } else {
      return status_;
    }
  }

  void Next() override;
  void Prev() override;
  void Seek(const Slice& target) override;
  void SeekToFirst() override;
  void SeekToLast() override;

 private:
  void FindNextUserEntry(bool skipping, std::string* skip);
  void FindPrevUserEntry();
  bool ParseKey(ParsedInternalKey* key);

  inline void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  inline void ClearSavedValue() {
    if (saved_value_.capacity() > 1048576) {
      std::string empty;
      swap(empty, saved_value_);
    } else {
      saved_value_.clear();
    }
  }

  /// Picks the number of bytes that can be read until a compaction is
  /// scheduled (read sampling for seek compactions).
  size_t RandomCompactionPeriod() {
    return rnd_.Uniform(2 * 1048576 /* kReadBytesPeriod */);
  }

  DBImpl* db_;
  const Comparator* const user_comparator_;
  Iterator* const iter_;
  SequenceNumber const sequence_;
  Status status_;
  std::string saved_key_;    // == current key when direction_==kReverse
  std::string saved_value_;  // == current raw value when direction_==kReverse
  Direction direction_;
  bool valid_;
  Random rnd_;
  size_t bytes_until_read_sampling_;
};

inline bool DBIter::ParseKey(ParsedInternalKey* ikey) {
  Slice k = iter_->key();

  size_t bytes_read = k.size() + iter_->value().size();
  while (bytes_until_read_sampling_ < bytes_read) {
    bytes_until_read_sampling_ += RandomCompactionPeriod();
    db_->RecordReadSample(k);
  }
  assert(bytes_until_read_sampling_ >= bytes_read);
  bytes_until_read_sampling_ -= bytes_read;

  if (!ParseInternalKey(k, ikey)) {
    status_ = Status::Corruption("corrupted internal key in DBIter");
    return false;
  } else {
    return true;
  }
}

void DBIter::Next() {
  assert(valid_);

  if (direction_ == kReverse) {  // Switch directions?
    direction_ = kForward;
    // iter_ is pointing just before the entries for this->key(), so
    // advance into the range of entries for this->key() and then use
    // the normal skipping code below.
    if (!iter_->Valid()) {
      iter_->SeekToFirst();
    } else {
      iter_->Next();
    }
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
    // saved_key_ already contains the key to skip past.
  } else {
    // Store in saved_key_ the current key so we skip it below.
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);

    // iter_ is pointing to current key. We can now safely move to the
    // next to avoid checking current key.
    iter_->Next();
    if (!iter_->Valid()) {
      valid_ = false;
      saved_key_.clear();
      return;
    }
  }

  FindNextUserEntry(true, &saved_key_);
}

void DBIter::FindNextUserEntry(bool skipping, std::string* skip) {
  // Loop until we hit an acceptable entry to yield.
  assert(iter_->Valid());
  assert(direction_ == kForward);
  do {
    ParsedInternalKey ikey;
    if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
      switch (ikey.type) {
        case kTypeDeletion:
          // Arrange to skip all upcoming entries for this key since
          // they are hidden by this deletion.
          SaveKey(ikey.user_key, skip);
          skipping = true;
          FCAE_PERF_COUNT(internal_keys_skipped, 1);
          break;
        case kTypeValue:
          if (skipping &&
              user_comparator_->Compare(ikey.user_key, *skip) <= 0) {
            // Entry hidden.
            FCAE_PERF_COUNT(internal_keys_skipped, 1);
          } else {
            valid_ = true;
            saved_key_.clear();
            return;
          }
          break;
      }
    }
    iter_->Next();
  } while (iter_->Valid());
  saved_key_.clear();
  valid_ = false;
}

void DBIter::Prev() {
  assert(valid_);

  if (direction_ == kForward) {  // Switch directions?
    // iter_ is pointing at the current entry. Scan backwards until the
    // key changes so we can use the normal reverse scanning code.
    assert(iter_->Valid());  // Otherwise valid_ would have been false.
    SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
    while (true) {
      iter_->Prev();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        ClearSavedValue();
        return;
      }
      if (user_comparator_->Compare(ExtractUserKey(iter_->key()),
                                    saved_key_) < 0) {
        break;
      }
    }
    direction_ = kReverse;
  }

  FindPrevUserEntry();
}

void DBIter::FindPrevUserEntry() {
  assert(direction_ == kReverse);

  ValueType value_type = kTypeDeletion;
  if (iter_->Valid()) {
    do {
      ParsedInternalKey ikey;
      if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
        if ((value_type != kTypeDeletion) &&
            user_comparator_->Compare(ikey.user_key, saved_key_) < 0) {
          // We encountered a non-deleted value in entries for previous
          // keys.
          break;
        }
        value_type = ikey.type;
        if (value_type == kTypeDeletion) {
          saved_key_.clear();
          ClearSavedValue();
        } else {
          Slice raw_value = iter_->value();
          if (saved_value_.capacity() > raw_value.size() + 1048576) {
            std::string empty;
            swap(empty, saved_value_);
          }
          SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
          saved_value_.assign(raw_value.data(), raw_value.size());
        }
      }
      iter_->Prev();
    } while (iter_->Valid());
  }

  if (value_type == kTypeDeletion) {
    // End.
    valid_ = false;
    saved_key_.clear();
    ClearSavedValue();
    direction_ = kForward;
  } else {
    valid_ = true;
  }
}

void DBIter::Seek(const Slice& target) {
  direction_ = kForward;
  ClearSavedValue();
  saved_key_.clear();
  AppendInternalKey(&saved_key_,
                    ParsedInternalKey(target, sequence_, kValueTypeForSeek));
  iter_->Seek(saved_key_);
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_ /* temporary storage */);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToFirst() {
  direction_ = kForward;
  ClearSavedValue();
  iter_->SeekToFirst();
  if (iter_->Valid()) {
    FindNextUserEntry(false, &saved_key_ /* temporary storage */);
  } else {
    valid_ = false;
  }
}

void DBIter::SeekToLast() {
  direction_ = kReverse;
  ClearSavedValue();
  iter_->SeekToLast();
  FindPrevUserEntry();
}

}  // namespace

Iterator* NewDBIterator(DBImpl* db, const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        uint32_t seed) {
  return new DBIter(db, user_key_comparator, internal_iter, sequence, seed);
}

}  // namespace fcae
