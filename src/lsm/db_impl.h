#ifndef FCAE_LSM_DB_IMPL_H_
#define FCAE_LSM_DB_IMPL_H_

#include <atomic>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lsm/compaction_executor.h"
#include "lsm/compaction_scheduler.h"
#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "lsm/log_writer.h"
#include "lsm/snapshot.h"
#include "obs/event_listener.h"
#include "obs/metrics.h"
#include "obs/stats_dumper.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/rate_limiter.h"
#include "util/thread_annotations.h"
#include "util/write_controller.h"

namespace fcae {

class MemTable;
class TableCache;
class Version;
class VersionEdit;
class VersionSet;

class DBImpl : public DB {
 public:
  DBImpl(const Options& options, const std::string& dbname);

  DBImpl(const DBImpl&) = delete;
  DBImpl& operator=(const DBImpl&) = delete;

  ~DBImpl() override;

  // Implementations of the DB interface.
  Status Put(const WriteOptions&, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions&, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions&) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  void GetApproximateSizes(const Range* range, int n, uint64_t* sizes) override;
  void CompactRange(const Slice* begin, const Slice* end) override;
  Status Resume() override;
  Status ScrubNow() override;

  // Extra methods (for testing and benchmarking).

  /// Compacts any files in the named level that overlap [*begin,*end].
  void TEST_CompactRange(int level, const Slice* begin, const Slice* end);

  /// Forces current memtable contents to be flushed.
  Status TEST_CompactMemTable();

  /// Runs one obsolete-file collection pass (crash-recovery tests use
  /// this to check that nothing unreferenced lingers once version pins
  /// from background work have drained).
  void TEST_RemoveObsoleteFiles();

  /// Returns an internal iterator over the current state of the
  /// database.
  Iterator* TEST_NewInternalIterator();

  /// Directly quarantines / unquarantines a table file, bypassing
  /// detection. Containment-window tests use this to pin a file in the
  /// quarantined state (no repair runs) and observe read routing.
  void TEST_QuarantineFile(uint64_t number);
  void TEST_UnquarantineFile(uint64_t number);

  /// Returns the maximum overlapping data (in bytes) at next level for
  /// any file at a level >= 1.
  int64_t TEST_MaxNextLevelOverlappingBytes();

  /// Samples a key read at `key` (an internal key); may schedule a
  /// seek-triggered compaction.
  void RecordReadSample(Slice key);

  /// Aggregate offload statistics (device path).
  CompactionExecStats OffloadStats();

  /// Compactions the primary (device) executor failed and the CPU
  /// executor completed instead (graceful degradation).
  int64_t FallbackCompactions();

 private:
  friend class DB;
  struct CompactionState;
  struct Writer;

  Iterator* NewInternalIterator(const ReadOptions&,
                                SequenceNumber* latest_snapshot,
                                uint32_t* seed);

  Status NewDB();

  /// Recovers the descriptor from persistent storage. May do a
  /// significant amount of work to recover recently logged updates.
  Status Recover(VersionEdit* edit, bool* save_manifest) REQUIRES(mutex_);

  void MaybeIgnoreError(Status* s) const;

  /// Deletes any unneeded files and stale in-memory entries.
  void RemoveObsoleteFiles() REQUIRES(mutex_);

  /// Compacts the in-memory write buffer to disk; switches to a new
  /// log-file/memtable and writes a new descriptor iff successful.
  void CompactMemTable() REQUIRES(mutex_);

  Status RecoverLogFile(uint64_t log_number, bool last_log,
                        bool* save_manifest, VersionEdit* edit,
                        SequenceNumber* max_sequence) REQUIRES(mutex_);

  /// Builds an SSTable from `mem` and records it in *edit. When
  /// `pending_file`/`reserved_level` are non-null (the live flush path)
  /// the new file number stays in pending_outputs_ and the target level
  /// stays reserved in the scheduler until the caller installs the edit
  /// and clears both — otherwise a concurrent worker could delete the
  /// not-yet-live table or install an overlapping file into the level.
  /// Null pointers (recovery path, no background threads) restore the
  /// classic immediate-release behaviour.
  /// When `flush_info` is non-null it is filled with the built table's
  /// number, size, and build duration for the OnFlushCompleted event.
  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit, Version* base,
                          uint64_t* pending_file, int* reserved_level,
                          obs::FlushJobInfo* flush_info = nullptr)
      REQUIRES(mutex_);

  Status MakeRoomForWrite(bool force /* compact even if there is room? */)
      REQUIRES(mutex_);
  WriteBatch* BuildBatchGroup(Writer** last_writer) REQUIRES(mutex_);

  /// Samples the compaction-debt signals the WriteController prices:
  /// L0 file count, pending compaction bytes, and the live+immutable
  /// memtable footprint (DESIGN.md §10).
  WriteStallConditions SampleWriteStallConditions() REQUIRES(mutex_);

  /// Bridges the shared RateLimiter's monotonic statistics into the
  /// `ratelimiter.*` obs counters (delta-based, so external limiters
  /// shared across DBs still export sane per-registry values).
  void PumpRateLimiterMetrics() REQUIRES(mutex_);

  /// Bridges trace-ring evictions into the `obs.trace.dropped_events`
  /// counter (delta-based, same discipline as PumpRateLimiterMetrics).
  void PumpTraceMetrics() REQUIRES(mutex_);

  /// One periodic stats dump (the StatsDumper callback): renders
  /// GetProperty("fcae.stats") — cumulative plus interval — and emits
  /// it as a structured "fcae.stats" record through options_.info_log.
  void DumpStats(uint64_t seq) EXCLUDES(mutex_);

  // Listener notification helpers. Each snapshots its payload, drops
  // mutex_ for the callbacks (the listener contract forbids holding
  // the DB lock), and reacquires before returning. No-ops — without
  // touching the lock — when no listeners are registered. Callers must
  // tolerate the mutex release, i.e. re-validate any cached state.
  void NotifyFlushEvent(bool begin, const obs::FlushJobInfo& info)
      REQUIRES(mutex_);
  void NotifyWriteStall(bool begin, obs::WriteStallCause cause,
                        uint64_t micros) REQUIRES(mutex_);
  void NotifyBackgroundErrorEvent(const Status& s, bool hard)
      REQUIRES(mutex_);
  void NotifyResumeEvent() REQUIRES(mutex_);

  // Background-error state machine (DESIGN.md §9): OK -> SoftError
  // (retryable I/O; auto-resume with bounded backoff, or DB::Resume())
  // -> HardError (corruption-class; sticky until reopen). A soft error
  // may escalate to hard; never the reverse.
  enum class BgErrorSeverity { kNone, kSoft, kHard };
  static BgErrorSeverity ClassifyBackgroundError(const Status& s);

  /// Records `s` as the background error unless it is a transient
  /// device condition (Busy/DeviceLost) that the offload path's CPU
  /// fallback already owns — those must never wedge writers. Soft
  /// errors schedule an auto-resume attempt.
  void RecordBackgroundError(const Status& s) REQUIRES(mutex_);

  /// Queues one auto-resume attempt on the "fcae-resume" pool if the
  /// current error is soft and the attempt budget is not exhausted.
  void ScheduleAutoResume() REQUIRES(mutex_);
  static void BGResumeWork(void* db);
  void BackgroundResumeCall();

  /// One resume attempt: durably installs a fresh manifest (the failed
  /// descriptor's tail is not trusted), rotates the WAL when safe,
  /// clears the soft error, reclaims orphaned outputs, and restarts
  /// background work. On failure the soft error stays set.
  Status ResumeLocked() REQUIRES(mutex_);

  void MaybeScheduleCompaction() REQUIRES(mutex_);
  static void BGFlushWork(void* db);
  static void BGCompactionWork(void* db);
  static void BGScrubWork(void* db);
  void BackgroundFlushCall();
  void BackgroundCompactionCall();
  void BackgroundScrubCall();
  void BackgroundCompaction() REQUIRES(mutex_);

  // --- Integrity scrubbing and corruption containment (DESIGN.md §14).

  /// One full scrub cycle: repairs any leftover quarantined files, then
  /// verifies every live table (whole-file checksum vs the manifest,
  /// block CRCs, key order, bounds), quarantining and repairing
  /// failures as it finds them. Drops mutex_ around all file I/O; the
  /// scrub_cycle_active_ flag keeps cycles from interleaving. Returns
  /// the first environmental (non-corruption) error, or OK — corruption
  /// found and healed is still OK.
  Status RunScrubCycle() REQUIRES(mutex_);

  /// True iff `number` is a table in the current version.
  bool TableIsLive(uint64_t number) REQUIRES(mutex_);

  /// Contains a detected-corrupt table: quarantines it (reads route
  /// around it from here on), evicts its cached handle, and emits the
  /// corruption/quarantine events and metrics. `source` names the
  /// detector ("scrub", "compaction"). Returns true iff the file was
  /// live and newly quarantined — the caller then owes it a
  /// RepairQuarantinedFile call. Drops mutex_ for listener callbacks.
  bool HandleCorruptTable(uint64_t number, const char* source,
                          const Status& s) REQUIRES(mutex_);

  /// Repairs one quarantined table: claims its level, salvages the
  /// clean blocks into a fresh table (dropping the damaged ones),
  /// installs the swap in one version edit, and lifts the quarantine.
  /// On salvage failure the file stays quarantined for a later cycle;
  /// the DB keeps running either way. Drops mutex_ during salvage I/O.
  void RepairQuarantinedFile(uint64_t number) REQUIRES(mutex_);

  /// Corruption containment for a failed compaction: re-verifies every
  /// input file, quarantines the damaged ones (appending them to
  /// *to_repair for the caller to repair once the compaction's level
  /// claim is released), and only falls back to a sticky background
  /// error when no input actually fails verification.
  void ContainCompactionCorruption(Compaction* c, const Status& s,
                                   std::vector<uint64_t>* to_repair)
      REQUIRES(mutex_);
  void CleanupCompaction(CompactionState* compact) REQUIRES(mutex_);

  /// True iff a newly dispatched worker could claim a compaction now
  /// (manual or picker) given the levels current jobs occupy.
  bool HasClaimableCompaction() REQUIRES(mutex_);

  /// Serialized VersionSet::LogAndApply: brackets the call with the
  /// scheduler's manifest lock so concurrent jobs cannot interleave
  /// MANIFEST records while the mutex is dropped for the file write.
  Status LogAndApplyLocked(VersionEdit* edit) REQUIRES(mutex_);

  /// Runs one table-merging compaction through the configured executor
  /// (device if eligible, CPU fallback otherwise), sharding large
  /// L0->L1 jobs into key-disjoint sub-compactions when enabled, and
  /// installs all results atomically in one version edit.
  Status DoCompactionWork(Compaction* c) REQUIRES(mutex_);

  struct CompactionShard;

  /// Thread trampoline for parallel shards: runs one shard and signals
  /// the driving job's latch.
  static void ShardThreadMain(void* arg);

  /// Executes one shard without the mutex: runs its executor, and on a
  /// device failure scrubs the shard's partial outputs and reruns it on
  /// the CPU executor.
  void RunCompactionShard(CompactionShard* shard) EXCLUDES(mutex_);

  Status InstallCompactionResults(Compaction* c,
                                  const std::vector<CompactionOutput>& outputs)
      REQUIRES(mutex_);

  const Comparator* user_comparator() const {
    return internal_comparator_.user_comparator();
  }

  // Constant after construction.
  Env* const env_;
  const InternalKeyComparator internal_comparator_;
  const InternalFilterPolicy internal_filter_policy_;
  const Options options_;  // options_.comparator == &internal_comparator_
  const std::string dbname_;

  // table_cache_ provides its own synchronization.
  std::unique_ptr<TableCache> table_cache_;

  // Executors: `executor_` is the configured primary (may be an FPGA
  // offload engine); `cpu_executor_` is the always-available fallback.
  std::unique_ptr<CompactionExecutor> owned_cpu_executor_;
  CompactionExecutor* primary_executor_;  // Borrowed from options, or CPU.

  // Observability (obs/): metrics_ is options_.metrics_registry when the
  // caller supplied a shared registry, else owned_metrics_. trace_ is
  // always DB-owned (a bounded ring readable via "fcae.trace");
  // options_.trace_sink, when set, additionally sees each event live.
  // Both are internally synchronized (leaf locks under mutex_).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* const metrics_;
  obs::TraceRecorder trace_;
  // Fan-out for Options::listeners; immutable after construction, so
  // safe to notify from any thread without a lock. All notifications
  // are issued with mutex_ released (see the Notify* helpers).
  const obs::EventNotifier notifier_;
  // Continuous stats export (Options::stats_dump_period_sec). Started
  // by DB::Open after recovery, stopped at the top of the destructor
  // before background work drains.
  std::unique_ptr<obs::StatsDumper> stats_dumper_;
  // Logical chrome://tracing track per compaction so concurrent or
  // interleaved compactions do not share a row. Track 0 is reserved for
  // the scheduler (pick) and memtable flushes.
  std::atomic<uint64_t> next_trace_tid_{1};

  // Lock over the database directory (released in the destructor).
  FileLock* db_lock_ = nullptr;

  // State below is protected by mutex_. Members without a GUARDED_BY
  // are the deliberate exceptions, each protected by a documented
  // protocol instead of the lock itself:
  //  - mem_ is written into without the mutex by the writer at the
  //    front of writers_ (the front-writer role is the exclusion);
  //  - logfile_/log_ are appended to under the same front-writer role;
  //  - shutting_down_/has_imm_ are atomics read by unlocked fast paths.
  Mutex mutex_;
  std::atomic<bool> shutting_down_;
  CondVar background_work_finished_signal_;
  MemTable* mem_;
  MemTable* imm_ GUARDED_BY(mutex_);  // Memtable being compacted.
  std::atomic<bool> has_imm_;         // So bg thread can detect non-null imm_.
  WritableFile* logfile_;
  uint64_t logfile_number_ GUARDED_BY(mutex_);
  log::Writer* log_;
  uint32_t seed_ GUARDED_BY(mutex_);  // For sampling.

  // Queue of writers.
  std::deque<Writer*> writers_ GUARDED_BY(mutex_);
  WriteBatch* tmp_batch_ GUARDED_BY(mutex_);

  SnapshotList snapshots_ GUARDED_BY(mutex_);

  // Set of table files to protect from deletion because they are part
  // of ongoing compactions.
  std::set<uint64_t> pending_outputs_ GUARDED_BY(mutex_);

  // Parallel background-work bookkeeping: flush lane, worker slots,
  // busy-level claims, manifest serialization (DESIGN.md §8). The
  // scheduler itself follows the VersionSet discipline: every call is
  // made with mutex_ held.
  std::unique_ptr<CompactionScheduler> scheduler_ GUARDED_BY(mutex_);

  // Information for a manual compaction.
  struct ManualCompaction {
    int level;
    bool done;
    bool in_progress;          // A worker has claimed this pass.
    const InternalKey* begin;  // null means beginning of key range
    const InternalKey* end;    // null means end of key range
    InternalKey tmp_storage;   // Used to keep track of compaction progress
  };
  ManualCompaction* manual_compaction_ GUARDED_BY(mutex_);

  VersionSet* const versions_ GUARDED_BY(mutex_);

  // Background-error state (see ClassifyBackgroundError): the error, its
  // severity, and auto-resume bookkeeping. resume_scheduled_ is also the
  // destructor's drain condition for the resume worker.
  // Integrity-scrub state (DESIGN.md §14): at most one cycle runs at a
  // time — scrub_cycle_active_ serializes the background scrub lane
  // against DB::ScrubNow() callers (both drop mutex_ mid-cycle).
  bool scrub_cycle_active_ GUARDED_BY(mutex_) = false;
  uint64_t last_scrub_micros_ GUARDED_BY(mutex_) = 0;

  Status bg_error_ GUARDED_BY(mutex_);
  BgErrorSeverity bg_error_severity_ GUARDED_BY(mutex_) = BgErrorSeverity::kNone;
  int resume_attempts_ GUARDED_BY(mutex_) = 0;
  bool resume_scheduled_ GUARDED_BY(mutex_) = false;

  // Per-level compaction stats.
  struct CompactionStats {
    CompactionStats() : micros(0), bytes_read(0), bytes_written(0) {}

    void Add(const CompactionStats& c) {
      this->micros += c.micros;
      this->bytes_read += c.bytes_read;
      this->bytes_written += c.bytes_written;
    }

    int64_t micros;
    int64_t bytes_read;
    int64_t bytes_written;
  };
  CompactionStats stats_[kNumLevels] GUARDED_BY(mutex_);

  // Aggregate executor statistics (e.g. offloaded compaction count).
  CompactionExecStats exec_stats_ GUARDED_BY(mutex_);
  int64_t compactions_offloaded_ GUARDED_BY(mutex_);
  int64_t compactions_on_cpu_ GUARDED_BY(mutex_);
  // Jobs the primary (device) executor failed that were rerun — and
  // completed — on the CPU executor (graceful degradation).
  int64_t compactions_fallback_ GUARDED_BY(mutex_);

  // Overload protection (DESIGN.md §10): the WriteController prices
  // compaction debt into per-write delays and stop states; the
  // RateLimiter in options_ (owned iff SanitizeOptions created it)
  // throttles background file writes underneath it.
  WriteController write_controller_ GUARDED_BY(mutex_);
  const bool owns_rate_limiter_;
  // High-water marks already exported into the ratelimiter.* counters
  // (the limiter keeps its own monotonic totals; see
  // PumpRateLimiterMetrics).
  uint64_t rl_exported_bytes_through_ GUARDED_BY(mutex_) = 0;
  uint64_t rl_exported_throttled_bytes_ GUARDED_BY(mutex_) = 0;
  uint64_t rl_exported_wait_micros_ GUARDED_BY(mutex_) = 0;
  uint64_t rl_exported_requests_ GUARDED_BY(mutex_) = 0;
  // Trace-ring evictions already exported into obs.trace.dropped_events
  // (the recorder keeps its own monotonic total; see PumpTraceMetrics).
  uint64_t trace_dropped_exported_ GUARDED_BY(mutex_) = 0;

  // Baseline for the interval section of GetProperty("fcae.stats"):
  // refreshed on every "stats" read, so each read reports activity
  // since the previous one (the windowed view the stats dumper emits).
  obs::MetricsRegistry::Snapshot stats_window_ GUARDED_BY(mutex_);

  // Write-pause accounting (the paper's Section I phenomenon): how
  // often and for how long MakeRoomForWrite throttled the client.
  int64_t slowdown_count_ GUARDED_BY(mutex_) = 0;  // Debt delays (L0 >= 8).
  int64_t slowdown_micros_ GUARDED_BY(mutex_) = 0;
  int64_t stall_memtable_count_ GUARDED_BY(mutex_) = 0;  // Flush waits.
  int64_t stall_memtable_micros_ GUARDED_BY(mutex_) = 0;
  int64_t stall_l0_count_ GUARDED_BY(mutex_) = 0;  // Hard stops (L0 >= 12).
  int64_t stall_l0_micros_ GUARDED_BY(mutex_) = 0;
};

/// Sanitizes db options: clips user-supplied values to reasonable ranges
/// and fills in defaults.
Options SanitizeOptions(const std::string& db,
                        const InternalKeyComparator* icmp,
                        const InternalFilterPolicy* ipolicy,
                        const Options& src);

}  // namespace fcae

#endif  // FCAE_LSM_DB_IMPL_H_
