#ifndef FCAE_LSM_VERSION_SET_H_
#define FCAE_LSM_VERSION_SET_H_

// The representation of a DB consists of a set of Versions. The newest
// version is called "current". Older versions may be kept around to
// provide a consistent view to live iterators.
//
// Each Version keeps track of a set of table files per level. The entire
// set of versions is maintained in a VersionSet.

#include <map>
#include <set>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/quarantine.h"
#include "lsm/version_edit.h"
#include "util/mutex.h"
#include "util/options.h"
#include "util/thread_annotations.h"

namespace fcae {

namespace log {
class Writer;
}

class Compaction;
class Iterator;
class TableCache;
class Version;
class VersionSet;
class WritableFile;

/// Returns the smallest index i such that files[i]->largest >= key.
/// Returns files.size() if there is no such file. Requires: files is a
/// sorted, disjoint list.
int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key);

/// Returns true iff some file in `files` overlaps the user key range
/// [*smallest_user_key, *largest_user_key] (nullptr = unbounded).
/// disjoint_sorted_files: true for levels > 0.
bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key);

class Version {
 public:
  struct GetStats {
    FileMetaData* seek_file;
    int seek_file_level;
  };

  /// Appends to *iters a sequence of iterators that will together yield
  /// the contents of this Version when merged.
  void AddIterators(const ReadOptions&, std::vector<Iterator*>* iters);

  /// Looks up the value for `key`; fills *stats for seek-triggered
  /// compaction accounting.
  Status Get(const ReadOptions&, const LookupKey& key, std::string* val,
             GetStats* stats);

  /// Adds `stats` into the state; returns true if a new compaction may
  /// need to be triggered.
  bool UpdateStats(const GetStats& stats);

  /// Records a sample of bytes read at the specified internal key.
  /// Returns true if a new compaction may need to be triggered.
  bool RecordReadSample(Slice key);

  /// Reference count management: live versions are pinned by iterators
  /// and the VersionSet itself.
  void Ref();
  void Unref();

  /// Stores in *inputs all files in `level` that overlap
  /// [begin, end] (nullptr = unbounded).
  void GetOverlappingInputs(int level, const InternalKey* begin,
                            const InternalKey* end,
                            std::vector<FileMetaData*>* inputs);

  /// Returns true iff some file in the specified level overlaps some
  /// part of [*smallest_user_key, *largest_user_key].
  bool OverlapInLevel(int level, const Slice* smallest_user_key,
                      const Slice* largest_user_key);

  /// Returns the level at which we should place a new memtable
  /// compaction result that covers the given user key range.
  int PickLevelForMemTableOutput(const Slice& smallest_user_key,
                                 const Slice& largest_user_key);

  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }

  const std::vector<FileMetaData*>& files(int level) const {
    return files_[level];
  }

  std::string DebugString() const;

 private:
  friend class Compaction;
  friend class VersionSet;

  class LevelFileNumIterator;

  explicit Version(VersionSet* vset)
      : vset_(vset),
        next_(this),
        prev_(this),
        refs_(0),
        file_to_compact_(nullptr),
        file_to_compact_level_(-1),
        compaction_score_(-1),
        compaction_level_(-1) {
    for (int i = 0; i < kNumLevels; i++) {
      level_scores_[i] = -1;
    }
  }

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  ~Version();

  Iterator* NewConcatenatingIterator(const ReadOptions&, int level) const;

  /// Calls func(arg, level, f) for every file that may contain user_key,
  /// newest first; stops when func returns false.
  void ForEachOverlapping(Slice user_key, Slice internal_key, void* arg,
                          bool (*func)(void*, int, FileMetaData*));

  VersionSet* vset_;  // VersionSet to which this Version belongs.
  Version* next_;     // Next version in linked list.
  Version* prev_;     // Previous version in linked list.
  int refs_;          // Number of live refs to this version.

  // List of files per level.
  std::vector<FileMetaData*> files_[kNumLevels];

  // Next file to compact based on seek stats.
  FileMetaData* file_to_compact_;
  int file_to_compact_level_;

  // Level that should be compacted next and its compaction score
  // (>= 1 means a compaction is needed). Computed by Finalize().
  double compaction_score_;
  int compaction_level_;

  // Per-level compaction scores (same formula as compaction_score_),
  // also computed by Finalize(). Lets the parallel scheduler pick a
  // second-best level when the best one is already being compacted.
  double level_scores_[kNumLevels];
};

/// VersionSet is not internally synchronized: every mutating or
/// state-reading member requires external serialization, which in the
/// running system is DBImpl::mutex_ (the table cache it hands iterators
/// from is the one exception — that provides its own locking).
/// LogAndApply takes that mutex explicitly because it drops it around
/// the MANIFEST write.
class VersionSet {
 public:
  VersionSet(const std::string& dbname, const Options* options,
             TableCache* table_cache, const InternalKeyComparator*);

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  ~VersionSet();

  /// Applies *edit to the current version to form a new descriptor that
  /// is both saved to persistent state and installed as the new current
  /// version. Releases *mu while writing to the file.
  Status LogAndApply(VersionEdit* edit, Mutex* mu) REQUIRES(mu);

  /// Recovers the last saved descriptor from persistent storage.
  Status Recover(bool* save_manifest);

  /// Makes the next LogAndApply install its edit into a fresh manifest
  /// (full snapshot + atomic CURRENT switch) regardless of size. Used
  /// by DB::Resume(): after a background error the tail of the current
  /// descriptor file is not to be trusted.
  void ForceNewManifest() { force_new_manifest_ = true; }

  Version* current() const { return current_; }

  uint64_t ManifestFileNumber() const { return manifest_file_number_; }

  /// Allocates and returns a new file number.
  uint64_t NewFileNumber() { return next_file_number_++; }

  /// Arranges to reuse `file_number` unless a newer one has been
  /// allocated. Requires: `file_number` was returned by NewFileNumber().
  void ReuseFileNumber(uint64_t file_number) {
    if (next_file_number_ == file_number + 1) {
      next_file_number_ = file_number;
    }
  }

  int NumLevelFiles(int level) const;
  int64_t NumLevelBytes(int level) const;

  /// Estimated bytes compactions still owe to restore the leveled
  /// shape: every level's overage past its MaxBytesForLevel target,
  /// plus L0 bytes in files beyond the compaction trigger. This is the
  /// WriteController's pending-bytes debt signal (DESIGN.md §10).
  uint64_t PendingCompactionBytes() const;

  uint64_t LastSequence() const { return last_sequence_; }
  void SetLastSequence(uint64_t s) {
    assert(s >= last_sequence_);
    last_sequence_ = s;
  }

  /// Marks the specified file number as used.
  void MarkFileNumberUsed(uint64_t number);

  uint64_t LogNumber() const { return log_number_; }

  /// Picks the level and inputs for a new compaction; nullptr if none
  /// needed. Caller owns the result.
  Compaction* PickCompaction() { return PickCompaction(0); }

  /// Like PickCompaction() but skips any candidate level L for which
  /// bit L or bit L+1 of `busy_levels` is set (a compaction at L
  /// occupies levels L and L+1). Used by the parallel scheduler to run
  /// compactions on disjoint level pairs concurrently.
  Compaction* PickCompaction(uint32_t busy_levels);

  /// Counts how many disjoint compactions successive
  /// PickCompaction(mask) calls could claim right now, starting from
  /// `busy_levels`. The scheduler uses this to size its worker dispatch.
  int CountClaimableCompactions(uint32_t busy_levels) const;

  /// Returns a compaction covering the range [begin, end] in the
  /// specified level, or nullptr.
  Compaction* CompactRange(int level, const InternalKey* begin,
                           const InternalKey* end);

  /// Maximum overlapping bytes at the next level for any level-(>0) file.
  int64_t MaxNextLevelOverlappingBytes();

  /// Creates an iterator over the entire compaction input set.
  Iterator* MakeInputIterator(Compaction* c);

  /// Returns true iff some level needs a compaction.
  bool NeedsCompaction() const { return NeedsCompaction(0); }

  /// Returns true iff some level whose pair {L, L+1} is disjoint from
  /// `busy_levels` needs a compaction.
  bool NeedsCompaction(uint32_t busy_levels) const {
    Version* v = current_;
    for (int level = 0; level < kNumLevels - 1; level++) {
      if ((busy_levels & (3u << level)) != 0) continue;
      if (v->level_scores_[level] >= 1) return true;
    }
    if (v->file_to_compact_ != nullptr &&
        (busy_levels & (3u << v->file_to_compact_level_)) == 0) {
      return true;
    }
    return false;
  }

  /// Adds all live file numbers to *live.
  void AddLiveFiles(std::set<uint64_t>* live);

  /// Approximate file-space offset of `key` in version `v`.
  uint64_t ApproximateOffsetOf(Version* v, const InternalKey& key);

  /// Per-level summary string for logging.
  struct LevelSummaryStorage {
    char buffer[200];
  };
  const char* LevelSummary(LevelSummaryStorage* scratch) const;

  /// Max bytes allowed at `level` given the configured leveling ratio
  /// (paper Fig. 15d varies this from 4 to 16).
  double MaxBytesForLevel(int level) const;

  uint64_t MaxFileSizeForLevel(int level) const;

  const Options* options() const { return options_; }
  const InternalKeyComparator& icmp() const { return icmp_; }
  TableCache* table_cache() const { return table_cache_; }
  const std::string& dbname() const { return dbname_; }

  /// Files quarantined for detected corruption (DESIGN.md §14). Unlike
  /// the rest of VersionSet this is internally synchronized: the read
  /// path consults it without the DB mutex.
  QuarantineSet* quarantine() { return &quarantine_; }
  const QuarantineSet* quarantine() const { return &quarantine_; }

  /// True iff any of `c`'s input files is currently quarantined. Such a
  /// compaction must not run: it would either merge corrupt bytes into
  /// a deeper level or fail mid-merge; the repair job owns those files.
  bool InputsQuarantined(const Compaction* c) const;

 private:
  class Builder;

  friend class Compaction;
  friend class Version;

  bool ReuseManifest(const std::string& dscname,
                     const std::string& dscbase);

  void Finalize(Version* v);

  void GetRange(const std::vector<FileMetaData*>& inputs,
                InternalKey* smallest, InternalKey* largest);

  void GetRange2(const std::vector<FileMetaData*>& inputs1,
                 const std::vector<FileMetaData*>& inputs2,
                 InternalKey* smallest, InternalKey* largest);

  void SetupOtherInputs(Compaction* c);

  /// Saves current contents to *log.
  Status WriteSnapshot(log::Writer* log);

  void AppendVersion(Version* v);

  Env* const env_;
  const std::string dbname_;
  const Options* const options_;
  TableCache* const table_cache_;
  const InternalKeyComparator icmp_;
  uint64_t next_file_number_;
  uint64_t manifest_file_number_;
  uint64_t last_sequence_;
  uint64_t log_number_;

  // Opened lazily.
  WritableFile* descriptor_file_;
  log::Writer* descriptor_log_;
  // Bytes in the current descriptor file (for size-triggered rollover)
  // and the Resume()-requested rollover flag; both are guarded by the
  // same external serialization as the descriptor itself.
  uint64_t manifest_file_bytes_ = 0;
  bool force_new_manifest_ = false;
  Version dummy_versions_;  // Head of circular doubly-linked list.
  Version* current_;        // == dummy_versions_.prev_

  // Per-level key at which the next compaction at that level should
  // start. Either an empty string, or a valid InternalKey.
  std::string compact_pointer_[kNumLevels];

  // Corruption containment state; see quarantine().
  QuarantineSet quarantine_;
};

/// A Compaction encapsulates information about a compaction: the level,
/// the input files at level and level+1, and bookkeeping for the edit
/// that installs the results.
class Compaction {
 public:
  ~Compaction();

  /// The level being compacted: inputs from "level" and "level+1" are
  /// merged to produce a set of "level+1" files.
  int level() const { return level_; }

  /// The edit to apply to the current version to install this
  /// compaction's results.
  VersionEdit* edit() { return &edit_; }

  /// `which` must be 0 (level) or 1 (level+1).
  int num_input_files(int which) const {
    return static_cast<int>(inputs_[which].size());
  }

  /// Returns the i-th input file at level() + which.
  FileMetaData* input(int which, int i) const { return inputs_[which][i]; }

  const std::vector<FileMetaData*>& inputs(int which) const {
    return inputs_[which];
  }

  /// Maximum size of files to build during this compaction.
  uint64_t MaxOutputFileSize() const { return max_output_file_size_; }

  /// True if this compaction can be implemented by just moving a single
  /// input file to the next level (no merging or splitting).
  bool IsTrivialMove() const;

  /// Adds all inputs to this compaction as delete operations to *edit.
  void AddInputDeletions(VersionEdit* edit);

  /// Returns true if the information we have available guarantees that
  /// the compaction is producing data in "level+1" for which no data
  /// exists in levels greater than "level+1" — i.e. a deletion marker
  /// for user_key can be dropped.
  bool IsBaseLevelForKey(const Slice& user_key);

  /// True iff we should stop building the current output before
  /// processing internal_key, to bound future grandparent overlap.
  bool ShouldStopBefore(const Slice& internal_key);

  /// Releases the input version (once the compaction is done).
  void ReleaseInputs();

 private:
  friend class Version;
  friend class VersionSet;

  Compaction(const Options* options, int level);

  int level_;
  uint64_t max_output_file_size_;
  Version* input_version_;
  VersionEdit edit_;

  // Each compaction reads inputs from "level_" and "level_+1".
  std::vector<FileMetaData*> inputs_[2];

  // State used to check for number of overlapping grandparent files
  // (parent == level_ + 1, grandparent == level_ + 2).
  std::vector<FileMetaData*> grandparents_;
  size_t grandparent_index_;  // Index in grandparents_.
  bool seen_key_;             // Some output key has been seen.
  int64_t overlapped_bytes_;  // Bytes of overlap with grandparents.

  // level_ptrs_ holds indices into input_version_->files_: our state is
  // that we are positioned at one of the file ranges for each higher
  // level than the ones involved in this compaction (i.e. for all
  // L >= level_ + 2).
  size_t level_ptrs_[kNumLevels];
};

}  // namespace fcae

#endif  // FCAE_LSM_VERSION_SET_H_
