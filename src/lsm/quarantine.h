#ifndef FCAE_LSM_QUARANTINE_H_
#define FCAE_LSM_QUARANTINE_H_

#include <atomic>
#include <cstdint>
#include <set>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fcae {

/// The set of table file numbers currently quarantined for detected
/// corruption (DESIGN.md §14). A quarantined file stays in the Version
/// — removing it is the repair job's one atomic edit — but the read
/// path routes around it: point lookups skip it (and report Corruption
/// only when no clean source could serve the key) and iterators treat
/// it as empty; the compaction picker refuses to consume it as input.
///
/// Internally synchronized because the read path consults it without
/// the DB mutex. Contains() is a single relaxed atomic load while the
/// set is empty — the permanent state of a healthy DB — so the hot
/// read path pays nothing for the feature.
class QuarantineSet {
 public:
  QuarantineSet() = default;
  QuarantineSet(const QuarantineSet&) = delete;
  QuarantineSet& operator=(const QuarantineSet&) = delete;

  bool Contains(uint64_t file_number) const {
    if (count_.load(std::memory_order_acquire) == 0) {
      return false;
    }
    MutexLock lock(&mu_);
    return files_.count(file_number) > 0;
  }

  void Add(uint64_t file_number) {
    MutexLock lock(&mu_);
    files_.insert(file_number);
    count_.store(files_.size(), std::memory_order_release);
  }

  void Remove(uint64_t file_number) {
    MutexLock lock(&mu_);
    files_.erase(file_number);
    count_.store(files_.size(), std::memory_order_release);
  }

  size_t size() const { return count_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  std::vector<uint64_t> Snapshot() const {
    MutexLock lock(&mu_);
    return std::vector<uint64_t>(files_.begin(), files_.end());
  }

 private:
  mutable Mutex mu_;
  std::atomic<size_t> count_{0};
  std::set<uint64_t> files_ GUARDED_BY(mu_);
};

}  // namespace fcae

#endif  // FCAE_LSM_QUARANTINE_H_
