#include "lsm/log_writer.h"

#include <cstdint>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"

namespace fcae {
namespace log {

static void InitTypeCrc(uint32_t* type_crc) {
  for (int i = 0; i <= kMaxRecordType; i++) {
    char t = static_cast<char>(i);
    type_crc[i] = crc32c::Value(&t, 1);
  }
}

Writer::Writer(WritableFile* dest) : dest_(dest), block_offset_(0) {
  InitTypeCrc(type_crc_);
}

Writer::Writer(WritableFile* dest, uint64_t dest_length)
    : dest_(dest), block_offset_(dest_length % kBlockSize) {
  InitTypeCrc(type_crc_);
}

Status Writer::AddRecord(const Slice& slice) {
  const char* ptr = slice.data();
  size_t left = slice.size();

  // Fragment the record if necessary and emit it. Note that if slice is
  // empty, we still want to iterate once to emit a single zero-length
  // record.
  Status s;
  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    assert(leftover >= 0);
    if (leftover < kHeaderSize) {
      // Switch to a new block.
      if (leftover > 0) {
        // Fill the trailer with zeros.
        static_assert(kHeaderSize == 7, "trailer padding assumes 7 bytes");
        s = dest_->Append(Slice("\x00\x00\x00\x00\x00\x00", leftover));
        if (!s.ok()) return s;
      }
      block_offset_ = 0;
    }

    // Invariant: we never leave < kHeaderSize bytes in a block.
    assert(kBlockSize - block_offset_ - kHeaderSize >= 0);

    const size_t avail = kBlockSize - block_offset_ - kHeaderSize;
    const size_t fragment_length = (left < avail) ? left : avail;

    RecordType type;
    const bool end = (left == fragment_length);
    if (begin && end) {
      type = kFullType;
    } else if (begin) {
      type = kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }

    s = EmitPhysicalRecord(type, ptr, fragment_length);
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (s.ok() && left > 0);
  return s;
}

Status Writer::EmitPhysicalRecord(RecordType t, const char* ptr,
                                  size_t length) {
  assert(length <= 0xffff);  // Must fit in two bytes.
  assert(block_offset_ + kHeaderSize + length <= kBlockSize);

  // Format the header.
  char buf[kHeaderSize];
  buf[4] = static_cast<char>(length & 0xff);
  buf[5] = static_cast<char>(length >> 8);
  buf[6] = static_cast<char>(t);

  // Compute the crc of the record type and the payload.
  uint32_t crc = crc32c::Extend(type_crc_[t], ptr, length);
  crc = crc32c::Mask(crc);  // Adjust for storage.
  EncodeFixed32(buf, crc);

  // Write the header and the payload.
  Status s = dest_->Append(Slice(buf, kHeaderSize));
  if (s.ok()) {
    s = dest_->Append(Slice(ptr, length));
    if (s.ok()) {
      s = dest_->Flush();
    }
  }
  block_offset_ += kHeaderSize + static_cast<int>(length);
  return s;
}

}  // namespace log
}  // namespace fcae
