#ifndef FCAE_LSM_TABLE_CACHE_H_
#define FCAE_LSM_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "table/table.h"
#include "util/cache.h"
#include "util/env.h"
#include "util/options.h"

namespace fcae {

/// Caches open SSTable readers (file handle + index block) keyed by file
/// number. Thread-safe: all state lives behind the internal Cache,
/// which carries its own annotated mutex (util/cache.cc), so callers —
/// reader threads, the compaction thread, and the offload executor's
/// post-assembly readability check — need no external lock and
/// TableCache itself needs no capability annotations.
class TableCache {
 public:
  TableCache(const std::string& dbname, const Options& options, int entries);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  ~TableCache() = default;

  /// Returns an iterator for the specified file number (which must have
  /// the given file_size). If tableptr is non-null, sets *tableptr to
  /// the underlying Table (owned by the cache; valid while the iterator
  /// lives).
  Iterator* NewIterator(const ReadOptions& options, uint64_t file_number,
                        uint64_t file_size, Table** tableptr = nullptr);

  /// If a seek to internal key `k` in the specified file finds an entry,
  /// calls (*handle_result)(arg, found_key, found_value).
  Status Get(const ReadOptions& options, uint64_t file_number,
             uint64_t file_size, const Slice& k, void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&));

  /// Evicts any entry for the specified file number.
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size,
                   Cache::Handle** handle);

  Env* const env_;
  const std::string dbname_;
  const Options& options_;
  std::unique_ptr<Cache> cache_;
};

}  // namespace fcae

#endif  // FCAE_LSM_TABLE_CACHE_H_
