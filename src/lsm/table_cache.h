#ifndef FCAE_LSM_TABLE_CACHE_H_
#define FCAE_LSM_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "table/table.h"
#include "util/cache.h"
#include "util/env.h"
#include "util/options.h"

namespace fcae {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Caches open SSTable readers (file handle + index block) keyed by file
/// number. Thread-safe: all state lives behind the internal Cache,
/// which carries its own annotated mutex (util/cache.cc), so callers —
/// reader threads, the compaction thread, and the offload executor's
/// post-assembly readability check — need no external lock and
/// TableCache itself needs no capability annotations.
class TableCache {
 public:
  TableCache(const std::string& dbname, const Options& options, int entries);

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  ~TableCache() = default;

  /// Returns an iterator for the specified file number (which must have
  /// the given file_size). If tableptr is non-null, sets *tableptr to
  /// the underlying Table (owned by the cache; valid while the iterator
  /// lives).
  Iterator* NewIterator(const ReadOptions& options, uint64_t file_number,
                        uint64_t file_size, Table** tableptr = nullptr);

  /// If a seek to internal key `k` in the specified file finds an entry,
  /// calls (*handle_result)(arg, found_key, found_value).
  Status Get(const ReadOptions& options, uint64_t file_number,
             uint64_t file_size, const Slice& k, void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&));

  /// Evicts any entry for the specified file number.
  void Evict(uint64_t file_number);

  /// Publishes the open-file budget into `registry` (borrowed; must
  /// outlive the cache): `db.table_cache.capacity` / `.open_tables`
  /// gauges and `.hits` / `.misses` counters. The capacity — derived
  /// from Options::max_open_files — is the DB's descriptor budget:
  /// the LRU evicts (closing the file) before ever exceeding it.
  void SetMetricsRegistry(obs::MetricsRegistry* registry);

  /// Open SSTable readers held right now (each pins one descriptor).
  size_t OpenTableCount() const { return cache_->TotalCharge(); }

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size,
                   Cache::Handle** handle);

  Env* const env_;
  const std::string dbname_;
  const Options& options_;
  const int capacity_;
  std::unique_ptr<Cache> cache_;
  obs::MetricsRegistry* metrics_ = nullptr;  // Borrowed; may be null.
};

}  // namespace fcae

#endif  // FCAE_LSM_TABLE_CACHE_H_
