#ifndef FCAE_LSM_WRITE_BATCH_H_
#define FCAE_LSM_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace fcae {

class MemTable;

/// WriteBatch holds a collection of updates to apply atomically to a DB:
///
///    batch.Put("key", "v1");
///    batch.Delete("key");
///    batch.Put("key", "v2");
///
/// Multiple threads can invoke const methods on a WriteBatch without
/// external synchronization, but if any of the threads may call a
/// non-const method, all threads accessing the same WriteBatch must use
/// external synchronization.
///
/// Inside the DB, batches submitted by concurrent writers are queued in
/// DBImpl::writers_ (guarded by DBImpl::mutex_); the writer at the
/// front of the queue merges them into DBImpl::tmp_batch_ and is the
/// only thread touching the merged batch until the group commit
/// completes, so the batch contents themselves need no lock.
class WriteBatch {
 public:
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };

  WriteBatch();

  WriteBatch(const WriteBatch&) = default;
  WriteBatch& operator=(const WriteBatch&) = default;

  ~WriteBatch() = default;

  /// Stores the mapping key->value in the database.
  void Put(const Slice& key, const Slice& value);

  /// If the database contains a mapping for key, erase it.
  void Delete(const Slice& key);

  /// Clears all buffered updates.
  void Clear();

  /// The size of the database changes caused by this batch, in bytes
  /// (used for write-rate accounting).
  size_t ApproximateSize() const;

  /// Copies the operations in `source` to this batch.
  void Append(const WriteBatch& source);

  /// Replays the batch's operations in order into `handler`.
  Status Iterate(Handler* handler) const;

 private:
  friend class WriteBatchInternal;

  std::string rep_;  // See comment in write_batch.cc for the format.
};

/// Internal-only accessors used by the DB implementation and tests.
class WriteBatchInternal {
 public:
  /// Number of entries in the batch.
  static int Count(const WriteBatch* batch);
  static void SetCount(WriteBatch* batch, int n);

  /// Sequence number for the start of this batch.
  static uint64_t Sequence(const WriteBatch* batch);
  static void SetSequence(WriteBatch* batch, uint64_t seq);

  static Slice Contents(const WriteBatch* batch) { return batch->rep_; }
  static size_t ByteSize(const WriteBatch* batch) {
    return batch->rep_.size();
  }
  static void SetContents(WriteBatch* batch, const Slice& contents);

  /// Applies all operations to the memtable with sequential sequence
  /// numbers starting at Sequence(batch).
  static Status InsertInto(const WriteBatch* batch, MemTable* memtable);

  static void Append(WriteBatch* dst, const WriteBatch* src);
};

}  // namespace fcae

#endif  // FCAE_LSM_WRITE_BATCH_H_
