#ifndef FCAE_LSM_COMPACTION_EXECUTOR_H_
#define FCAE_LSM_COMPACTION_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/version_set.h"
#include "util/options.h"
#include "util/status.h"

namespace fcae {

class Iterator;
class TableCache;

namespace obs {
class EventNotifier;
class MetricsRegistry;
class TraceRecorder;
}  // namespace obs

/// Everything an executor needs to run one major (table-merging)
/// compaction. Assembled by the DB under its mutex; executed without it.
struct CompactionJob {
  /// Database options (comparator, env, block size, compression, ...).
  const Options* options = nullptr;

  /// Database directory; output tables are created here.
  std::string dbname;

  /// For opening/validating tables.
  TableCache* table_cache = nullptr;

  const InternalKeyComparator* icmp = nullptr;

  /// The picked compaction: inputs at level and level+1.
  Compaction* compaction = nullptr;

  /// Sequence numbers <= smallest_snapshot that are shadowed by a newer
  /// record for the same user key can be dropped.
  SequenceNumber smallest_snapshot = 0;

  /// True iff no level deeper than level+1 contains data overlapping the
  /// compaction key range, so deletion markers can be dropped. Computed
  /// by the scheduler; used identically by CPU and FPGA executors so
  /// their outputs agree (the per-key LevelDB rule is strictly stronger
  /// but cannot be evaluated inside the device).
  bool no_deeper_data = false;

  /// Sub-compaction shard bounds: when set, the job owns only the
  /// user-key range (lower_bound, upper_bound] of the compaction. The
  /// CPU executor sees them baked into make_input_iterator; the FPGA
  /// executor trims its staged blocks and filters residual records on
  /// the device (fpga::KeyBounds), so both produce the same shard.
  bool has_lower_bound = false;
  bool has_upper_bound = false;
  std::string lower_bound;
  std::string upper_bound;

  /// Thread-safe file number allocator provided by the DB.
  std::function<uint64_t()> new_file_number;

  /// Creates a fresh merged iterator over all compaction inputs
  /// (N-way merge across level and level+1 runs).
  std::function<Iterator*()> make_input_iterator;

  /// Observability (obs/): both optional. When set, executors emit
  /// stage spans (dma_in, decode, merge, encode, verify) to `trace`
  /// and per-module device counters to `metrics`. `trace_tid` is the
  /// logical track for this compaction's spans so concurrent
  /// compactions don't interleave on one chrome://tracing row.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  uint64_t trace_tid = 0;

  /// Optional event fan-out (obs/event_listener.h). Executors fire
  /// OnOffloadRetry as device attempts fail; the DB fires the rest.
  /// Callbacks run on the executing thread with no DB lock held.
  const obs::EventNotifier* notifier = nullptr;
};

/// Metadata of one output SSTable produced by a compaction.
struct CompactionOutput {
  uint64_t number = 0;
  uint64_t file_size = 0;
  InternalKey smallest;
  InternalKey largest;
  // Whole-file crc32c captured while the output was written (CPU
  // executor) or assembled (offload stager); recorded in the manifest
  // at install so the scrubber has ground truth from day one.
  uint32_t file_checksum = 0;
  bool has_file_checksum = false;
};

/// Statistics reported by an executor for one compaction.
struct CompactionExecStats {
  double micros = 0;           // Wall-clock kernel time.
  int64_t bytes_read = 0;      // Input bytes.
  int64_t bytes_written = 0;   // Output bytes.
  uint64_t entries_in = 0;     // Input key-value pairs.
  uint64_t entries_dropped = 0;

  // Device-path extras (zero for CPU execution).
  bool offloaded = false;
  uint64_t device_cycles = 0;    // FPGA kernel cycles.
  double device_micros = 0;      // device_cycles / clock rate.
  double pcie_micros = 0;        // Modeled DMA transfer time.

  // Robustness extras (zero for CPU execution and for a fault-free
  // device): see host::FcaeCompactionExecutor's retry/verify pipeline.
  uint64_t device_attempts = 0;   // Kernel attempts (>= 1 per device job).
  uint64_t device_retries = 0;    // Attempts beyond the first.
  uint64_t device_faults = 0;     // Faults observed across attempts.
  uint64_t verify_failures = 0;   // Device outputs rejected by the host.
  double verify_micros = 0;       // Time spent verifying device outputs.

  void Add(const CompactionExecStats& other) {
    micros += other.micros;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    entries_in += other.entries_in;
    entries_dropped += other.entries_dropped;
    device_cycles += other.device_cycles;
    device_micros += other.device_micros;
    pcie_micros += other.pcie_micros;
    device_attempts += other.device_attempts;
    device_retries += other.device_retries;
    device_faults += other.device_faults;
    verify_failures += other.verify_failures;
    verify_micros += other.verify_micros;
  }
};

/// A CompactionExecutor performs the data-merging part of a compaction
/// (paper Fig. 6: "execution" as opposed to "scheduling"). The DB picks
/// inputs and installs results; the executor only reads input tables and
/// produces output tables. Implementations: CPU (baseline) and the
/// FPGA engine offload path.
class CompactionExecutor {
 public:
  CompactionExecutor() = default;
  virtual ~CompactionExecutor() = default;

  CompactionExecutor(const CompactionExecutor&) = delete;
  CompactionExecutor& operator=(const CompactionExecutor&) = delete;

  virtual const char* Name() const = 0;

  /// Returns true if this executor can run the given job (the FPGA
  /// engine is limited to N inputs; see paper Section VI-A).
  virtual bool CanExecute(const CompactionJob& job) const = 0;

  /// Runs the merge, appending produced file metadata to *outputs.
  virtual Status Execute(const CompactionJob& job,
                         std::vector<CompactionOutput>* outputs,
                         CompactionExecStats* stats) = 0;

  /// One-line health/robustness counter dump for
  /// DB::GetProperty("fcae.device-health"). Executors without device
  /// state report nothing.
  virtual std::string HealthString() const { return std::string(); }
};

/// Returns a new single-threaded software merge executor (the paper's
/// CPU baseline, and the fallback when the device cannot take a job).
CompactionExecutor* NewCpuCompactionExecutor();

}  // namespace fcae

#endif  // FCAE_LSM_COMPACTION_EXECUTOR_H_
