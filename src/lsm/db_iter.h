#ifndef FCAE_LSM_DB_ITER_H_
#define FCAE_LSM_DB_ITER_H_

#include <cstdint>

#include "lsm/dbformat.h"

namespace fcae {

class DBImpl;
class Iterator;

/// Returns a new iterator that converts internal keys (yielded by
/// `internal_iter`, which it takes ownership of) into the appropriate
/// user keys at the snapshot defined by `sequence`: newest visible
/// version per key, deletions hidden.
Iterator* NewDBIterator(DBImpl* db, const Comparator* user_key_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        uint32_t seed);

}  // namespace fcae

#endif  // FCAE_LSM_DB_ITER_H_
