#include "lsm/version_edit.h"

#include <sstream>

#include "util/coding.h"

namespace fcae {

namespace {

// Tag numbers for serialized VersionEdit. These numbers are written to
// disk and should not be changed.
enum Tag : uint32_t {
  kComparator = 1,
  kLogNumber = 2,
  kNextFileNumber = 3,
  kLastSequence = 4,
  kCompactPointer = 5,
  kDeletedFile = 6,
  kNewFile = 7,
  // Tags >= kFileChecksum carry a single length-prefixed payload and are
  // *skippable*: a decoder that does not understand one steps over the
  // payload instead of failing, so newer writers stay readable by older
  // code (the forward-compatibility convention; tags 1..7 predate it and
  // keep their bare encodings).
  kFileChecksum = 8,
};

// First tag encoded under the skippable length-prefixed convention.
constexpr uint32_t kFirstSkippableTag = kFileChecksum;

bool GetInternalKey(Slice* input, InternalKey* dst) {
  Slice str;
  if (GetLengthPrefixedSlice(input, &str)) {
    return dst->DecodeFrom(str);
  }
  return false;
}

bool GetLevel(Slice* input, int* level) {
  uint32_t v;
  if (GetVarint32(input, &v) && v < static_cast<uint32_t>(kNumLevels)) {
    *level = v;
    return true;
  }
  return false;
}

}  // namespace

void VersionEdit::Clear() {
  comparator_.clear();
  log_number_ = 0;
  next_file_number_ = 0;
  last_sequence_ = 0;
  has_comparator_ = false;
  has_log_number_ = false;
  has_next_file_number_ = false;
  has_last_sequence_ = false;
  compact_pointers_.clear();
  deleted_files_.clear();
  new_files_.clear();
}

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_comparator_) {
    PutVarint32(dst, kComparator);
    PutLengthPrefixedSlice(dst, comparator_);
  }
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }

  for (const auto& cp : compact_pointers_) {
    PutVarint32(dst, kCompactPointer);
    PutVarint32(dst, cp.first);  // level
    PutLengthPrefixedSlice(dst, cp.second.Encode());
  }

  for (const auto& deleted : deleted_files_) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, deleted.first);   // level
    PutVarint64(dst, deleted.second);  // file number
  }

  for (const auto& nf : new_files_) {
    const FileMetaData& f = nf.second;
    PutVarint32(dst, kNewFile);
    PutVarint32(dst, nf.first);  // level
    PutVarint64(dst, f.number);
    PutVarint64(dst, f.file_size);
    PutLengthPrefixedSlice(dst, f.smallest.Encode());
    PutLengthPrefixedSlice(dst, f.largest.Encode());
    if (f.has_file_checksum) {
      // Emitted as a separate skippable record directly after its file
      // (rather than widening kNewFile) so pre-checksum decoders still
      // read the file entry and merely lose the checksum.
      PutVarint32(dst, kFileChecksum);
      std::string payload;
      PutVarint32(&payload, nf.first);  // level
      PutVarint64(&payload, f.number);
      PutVarint32(&payload, f.file_checksum);
      PutLengthPrefixedSlice(dst, payload);
    }
  }
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  Clear();
  Slice input = src;
  const char* msg = nullptr;
  uint32_t tag;

  // Temporary storage for parsing.
  int level;
  uint64_t number;
  FileMetaData f;
  Slice str;
  InternalKey key;

  while (msg == nullptr && GetVarint32(&input, &tag)) {
    switch (tag) {
      case kComparator:
        if (GetLengthPrefixedSlice(&input, &str)) {
          comparator_ = str.ToString();
          has_comparator_ = true;
        } else {
          msg = "comparator name";
        }
        break;

      case kLogNumber:
        if (GetVarint64(&input, &log_number_)) {
          has_log_number_ = true;
        } else {
          msg = "log number";
        }
        break;

      case kNextFileNumber:
        if (GetVarint64(&input, &next_file_number_)) {
          has_next_file_number_ = true;
        } else {
          msg = "next file number";
        }
        break;

      case kLastSequence:
        if (GetVarint64(&input, &last_sequence_)) {
          has_last_sequence_ = true;
        } else {
          msg = "last sequence number";
        }
        break;

      case kCompactPointer:
        if (GetLevel(&input, &level) && GetInternalKey(&input, &key)) {
          compact_pointers_.push_back(std::make_pair(level, key));
        } else {
          msg = "compaction pointer";
        }
        break;

      case kDeletedFile:
        if (GetLevel(&input, &level) && GetVarint64(&input, &number)) {
          deleted_files_.insert(std::make_pair(level, number));
        } else {
          msg = "deleted file";
        }
        break;

      case kNewFile:
        if (GetLevel(&input, &level) && GetVarint64(&input, &f.number) &&
            GetVarint64(&input, &f.file_size) &&
            GetInternalKey(&input, &f.smallest) &&
            GetInternalKey(&input, &f.largest)) {
          new_files_.push_back(std::make_pair(level, f));
        } else {
          msg = "new-file entry";
        }
        break;

      case kFileChecksum:
        if (GetLengthPrefixedSlice(&input, &str)) {
          uint32_t crc;
          if (GetLevel(&str, &level) && GetVarint64(&str, &number) &&
              GetVarint32(&str, &crc)) {
            // Attach to the matching file entry (the writer emits the
            // checksum record right after its kNewFile). A record with
            // no matching entry is ignored, not an error — the skippable
            // convention means unmatched records must stay harmless.
            for (auto& nf : new_files_) {
              if (nf.first == level && nf.second.number == number) {
                nf.second.file_checksum = crc;
                nf.second.has_file_checksum = true;
                break;
              }
            }
          } else {
            msg = "file checksum";
          }
        } else {
          msg = "file checksum";
        }
        break;

      default:
        if (tag >= kFirstSkippableTag && GetLengthPrefixedSlice(&input, &str)) {
          // A skippable record from a newer writer: step over it.
        } else {
          msg = "unknown tag";
        }
        break;
    }
  }

  if (msg == nullptr && !input.empty()) {
    msg = "invalid tag";
  }

  Status result;
  if (msg != nullptr) {
    result = Status::Corruption("VersionEdit", msg);
  }
  return result;
}

std::string VersionEdit::DebugString() const {
  std::ostringstream ss;
  ss << "VersionEdit {";
  if (has_comparator_) ss << "\n  Comparator: " << comparator_;
  if (has_log_number_) ss << "\n  LogNumber: " << log_number_;
  if (has_next_file_number_) ss << "\n  NextFile: " << next_file_number_;
  if (has_last_sequence_) ss << "\n  LastSeq: " << last_sequence_;
  for (const auto& cp : compact_pointers_) {
    ss << "\n  CompactPointer: " << cp.first << " "
       << cp.second.DebugString();
  }
  for (const auto& d : deleted_files_) {
    ss << "\n  RemoveFile: " << d.first << " " << d.second;
  }
  for (const auto& nf : new_files_) {
    ss << "\n  AddFile: " << nf.first << " " << nf.second.number << " "
       << nf.second.file_size << " " << nf.second.smallest.DebugString()
       << " .. " << nf.second.largest.DebugString();
    if (nf.second.has_file_checksum) {
      ss << " crc32c=" << nf.second.file_checksum;
    }
  }
  ss << "\n}\n";
  return ss.str();
}

}  // namespace fcae
