#include "lsm/builder.h"

#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "lsm/table_cache.h"
#include "lsm/version_edit.h"
#include "table/table_builder.h"
#include "util/crash_env.h"
#include "util/env.h"
#include "util/file_checksum.h"
#include "util/rate_limiter.h"

namespace fcae {

Status BuildTable(const std::string& dbname, Env* env, const Options& options,
                  TableCache* table_cache, Iterator* iter,
                  FileMetaData* meta) {
  Status s;
  meta->file_size = 0;
  iter->SeekToFirst();

  std::string fname = TableFileName(dbname, meta->number);
  if (iter->Valid()) {
    WritableFile* file;
    s = env->NewWritableFile(fname, &file);
    if (!s.ok()) {
      return s;
    }
    if (options.rate_limiter != nullptr) {
      // Flushes charge the high-priority lane: they gate MakeRoomForWrite,
      // so a capped background budget must never queue them behind
      // compaction output (which requests at low priority).
      file = new RateLimitedWritableFile(file, options.rate_limiter,
                                         RateLimiter::Priority::kHigh);
    }
    // Outermost wrapper: hashes exactly the bytes the builder emits, so
    // the manifest's whole-file checksum is captured at install time.
    ChecksumWritableFile* checksum_file = new ChecksumWritableFile(file);
    file = checksum_file;

    TableBuilder* builder = new TableBuilder(options, file);
    meta->smallest.DecodeFrom(iter->key());
    Slice key;
    for (; iter->Valid(); iter->Next()) {
      key = iter->key();
      builder->Add(key, iter->value());
    }
    if (!key.empty()) {
      meta->largest.DecodeFrom(key);
    }

    // Finish and check for builder errors.
    s = builder->Finish();
    if (s.ok()) {
      meta->file_size = builder->FileSize();
      assert(meta->file_size > 0);
      meta->file_checksum = checksum_file->checksum();
      meta->has_file_checksum = true;
    }
    delete builder;

    // Finish and check for file errors.
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
    delete file;
    file = nullptr;

    if (s.ok()) {
      // The table's bytes are durable; make its directory entry durable
      // too, so the file referenced by the upcoming version edit cannot
      // vanish in a crash that the manifest survives.
      s = env->SyncDir(dbname);
    }
    FCAE_CRASH_POINT("flush:after_build");

    if (s.ok()) {
      // Verify that the table is usable.
      ReadOptions verify_options;
      verify_options.verify_checksums = options.paranoid_checks;
      verify_options.fill_cache = false;
      Iterator* it = table_cache->NewIterator(verify_options, meta->number,
                                              meta->file_size);
      s = it->status();
      delete it;
    }
  }

  // Check for input iterator errors.
  if (!iter->status().ok()) {
    s = iter->status();
  }

  if (s.ok() && meta->file_size > 0) {
    // Keep it.
  } else {
    // Best-effort cleanup of the partial table; an orphan left behind is
    // reclaimed by open-time orphan reclamation.
    env->RemoveFile(fname).IgnoreError();
  }
  return s;
}

}  // namespace fcae
