#ifndef FCAE_LSM_LOG_FORMAT_H_
#define FCAE_LSM_LOG_FORMAT_H_

// Log format information shared by reader and writer.
//
// The WAL is a sequence of 32 KB blocks. Each block holds records of:
//   checksum: uint32  (masked crc32c of type and data[])
//   length:   uint16
//   type:     uint8   (full / first / middle / last)
//   data:     uint8[length]
// Records never span block boundaries; large payloads are fragmented
// into first/middle/last pieces.

namespace fcae {
namespace log {

enum RecordType {
  // Zero is reserved for preallocated files.
  kZeroType = 0,

  kFullType = 1,

  // For fragments.
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4
};
constexpr int kMaxRecordType = kLastType;

constexpr int kBlockSize = 32768;

// Header is checksum (4 bytes), length (2 bytes), type (1 byte).
constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace fcae

#endif  // FCAE_LSM_LOG_FORMAT_H_
