#include "lsm/version_set.h"

#include <algorithm>
#include <cstdio>

#include "lsm/filename.h"
#include "lsm/log_reader.h"
#include "lsm/log_writer.h"
#include "lsm/memtable.h"
#include "lsm/table_cache.h"
#include "obs/perf_context.h"
#include "table/iterator.h"
#include "table/merger.h"
#include "table/two_level_iterator.h"
#include "util/coding.h"
#include "util/crash_env.h"
#include "util/env.h"

namespace fcae {

namespace {

int64_t TotalFileSize(const std::vector<FileMetaData*>& files) {
  int64_t sum = 0;
  for (size_t i = 0; i < files.size(); i++) {
    sum += files[i]->file_size;
  }
  return sum;
}

/// Maximum bytes of overlaps in grandparent (i.e., level+2) before we
/// stop building a single file in a level->level+1 compaction.
int64_t MaxGrandParentOverlapBytes(const Options* options) {
  return 10 * static_cast<int64_t>(options->max_file_size);
}

/// Maximum number of bytes in all compacted files. We avoid expanding
/// the lower level file set of a compaction if it would make the total
/// compaction cover more than this many bytes.
int64_t ExpandedCompactionByteSizeLimit(const Options* options) {
  return 25 * static_cast<int64_t>(options->max_file_size);
}

}  // namespace

double VersionSet::MaxBytesForLevel(int level) const {
  // Level 0 is limited by file count, not bytes. Level 1 gets a fixed
  // 10 MB budget; deeper levels grow by the configured leveling ratio
  // (paper Table IV: ratio 10 by default, swept 4..16 in Fig. 15d).
  assert(level >= 1);
  double result = 10. * 1048576.0;
  for (int l = 1; l < level; l++) {
    result *= options_->leveling_ratio;
  }
  return result;
}

uint64_t VersionSet::MaxFileSizeForLevel(int level) const {
  return options_->max_file_size;
}

Version::~Version() {
  assert(refs_ == 0);

  // Remove from linked list.
  prev_->next_ = next_;
  next_->prev_ = prev_;

  // Drop references to files.
  for (int level = 0; level < kNumLevels; level++) {
    for (size_t i = 0; i < files_[level].size(); i++) {
      FileMetaData* f = files_[level][i];
      assert(f->refs > 0);
      f->refs--;
      if (f->refs <= 0) {
        delete f;
      }
    }
  }
}

int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    uint32_t mid = (left + right) / 2;
    const FileMetaData* f = files[mid];
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      // Key at "mid.largest" is < "target".  Therefore all
      // files at or before "mid" are uninteresting.
      left = mid + 1;
    } else {
      // Key at "mid.largest" is >= "target".  Therefore all files
      // after "mid" are uninteresting.
      right = mid;
    }
  }
  return right;
}

static bool AfterFile(const Comparator* ucmp, const Slice* user_key,
                      const FileMetaData* f) {
  // null user_key occurs before all keys and is therefore never after *f.
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

static bool BeforeFile(const Comparator* ucmp, const Slice* user_key,
                       const FileMetaData* f) {
  // null user_key occurs after all keys and is therefore never before *f.
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Need to check against all files.
    for (size_t i = 0; i < files.size(); i++) {
      const FileMetaData* f = files[i];
      if (AfterFile(ucmp, smallest_user_key, f) ||
          BeforeFile(ucmp, largest_user_key, f)) {
        // No overlap.
      } else {
        return true;  // Overlap.
      }
    }
    return false;
  }

  // Binary search over file list.
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    // Find the earliest possible internal key for smallest_user_key.
    InternalKey small_key(*smallest_user_key, kMaxSequenceNumber,
                          kValueTypeForSeek);
    index = FindFile(icmp, files, small_key.Encode());
  }

  if (index >= files.size()) {
    // Beginning of range is after all files, so no overlap.
    return false;
  }

  return !BeforeFile(ucmp, largest_user_key, files[index]);
}

/// An internal iterator. For a given version/level pair, yields
/// information about the files in the level. For a given entry, key()
/// is the largest key that occurs in the file, and value() is an
/// 16-byte value containing the file number and file size.
class Version::LevelFileNumIterator : public Iterator {
 public:
  LevelFileNumIterator(const InternalKeyComparator& icmp,
                       const std::vector<FileMetaData*>* flist)
      : icmp_(icmp), flist_(flist), index_(flist->size()) {  // Invalid.
  }
  bool Valid() const override { return index_ < flist_->size(); }
  void Seek(const Slice& target) override {
    index_ = FindFile(icmp_, *flist_, target);
  }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = flist_->empty() ? 0 : flist_->size() - 1;
  }
  void Next() override {
    assert(Valid());
    index_++;
  }
  void Prev() override {
    assert(Valid());
    if (index_ == 0) {
      index_ = flist_->size();  // Marks as invalid.
    } else {
      index_--;
    }
  }
  Slice key() const override {
    assert(Valid());
    return (*flist_)[index_]->largest.Encode();
  }
  Slice value() const override {
    assert(Valid());
    EncodeFixed64(value_buf_, (*flist_)[index_]->number);
    EncodeFixed64(value_buf_ + 8, (*flist_)[index_]->file_size);
    return Slice(value_buf_, sizeof(value_buf_));
  }
  Status status() const override { return Status::OK(); }

 private:
  const InternalKeyComparator icmp_;
  const std::vector<FileMetaData*>* const flist_;
  uint32_t index_;

  // Backing store for value(). Holds the file number and size.
  mutable char value_buf_[16];
};

static Iterator* GetFileIterator(void* arg, const ReadOptions& options,
                                 const Slice& file_value) {
  TableCache* cache = reinterpret_cast<TableCache*>(arg);
  if (file_value.size() != 16) {
    return NewErrorIterator(
        Status::Corruption("FileReader invoked with unexpected value"));
  }
  return cache->NewIterator(options, DecodeFixed64(file_value.data()),
                            DecodeFixed64(file_value.data() + 8));
}

// User-read flavor of GetFileIterator: routes around quarantined files
// by presenting them as empty (containment, DESIGN.md §14 — overlapping
// levels keep serving; the repair job restores the rest). Compaction
// inputs go through GetFileIterator instead: they must never silently
// drop data, so the picker refuses quarantined inputs outright.
static Iterator* GetRoutedFileIterator(void* arg, const ReadOptions& options,
                                       const Slice& file_value) {
  VersionSet* vset = reinterpret_cast<VersionSet*>(arg);
  if (file_value.size() != 16) {
    return NewErrorIterator(
        Status::Corruption("FileReader invoked with unexpected value"));
  }
  const uint64_t number = DecodeFixed64(file_value.data());
  if (vset->quarantine()->Contains(number)) {
    return NewEmptyIterator();
  }
  return vset->table_cache()->NewIterator(options, number,
                                          DecodeFixed64(file_value.data() + 8));
}

Iterator* Version::NewConcatenatingIterator(const ReadOptions& options,
                                            int level) const {
  return NewTwoLevelIterator(
      new LevelFileNumIterator(vset_->icmp_, &files_[level]),
      &GetRoutedFileIterator, vset_, options);
}

void Version::AddIterators(const ReadOptions& options,
                           std::vector<Iterator*>* iters) {
  // Merge all level zero files together since they may overlap.
  for (size_t i = 0; i < files_[0].size(); i++) {
    if (vset_->quarantine_.Contains(files_[0][i]->number)) {
      continue;  // Routed around until the repair job lands.
    }
    iters->push_back(vset_->table_cache_->NewIterator(
        options, files_[0][i]->number, files_[0][i]->file_size));
  }

  // For levels > 0, we can use a concatenating iterator that
  // sequentially walks through the non-overlapping files in the level,
  // opening them lazily.
  for (int level = 1; level < kNumLevels; level++) {
    if (!files_[level].empty()) {
      iters->push_back(NewConcatenatingIterator(options, level));
    }
  }
}

namespace {

enum SaverState {
  kNotFound,
  kFound,
  kDeleted,
  kCorrupt,
};
struct Saver {
  SaverState state;
  const Comparator* ucmp;
  Slice user_key;
  std::string* value;
};

void SaveValue(void* arg, const Slice& ikey, const Slice& v) {
  Saver* s = reinterpret_cast<Saver*>(arg);
  ParsedInternalKey parsed_key;
  if (!ParseInternalKey(ikey, &parsed_key)) {
    s->state = kCorrupt;
  } else {
    if (s->ucmp->Compare(parsed_key.user_key, s->user_key) == 0) {
      s->state = (parsed_key.type == kTypeValue) ? kFound : kDeleted;
      if (s->state == kFound) {
        s->value->assign(v.data(), v.size());
      }
    }
  }
}

bool NewestFirst(FileMetaData* a, FileMetaData* b) {
  return a->number > b->number;
}

}  // namespace

void Version::ForEachOverlapping(Slice user_key, Slice internal_key,
                                 void* arg,
                                 bool (*func)(void*, int, FileMetaData*)) {
  const Comparator* ucmp = vset_->icmp_.user_comparator();

  // Search level-0 in order from newest to oldest.
  std::vector<FileMetaData*> tmp;
  tmp.reserve(files_[0].size());
  for (uint32_t i = 0; i < files_[0].size(); i++) {
    FileMetaData* f = files_[0][i];
    if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
        ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
      tmp.push_back(f);
    }
  }
  if (!tmp.empty()) {
    std::sort(tmp.begin(), tmp.end(), NewestFirst);
    for (uint32_t i = 0; i < tmp.size(); i++) {
      if (!(*func)(arg, 0, tmp[i])) {
        return;
      }
    }
  }

  // Search other levels.
  for (int level = 1; level < kNumLevels; level++) {
    size_t num_files = files_[level].size();
    if (num_files == 0) continue;

    // Binary search to find earliest index whose largest key >=
    // internal_key.
    uint32_t index = FindFile(vset_->icmp_, files_[level], internal_key);
    if (index < num_files) {
      FileMetaData* f = files_[level][index];
      if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) {
        // All of "f" is past any data for user_key.
      } else {
        if (!(*func)(arg, level, f)) {
          return;
        }
      }
    }
  }
}

Status Version::Get(const ReadOptions& options, const LookupKey& k,
                    std::string* value, GetStats* stats) {
  stats->seek_file = nullptr;
  stats->seek_file_level = -1;

  struct State {
    Saver saver;
    GetStats* stats;
    const ReadOptions* options;
    Slice ikey;
    FileMetaData* last_file_read;
    int last_file_read_level;

    VersionSet* vset;
    Status s;
    bool found;
    bool deletion_found;
    bool saw_quarantined;

    static bool Match(void* arg, int level, FileMetaData* f) {
      State* state = reinterpret_cast<State*>(arg);
      FCAE_PERF_COUNT(sst_probes, 1);

      if (state->vset->quarantine()->Contains(f->number)) {
        // Route around the corrupt file: an older level may still hold
        // a (possibly stale) clean value. Remember that we skipped it —
        // if nothing clean serves this key, the honest answer is
        // Corruption, not NotFound.
        state->saw_quarantined = true;
        return true;
      }

      if (state->stats->seek_file == nullptr &&
          state->last_file_read != nullptr) {
        // We have had more than one seek for this read; charge the 1st.
        state->stats->seek_file = state->last_file_read;
        state->stats->seek_file_level = state->last_file_read_level;
      }

      state->last_file_read = f;
      state->last_file_read_level = level;

      state->s = state->vset->table_cache()->Get(*state->options, f->number,
                                                 f->file_size, state->ikey,
                                                 &state->saver, SaveValue);
      if (!state->s.ok()) {
        state->found = true;
        return false;
      }
      switch (state->saver.state) {
        case kNotFound:
          return true;  // Keep searching in other files.
        case kFound:
          state->found = true;
          return false;
        case kDeleted:
          state->deletion_found = true;
          return false;
        case kCorrupt:
          state->s =
              Status::Corruption("corrupted key for ", state->saver.user_key);
          state->found = true;
          return false;
      }

      // Not reached. Added to avoid false compilation warnings of
      // "control reaches end of non-void function".
      return false;
    }
  };

  State state;
  state.found = false;
  state.deletion_found = false;
  state.saw_quarantined = false;
  state.stats = stats;
  state.last_file_read = nullptr;
  state.last_file_read_level = -1;

  state.options = &options;
  state.ikey = k.internal_key();
  state.vset = vset_;

  state.saver.state = kNotFound;
  state.saver.ucmp = vset_->icmp_.user_comparator();
  state.saver.user_key = k.user_key();
  state.saver.value = value;

  ForEachOverlapping(state.saver.user_key, state.ikey, &state, &State::Match);

  if (state.found) {
    return state.s;
  }
  if (state.saw_quarantined && !state.deletion_found) {
    // No clean source could serve the key and a quarantined file
    // overlapped it: the key may exist in the corrupt file, so the
    // honest answer is Corruption (a deletion marker found in a clean
    // file still wins — it is a definitive clean answer).
    return Status::Corruption("key overlaps quarantined file",
                              state.saver.user_key);
  }
  return Status::NotFound(Slice());
}

bool Version::UpdateStats(const GetStats& stats) {
  FileMetaData* f = stats.seek_file;
  if (f != nullptr) {
    f->allowed_seeks--;
    if (f->allowed_seeks <= 0 && file_to_compact_ == nullptr) {
      file_to_compact_ = f;
      file_to_compact_level_ = stats.seek_file_level;
      return true;
    }
  }
  return false;
}

bool Version::RecordReadSample(Slice internal_key) {
  ParsedInternalKey ikey;
  if (!ParseInternalKey(internal_key, &ikey)) {
    return false;
  }

  struct State {
    GetStats stats;  // Holds first matching file.
    int matches;

    static bool Match(void* arg, int level, FileMetaData* f) {
      State* state = reinterpret_cast<State*>(arg);
      state->matches++;
      if (state->matches == 1) {
        // Remember first match.
        state->stats.seek_file = f;
        state->stats.seek_file_level = level;
      }
      // We can stop iterating once we have a second match.
      return state->matches < 2;
    }
  };

  State state;
  state.matches = 0;
  ForEachOverlapping(ikey.user_key, internal_key, &state, &State::Match);

  // Must have at least two matches since we want to merge across files.
  // But what if we have a single file that contains many overwrites and
  // deletions? Keep it simple: only sample the multi-file case.
  if (state.matches >= 2) {
    return UpdateStats(state.stats);
  }
  return false;
}

void Version::Ref() { ++refs_; }

void Version::Unref() {
  assert(this != &vset_->dummy_versions_);
  assert(refs_ >= 1);
  --refs_;
  if (refs_ == 0) {
    delete this;
  }
}

bool Version::OverlapInLevel(int level, const Slice* smallest_user_key,
                             const Slice* largest_user_key) {
  return SomeFileOverlapsRange(vset_->icmp_, (level > 0), files_[level],
                               smallest_user_key, largest_user_key);
}

int Version::PickLevelForMemTableOutput(const Slice& smallest_user_key,
                                        const Slice& largest_user_key) {
  int level = 0;
  if (!OverlapInLevel(0, &smallest_user_key, &largest_user_key)) {
    // Push to next level if there is no overlap in next level,
    // and the #bytes overlapping in the level after that are limited.
    InternalKey start(smallest_user_key, kMaxSequenceNumber,
                      kValueTypeForSeek);
    InternalKey limit(largest_user_key, 0, static_cast<ValueType>(0));
    std::vector<FileMetaData*> overlaps;
    while (level < kMaxMemCompactLevel) {
      if (OverlapInLevel(level + 1, &smallest_user_key, &largest_user_key)) {
        break;
      }
      if (level + 2 < kNumLevels) {
        // Check that file does not overlap too many grandparent bytes.
        GetOverlappingInputs(level + 2, &start, &limit, &overlaps);
        const int64_t sum = TotalFileSize(overlaps);
        if (sum > MaxGrandParentOverlapBytes(vset_->options_)) {
          break;
        }
      }
      level++;
    }
  }
  return level;
}

void Version::GetOverlappingInputs(int level, const InternalKey* begin,
                                   const InternalKey* end,
                                   std::vector<FileMetaData*>* inputs) {
  assert(level >= 0);
  assert(level < kNumLevels);
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) {
    user_begin = begin->user_key();
  }
  if (end != nullptr) {
    user_end = end->user_key();
  }
  const Comparator* user_cmp = vset_->icmp_.user_comparator();
  for (size_t i = 0; i < files_[level].size();) {
    FileMetaData* f = files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // "f" is completely before specified range; skip it.
    } else if (end != nullptr &&
               user_cmp->Compare(file_start, user_end) > 0) {
      // "f" is completely after specified range; skip it.
    } else {
      inputs->push_back(f);
      if (level == 0) {
        // Level-0 files may overlap each other.  So check if the newly
        // added file has expanded the range.  If so, restart search.
        if (begin != nullptr &&
            user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr &&
                   user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

std::string Version::DebugString() const {
  std::string r;
  for (int level = 0; level < kNumLevels; level++) {
    // E.g.,
    //   --- level 1 ---
    //   17:123['a' .. 'd']
    //   20:43['e' .. 'g']
    r.append("--- level ");
    r.append(std::to_string(level));
    r.append(" ---\n");
    const std::vector<FileMetaData*>& files = files_[level];
    for (size_t i = 0; i < files.size(); i++) {
      r.push_back(' ');
      r.append(std::to_string(files[i]->number));
      r.push_back(':');
      r.append(std::to_string(files[i]->file_size));
      r.append("[");
      r.append(files[i]->smallest.DebugString());
      r.append(" .. ");
      r.append(files[i]->largest.DebugString());
      r.append("]\n");
    }
  }
  return r;
}

/// A helper class so we can efficiently apply a whole sequence of edits
/// to a particular state without creating intermediate Versions that
/// contain full copies of the intermediate state.
class VersionSet::Builder {
 public:
  /// Initializes a builder with the files from *base and other info
  /// from *vset.
  Builder(VersionSet* vset, Version* base) : vset_(vset), base_(base) {
    base_->Ref();
    BySmallestKey cmp;
    cmp.internal_comparator = &vset_->icmp_;
    for (int level = 0; level < kNumLevels; level++) {
      levels_[level].added_files = new FileSet(cmp);
    }
  }

  ~Builder() {
    for (int level = 0; level < kNumLevels; level++) {
      const FileSet* added = levels_[level].added_files;
      std::vector<FileMetaData*> to_unref;
      to_unref.reserve(added->size());
      for (FileSet::const_iterator it = added->begin(); it != added->end();
           ++it) {
        to_unref.push_back(*it);
      }
      delete added;
      for (uint32_t i = 0; i < to_unref.size(); i++) {
        FileMetaData* f = to_unref[i];
        f->refs--;
        if (f->refs <= 0) {
          delete f;
        }
      }
    }
    base_->Unref();
  }

  /// Applies all of the edits in *edit to the current state.
  void Apply(const VersionEdit* edit) {
    // Update compaction pointers.
    for (size_t i = 0; i < edit->compact_pointers_.size(); i++) {
      const int level = edit->compact_pointers_[i].first;
      vset_->compact_pointer_[level] =
          edit->compact_pointers_[i].second.Encode().ToString();
    }

    // Remove deleted files.
    for (const auto& deleted_file_set_kvp : edit->deleted_files_) {
      const int level = deleted_file_set_kvp.first;
      const uint64_t number = deleted_file_set_kvp.second;
      levels_[level].deleted_files.insert(number);
    }

    // Add new files.
    for (size_t i = 0; i < edit->new_files_.size(); i++) {
      const int level = edit->new_files_[i].first;
      FileMetaData* f = new FileMetaData(edit->new_files_[i].second);
      f->refs = 1;

      // We arrange to automatically compact this file after a certain
      // number of seeks: one seek costs approximately the same as the
      // compaction of 40 KB of data, and we charge 1/4th of that.
      f->allowed_seeks = static_cast<int>((f->file_size / 16384U));
      if (f->allowed_seeks < 100) f->allowed_seeks = 100;

      levels_[level].deleted_files.erase(f->number);
      levels_[level].added_files->insert(f);
    }
  }

  /// Saves the current state in *v.
  void SaveTo(Version* v) {
    BySmallestKey cmp;
    cmp.internal_comparator = &vset_->icmp_;
    for (int level = 0; level < kNumLevels; level++) {
      // Merge the set of added files with the set of pre-existing
      // files, dropping any deleted files.
      const std::vector<FileMetaData*>& base_files = base_->files_[level];
      std::vector<FileMetaData*>::const_iterator base_iter =
          base_files.begin();
      std::vector<FileMetaData*>::const_iterator base_end = base_files.end();
      const FileSet* added_files = levels_[level].added_files;
      v->files_[level].reserve(base_files.size() + added_files->size());
      for (const auto& added_file : *added_files) {
        // Add all smaller files listed in base_.
        for (std::vector<FileMetaData*>::const_iterator bpos =
                 std::upper_bound(base_iter, base_end, added_file, cmp);
             base_iter != bpos; ++base_iter) {
          MaybeAddFile(v, level, *base_iter);
        }

        MaybeAddFile(v, level, added_file);
      }

      // Add remaining base files.
      for (; base_iter != base_end; ++base_iter) {
        MaybeAddFile(v, level, *base_iter);
      }

#ifndef NDEBUG
      // Make sure there is no overlap in levels > 0.
      if (level > 0) {
        for (uint32_t i = 1; i < v->files_[level].size(); i++) {
          const InternalKey& prev_end = v->files_[level][i - 1]->largest;
          const InternalKey& this_begin = v->files_[level][i]->smallest;
          if (vset_->icmp_.Compare(prev_end, this_begin) >= 0) {
            std::fprintf(stderr, "overlapping ranges in same level %s vs. %s\n",
                         prev_end.DebugString().c_str(),
                         this_begin.DebugString().c_str());
            std::abort();
          }
        }
      }
#endif
    }
  }

 private:
  // Helper to sort by v->files_[file_number].smallest.
  struct BySmallestKey {
    const InternalKeyComparator* internal_comparator;

    bool operator()(FileMetaData* f1, FileMetaData* f2) const {
      int r = internal_comparator->Compare(f1->smallest, f2->smallest);
      if (r != 0) {
        return (r < 0);
      } else {
        // Break ties by file number.
        return (f1->number < f2->number);
      }
    }
  };

  using FileSet = std::set<FileMetaData*, BySmallestKey>;
  struct LevelState {
    std::set<uint64_t> deleted_files;
    FileSet* added_files;
  };

  void MaybeAddFile(Version* v, int level, FileMetaData* f) {
    if (levels_[level].deleted_files.count(f->number) > 0) {
      // File is deleted: do nothing.
    } else {
      std::vector<FileMetaData*>* files = &v->files_[level];
      if (level > 0 && !files->empty()) {
        // Must not overlap.
        assert(vset_->icmp_.Compare((*files)[files->size() - 1]->largest,
                                    f->smallest) < 0);
      }
      f->refs++;
      files->push_back(f);
    }
  }

  VersionSet* vset_;
  Version* base_;
  LevelState levels_[kNumLevels];
};

VersionSet::VersionSet(const std::string& dbname, const Options* options,
                       TableCache* table_cache,
                       const InternalKeyComparator* cmp)
    : env_(options->env),
      dbname_(dbname),
      options_(options),
      table_cache_(table_cache),
      icmp_(*cmp),
      next_file_number_(2),
      manifest_file_number_(0),  // Filled by Recover()
      last_sequence_(0),
      log_number_(0),
      descriptor_file_(nullptr),
      descriptor_log_(nullptr),
      dummy_versions_(this),
      current_(nullptr) {
  AppendVersion(new Version(this));
}

VersionSet::~VersionSet() {
  current_->Unref();
  assert(dummy_versions_.next_ == &dummy_versions_);  // List must be empty
  delete descriptor_log_;
  delete descriptor_file_;
}

void VersionSet::AppendVersion(Version* v) {
  // Make "v" current.
  assert(v->refs_ == 0);
  assert(v != current_);
  if (current_ != nullptr) {
    current_->Unref();
  }
  current_ = v;
  v->Ref();

  // Append to linked list.
  v->prev_ = dummy_versions_.prev_;
  v->next_ = &dummy_versions_;
  v->prev_->next_ = v;
  v->next_->prev_ = v;
}

Status VersionSet::LogAndApply(VersionEdit* edit, Mutex* mu) {
  // Decide up front whether this edit opens a fresh manifest: the first
  // call after open, an explicit request (post-error Resume distrusts a
  // possibly-torn descriptor tail), or a size rollover. The rollover
  // number is allocated before SetNextFile so a reopened DB can never
  // hand the manifest's own number to a data file.
  const bool first_manifest = (descriptor_log_ == nullptr);
  const bool need_new_manifest =
      first_manifest || force_new_manifest_ ||
      (options_->max_manifest_file_size > 0 &&
       manifest_file_bytes_ >= options_->max_manifest_file_size);
  uint64_t new_manifest_number = 0;
  if (need_new_manifest) {
    new_manifest_number =
        first_manifest ? manifest_file_number_ : NewFileNumber();
  }

  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_);
    assert(edit->log_number_ < next_file_number_);
  } else {
    edit->SetLogNumber(log_number_);
  }

  edit->SetNextFile(next_file_number_);
  edit->SetLastSequence(last_sequence_);

  Version* v = new Version(this);
  {
    Builder builder(this, current_);
    builder.Apply(edit);
    builder.SaveTo(v);
  }
  Finalize(v);

  // Build the replacement descriptor (snapshot of the pre-edit state;
  // the edit record itself is appended below) into locals, leaving the
  // old descriptor untouched until the new one is durably installed.
  std::string new_manifest_file;
  WritableFile* new_descriptor_file = nullptr;
  log::Writer* new_descriptor_log = nullptr;
  Status s;
  if (need_new_manifest) {
    assert(!first_manifest || descriptor_file_ == nullptr);
    new_manifest_file = DescriptorFileName(dbname_, new_manifest_number);
    s = env_->NewWritableFile(new_manifest_file, &new_descriptor_file);
    if (s.ok()) {
      new_descriptor_log = new log::Writer(new_descriptor_file);
      s = WriteSnapshot(new_descriptor_log);
    }
  }

  log::Writer* const log = need_new_manifest ? new_descriptor_log
                                             : descriptor_log_;
  WritableFile* const file = need_new_manifest ? new_descriptor_file
                                               : descriptor_file_;
  uint64_t manifest_bytes = 0;

  // Unlock during expensive MANIFEST log write.
  {
    mu->Unlock();

    // Durable install protocol, step 1: commit the directory entries of
    // every file the edit references (freshly built tables, the new
    // manifest itself) before the record that publishes them.
    if (s.ok()) {
      s = env_->SyncDir(dbname_);
    }

    // Step 2: append the edit record and sync the descriptor.
    if (s.ok()) {
      std::string record;
      edit->EncodeTo(&record);
      s = log->AddRecord(record);
      FCAE_CRASH_POINT("manifest:after_append");
      if (s.ok()) {
        s = file->Sync();
      }
      if (s.ok()) {
        FCAE_CRASH_POINT("manifest:after_sync");
      }
    }

    // Step 3 (new manifest only): atomically switch CURRENT to it.
    // SetCurrentFile syncs the temp file, renames, and syncs the dir.
    if (s.ok() && need_new_manifest) {
      s = SetCurrentFile(env_, dbname_, new_manifest_number);
    }

    if (s.ok()) {
      // Best-effort size probe for the rollover trigger: on failure
      // manifest_bytes stays 0 and the rollover is merely deferred to a
      // later LogAndApply.
      env_->GetFileSize(need_new_manifest
                            ? new_manifest_file
                            : DescriptorFileName(dbname_,
                                                 manifest_file_number_),
                        &manifest_bytes)
          .IgnoreError();
    }

    mu->Lock();
  }

  // Install the new version.
  if (s.ok()) {
    AppendVersion(v);
    log_number_ = edit->log_number_;
    manifest_file_bytes_ = manifest_bytes;
    if (need_new_manifest) {
      // Step 4: retire the old descriptor only now that CURRENT durably
      // points at the new one.
      const uint64_t old_manifest_number = manifest_file_number_;
      delete descriptor_log_;
      delete descriptor_file_;
      descriptor_log_ = new_descriptor_log;
      descriptor_file_ = new_descriptor_file;
      manifest_file_number_ = new_manifest_number;
      force_new_manifest_ = false;
      if (!first_manifest) {
        // Best-effort retirement: a stale descriptor that survives is
        // orphan-reclaimed at the next open.
        env_->RemoveFile(DescriptorFileName(dbname_, old_manifest_number))
            .IgnoreError();
      }
    }
  } else {
    delete v;
    if (need_new_manifest) {
      // Keep the old descriptor: it is still the durable truth.
      delete new_descriptor_log;
      delete new_descriptor_file;
      // Best-effort: the aborted manifest is unreferenced and will be
      // orphan-reclaimed at the next open if this fails.
      env_->RemoveFile(new_manifest_file).IgnoreError();
      if (!first_manifest) {
        ReuseFileNumber(new_manifest_number);
      }
    }
  }

  return s;
}

Status VersionSet::Recover(bool* save_manifest) {
  struct LogReporter : public log::Reader::Reporter {
    Status* status;
    void Corruption(size_t bytes, const Status& s) override {
      if (this->status->ok()) *this->status = s;
    }
  };

  // Read "CURRENT" file, which contains a pointer to the current
  // manifest file.
  std::string current;
  Status s = ReadFileToString(env_, CurrentFileName(dbname_), &current);
  if (!s.ok()) {
    return s;
  }
  if (current.empty() || current[current.size() - 1] != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current.resize(current.size() - 1);

  std::string dscname = dbname_ + "/" + current;
  SequentialFile* file;
  s = env_->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent file",
                                s.ToString());
    }
    return s;
  }

  bool have_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t last_sequence = 0;
  uint64_t log_number = 0;
  Builder builder(this, current_);
  int read_records = 0;

  {
    LogReporter reporter;
    reporter.status = &s;
    log::Reader reader(file, &reporter, true /*checksum*/);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok()) {
      ++read_records;
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (s.ok()) {
        if (edit.has_comparator_ &&
            edit.comparator_ != icmp_.user_comparator()->Name()) {
          s = Status::InvalidArgument(
              edit.comparator_ + " does not match existing comparator ",
              icmp_.user_comparator()->Name());
        }
      }

      if (s.ok()) {
        builder.Apply(&edit);
      }

      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }

      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }

      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
    }
  }
  delete file;
  file = nullptr;

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no meta-nextfile entry in descriptor");
    } else if (!have_log_number) {
      s = Status::Corruption("no meta-lognumber entry in descriptor");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence-number entry in descriptor");
    }

    MarkFileNumberUsed(log_number);
  }

  if (s.ok()) {
    Version* v = new Version(this);
    builder.SaveTo(v);
    // Install recovered version.
    Finalize(v);
    AppendVersion(v);
    manifest_file_number_ = next_file;
    next_file_number_ = next_file + 1;
    last_sequence_ = last_sequence;
    log_number_ = log_number;

    // A new manifest is always written on recovery (no manifest reuse);
    // keeps recovery logic simple at the cost of one file per open.
    *save_manifest = true;
  }

  return s;
}

void VersionSet::MarkFileNumberUsed(uint64_t number) {
  if (next_file_number_ <= number) {
    next_file_number_ = number + 1;
  }
}

void VersionSet::Finalize(Version* v) {
  // Precomputed best level for next compaction.
  int best_level = -1;
  double best_score = -1;

  for (int level = 0; level < kNumLevels - 1; level++) {
    double score;
    if (level == 0) {
      // We treat level-0 specially by bounding the number of files
      // instead of number of bytes for two reasons:
      //
      // (1) With larger write-buffer sizes, it is nice not to do too
      // many level-0 compactions.
      //
      // (2) The files in level-0 are merged on every read and
      // therefore we wish to avoid too many files when the individual
      // file size is small (perhaps because of a small write-buffer
      // setting, or very high compression ratios, or lots of
      // overwrites/deletions).
      score = v->files_[level].size() /
              static_cast<double>(kL0CompactionTrigger);
    } else {
      // Compute the ratio of current size to size limit.
      const uint64_t level_bytes = TotalFileSize(v->files_[level]);
      score = static_cast<double>(level_bytes) / MaxBytesForLevel(level);
    }

    v->level_scores_[level] = score;
    if (score > best_score) {
      best_level = level;
      best_score = score;
    }
  }

  v->compaction_level_ = best_level;
  v->compaction_score_ = best_score;
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  // Save metadata.
  VersionEdit edit;
  edit.SetComparatorName(icmp_.user_comparator()->Name());

  // Save compaction pointers.
  for (int level = 0; level < kNumLevels; level++) {
    if (!compact_pointer_[level].empty()) {
      InternalKey key;
      key.DecodeFrom(compact_pointer_[level]);
      edit.SetCompactPointer(level, key);
    }
  }

  // Save files.
  for (int level = 0; level < kNumLevels; level++) {
    const std::vector<FileMetaData*>& files = current_->files_[level];
    for (size_t i = 0; i < files.size(); i++) {
      const FileMetaData* f = files[i];
      edit.AddFile(level, *f);  // Carries the recorded checksum, if any.
    }
  }

  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(record);
}

int VersionSet::NumLevelFiles(int level) const {
  assert(level >= 0);
  assert(level < kNumLevels);
  return static_cast<int>(current_->files_[level].size());
}

int64_t VersionSet::NumLevelBytes(int level) const {
  assert(level >= 0);
  assert(level < kNumLevels);
  return TotalFileSize(current_->files_[level]);
}

uint64_t VersionSet::PendingCompactionBytes() const {
  uint64_t pending = 0;
  const std::vector<FileMetaData*>& l0 = current_->files_[0];
  if (static_cast<int>(l0.size()) > kL0CompactionTrigger) {
    // L0 is sized by file count, not bytes: charge the files past the
    // trigger (oldest first is irrelevant — only the total debt is).
    for (size_t i = kL0CompactionTrigger; i < l0.size(); i++) {
      pending += l0[i]->file_size;
    }
  }
  for (int level = 1; level < kNumLevels - 1; level++) {
    const int64_t over = NumLevelBytes(level) -
                         static_cast<int64_t>(MaxBytesForLevel(level));
    if (over > 0) pending += static_cast<uint64_t>(over);
  }
  return pending;
}

const char* VersionSet::LevelSummary(LevelSummaryStorage* scratch) const {
  // Update code if kNumLevels changes.
  static_assert(kNumLevels == 7, "Summary formatting assumes 7 levels");
  std::snprintf(
      scratch->buffer, sizeof(scratch->buffer), "files[ %d %d %d %d %d %d %d ]",
      int(current_->files_[0].size()), int(current_->files_[1].size()),
      int(current_->files_[2].size()), int(current_->files_[3].size()),
      int(current_->files_[4].size()), int(current_->files_[5].size()),
      int(current_->files_[6].size()));
  return scratch->buffer;
}

uint64_t VersionSet::ApproximateOffsetOf(Version* v, const InternalKey& ikey) {
  uint64_t result = 0;
  for (int level = 0; level < kNumLevels; level++) {
    const std::vector<FileMetaData*>& files = v->files_[level];
    for (size_t i = 0; i < files.size(); i++) {
      if (icmp_.Compare(files[i]->largest, ikey) <= 0) {
        // Entire file is before "ikey", so just add the file size.
        result += files[i]->file_size;
      } else if (icmp_.Compare(files[i]->smallest, ikey) > 0) {
        // Entire file is after "ikey", so ignore.
        if (level > 0) {
          // Files other than level 0 are sorted by meta->smallest, so
          // no further files in this level will contain data for
          // "ikey".
          break;
        }
      } else {
        // "ikey" falls in the range for this table.  Add the
        // approximate offset of "ikey" within the table.
        Table* tableptr;
        Iterator* iter = table_cache_->NewIterator(
            ReadOptions(), files[i]->number, files[i]->file_size, &tableptr);
        if (tableptr != nullptr) {
          result += tableptr->ApproximateOffsetOf(ikey.Encode());
        }
        delete iter;
      }
    }
  }
  return result;
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) {
  for (Version* v = dummy_versions_.next_; v != &dummy_versions_;
       v = v->next_) {
    for (int level = 0; level < kNumLevels; level++) {
      const std::vector<FileMetaData*>& files = v->files_[level];
      for (size_t i = 0; i < files.size(); i++) {
        live->insert(files[i]->number);
      }
    }
  }
}

int64_t VersionSet::MaxNextLevelOverlappingBytes() {
  int64_t result = 0;
  std::vector<FileMetaData*> overlaps;
  for (int level = 1; level < kNumLevels - 1; level++) {
    for (size_t i = 0; i < current_->files_[level].size(); i++) {
      const FileMetaData* f = current_->files_[level][i];
      current_->GetOverlappingInputs(level + 1, &f->smallest, &f->largest,
                                     &overlaps);
      const int64_t sum = TotalFileSize(overlaps);
      if (sum > result) {
        result = sum;
      }
    }
  }
  return result;
}

// Stores the minimal range that covers all entries in inputs in
// *smallest, *largest. Requires: inputs is not empty.
void VersionSet::GetRange(const std::vector<FileMetaData*>& inputs,
                          InternalKey* smallest, InternalKey* largest) {
  assert(!inputs.empty());
  smallest->Clear();
  largest->Clear();
  for (size_t i = 0; i < inputs.size(); i++) {
    FileMetaData* f = inputs[i];
    if (i == 0) {
      *smallest = f->smallest;
      *largest = f->largest;
    } else {
      if (icmp_.Compare(f->smallest, *smallest) < 0) {
        *smallest = f->smallest;
      }
      if (icmp_.Compare(f->largest, *largest) > 0) {
        *largest = f->largest;
      }
    }
  }
}

// Stores the minimal range that covers all entries in inputs1 and
// inputs2 in *smallest, *largest.
void VersionSet::GetRange2(const std::vector<FileMetaData*>& inputs1,
                           const std::vector<FileMetaData*>& inputs2,
                           InternalKey* smallest, InternalKey* largest) {
  std::vector<FileMetaData*> all = inputs1;
  all.insert(all.end(), inputs2.begin(), inputs2.end());
  GetRange(all, smallest, largest);
}

Iterator* VersionSet::MakeInputIterator(Compaction* c) {
  ReadOptions options;
  options.verify_checksums = options_->paranoid_checks;
  options.fill_cache = false;

  // Level-0 files have to be merged together.  For other levels,
  // we will make a concatenating iterator per level.
  const int space = (c->level() == 0 ? c->inputs_[0].size() + 1 : 2);
  Iterator** list = new Iterator*[space];
  int num = 0;
  for (int which = 0; which < 2; which++) {
    if (!c->inputs_[which].empty()) {
      if (c->level() + which == 0) {
        const std::vector<FileMetaData*>& files = c->inputs_[which];
        for (size_t i = 0; i < files.size(); i++) {
          list[num++] = table_cache_->NewIterator(options, files[i]->number,
                                                  files[i]->file_size);
        }
      } else {
        // Create concatenating iterator for the files from this level.
        list[num++] = NewTwoLevelIterator(
            new Version::LevelFileNumIterator(icmp_, &c->inputs_[which]),
            &GetFileIterator, table_cache_, options);
      }
    }
  }
  assert(num <= space);
  Iterator* result = NewMergingIterator(&icmp_, list, num);
  delete[] list;
  return result;
}

int VersionSet::CountClaimableCompactions(uint32_t busy_levels) const {
  // Greedy by descending score, claiming each level pair as taken, so
  // the count matches what successive PickCompaction(mask) calls from
  // newly dispatched workers would actually claim.
  uint32_t mask = busy_levels;
  int jobs = 0;
  while (true) {
    int best = -1;
    double best_score = -1;
    for (int l = 0; l < kNumLevels - 1; l++) {
      if ((mask & (3u << l)) != 0) continue;
      if (current_->level_scores_[l] > best_score) {
        best = l;
        best_score = current_->level_scores_[l];
      }
    }
    if (best < 0 || best_score < 1) break;
    jobs++;
    mask |= (3u << best);
  }
  if (current_->file_to_compact_ != nullptr &&
      (mask & (3u << current_->file_to_compact_level_)) == 0) {
    jobs++;
  }
  return jobs;
}

Compaction* VersionSet::PickCompaction(uint32_t busy_levels) {
  Compaction* c;
  int level;

  // We prefer compactions triggered by too much data in a level over
  // the compactions triggered by seeks. Among size-triggered levels,
  // take the highest-scoring one whose pair {L, L+1} is free.
  int best_level = -1;
  double best_score = -1;
  for (int l = 0; l < kNumLevels - 1; l++) {
    if ((busy_levels & (3u << l)) != 0) continue;
    if (current_->level_scores_[l] > best_score) {
      best_level = l;
      best_score = current_->level_scores_[l];
    }
  }
  const bool size_compaction = (best_score >= 1);
  const bool seek_compaction =
      (current_->file_to_compact_ != nullptr &&
       (busy_levels & (3u << current_->file_to_compact_level_)) == 0);
  if (size_compaction) {
    level = best_level;
    assert(level >= 0);
    assert(level + 1 < kNumLevels);
    c = new Compaction(options_, level);
    c->max_output_file_size_ = MaxFileSizeForLevel(level + 1);

    // Pick the first file that comes after compact_pointer_[level].
    for (size_t i = 0; i < current_->files_[level].size(); i++) {
      FileMetaData* f = current_->files_[level][i];
      if (compact_pointer_[level].empty() ||
          icmp_.Compare(f->largest.Encode(), compact_pointer_[level]) > 0) {
        c->inputs_[0].push_back(f);
        break;
      }
    }
    if (c->inputs_[0].empty()) {
      // Wrap-around to the beginning of the key space.
      c->inputs_[0].push_back(current_->files_[level][0]);
    }
  } else if (seek_compaction) {
    level = current_->file_to_compact_level_;
    c = new Compaction(options_, level);
    c->max_output_file_size_ = MaxFileSizeForLevel(level + 1);
    c->inputs_[0].push_back(current_->file_to_compact_);
  } else {
    return nullptr;
  }

  c->input_version_ = current_;
  c->input_version_->Ref();

  // Files in level 0 may overlap each other, so pick up all overlapping
  // ones.
  if (level == 0) {
    InternalKey smallest, largest;
    GetRange(c->inputs_[0], &smallest, &largest);
    // Note that the next call will discard the file we placed in
    // c->inputs_[0] earlier and replace it with an overlapping set
    // which will include the picked file.
    current_->GetOverlappingInputs(0, &smallest, &largest, &c->inputs_[0]);
    assert(!c->inputs_[0].empty());
  }

  SetupOtherInputs(c);

  if (InputsQuarantined(c)) {
    // A quarantined input belongs to the repair job, not to compaction:
    // merging it would either propagate corrupt bytes into level+1 or
    // fail mid-merge. Skip this pick; the level becomes claimable again
    // once the repair edit lands.
    delete c;
    return nullptr;
  }

  return c;
}

bool VersionSet::InputsQuarantined(const Compaction* c) const {
  if (quarantine_.empty()) {
    return false;
  }
  for (int which = 0; which < 2; which++) {
    for (const FileMetaData* f : c->inputs_[which]) {
      if (quarantine_.Contains(f->number)) {
        return true;
      }
    }
  }
  return false;
}

void VersionSet::SetupOtherInputs(Compaction* c) {
  const int level = c->level();
  InternalKey smallest, largest;

  GetRange(c->inputs_[0], &smallest, &largest);

  current_->GetOverlappingInputs(level + 1, &smallest, &largest,
                                 &c->inputs_[1]);

  // Get entire range covered by compaction.
  InternalKey all_start, all_limit;
  GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);

  // See if we can grow the number of inputs in "level" without
  // changing the number of "level+1" files we pick up.
  if (!c->inputs_[1].empty()) {
    std::vector<FileMetaData*> expanded0;
    current_->GetOverlappingInputs(level, &all_start, &all_limit, &expanded0);
    const int64_t inputs1_size = TotalFileSize(c->inputs_[1]);
    const int64_t expanded0_size = TotalFileSize(expanded0);
    if (expanded0.size() > c->inputs_[0].size() &&
        inputs1_size + expanded0_size <
            ExpandedCompactionByteSizeLimit(options_)) {
      InternalKey new_start, new_limit;
      GetRange(expanded0, &new_start, &new_limit);
      std::vector<FileMetaData*> expanded1;
      current_->GetOverlappingInputs(level + 1, &new_start, &new_limit,
                                     &expanded1);
      if (expanded1.size() == c->inputs_[1].size()) {
        smallest = new_start;
        largest = new_limit;
        c->inputs_[0] = expanded0;
        c->inputs_[1] = expanded1;
        GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);
      }
    }
  }

  // Compute the set of grandparent files that overlap this compaction
  // (parent == level+1; grandparent == level+2).
  if (level + 2 < kNumLevels) {
    current_->GetOverlappingInputs(level + 2, &all_start, &all_limit,
                                   &c->grandparents_);
  }

  // Update the place where we will do the next compaction for this
  // level. We update this immediately instead of waiting for the
  // VersionEdit to be applied so that if the compaction fails, we will
  // try a different key range next time.
  compact_pointer_[level] = largest.Encode().ToString();
  c->edit_.SetCompactPointer(level, largest);
}

Compaction* VersionSet::CompactRange(int level, const InternalKey* begin,
                                     const InternalKey* end) {
  std::vector<FileMetaData*> inputs;
  current_->GetOverlappingInputs(level, begin, end, &inputs);
  if (inputs.empty()) {
    return nullptr;
  }

  // Avoid compacting too much in one shot in case the range is large.
  // But we cannot do this for level-0 since level-0 files can overlap
  // and we must not pick one file and drop another older file if the
  // two files overlap.
  if (level > 0) {
    const uint64_t limit = MaxFileSizeForLevel(level);
    uint64_t total = 0;
    for (size_t i = 0; i < inputs.size(); i++) {
      uint64_t s = inputs[i]->file_size;
      total += s;
      if (total >= limit) {
        inputs.resize(i + 1);
        break;
      }
    }
  }

  Compaction* c = new Compaction(options_, level);
  c->max_output_file_size_ = MaxFileSizeForLevel(level + 1);
  c->input_version_ = current_;
  c->input_version_->Ref();
  c->inputs_[0] = inputs;
  SetupOtherInputs(c);
  if (InputsQuarantined(c)) {
    // Same rule as PickCompaction: the repair job owns these files.
    delete c;
    return nullptr;
  }
  return c;
}

Compaction::Compaction(const Options* options, int level)
    : level_(level),
      max_output_file_size_(options->max_file_size),
      input_version_(nullptr),
      grandparent_index_(0),
      seen_key_(false),
      overlapped_bytes_(0) {
  for (int i = 0; i < kNumLevels; i++) {
    level_ptrs_[i] = 0;
  }
}

Compaction::~Compaction() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
  }
}

bool Compaction::IsTrivialMove() const {
  const VersionSet* vset = input_version_->vset_;
  // Avoid a move if there is lots of overlapping grandparent data.
  // Otherwise, the move could create a parent file that will require
  // a very expensive merge later on.
  return (num_input_files(0) == 1 && num_input_files(1) == 0 &&
          TotalFileSize(grandparents_) <=
              MaxGrandParentOverlapBytes(vset->options_));
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    for (size_t i = 0; i < inputs_[which].size(); i++) {
      edit->RemoveFile(level_ + which, inputs_[which][i]->number);
    }
  }
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key) {
  // Maybe use binary search to find right entry instead of linear search?
  const Comparator* user_cmp =
      input_version_->vset_->icmp_.user_comparator();
  for (int lvl = level_ + 2; lvl < kNumLevels; lvl++) {
    const std::vector<FileMetaData*>& files = input_version_->files_[lvl];
    while (level_ptrs_[lvl] < files.size()) {
      FileMetaData* f = files[level_ptrs_[lvl]];
      if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
        // We've advanced far enough.
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0) {
          // Key falls in this file's range, so definitely not base
          // level.
          return false;
        }
        break;
      }
      level_ptrs_[lvl]++;
    }
  }
  return true;
}

bool Compaction::ShouldStopBefore(const Slice& internal_key) {
  const VersionSet* vset = input_version_->vset_;
  // Scan to find earliest grandparent file that contains key.
  const InternalKeyComparator* icmp = &vset->icmp_;
  while (grandparent_index_ < grandparents_.size() &&
         icmp->Compare(internal_key,
                       grandparents_[grandparent_index_]->largest.Encode()) >
             0) {
    if (seen_key_) {
      overlapped_bytes_ += grandparents_[grandparent_index_]->file_size;
    }
    grandparent_index_++;
  }
  seen_key_ = true;

  if (overlapped_bytes_ > MaxGrandParentOverlapBytes(vset->options_)) {
    // Too much overlap for current output; start new output.
    overlapped_bytes_ = 0;
    return true;
  } else {
    return false;
  }
}

void Compaction::ReleaseInputs() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
    input_version_ = nullptr;
  }
}

}  // namespace fcae
