#ifndef FCAE_LSM_MEMTABLE_H_
#define FCAE_LSM_MEMTABLE_H_

#include <string>

#include "lsm/dbformat.h"
#include "lsm/skiplist.h"
#include "util/arena.h"
#include "util/status.h"

namespace fcae {

class Iterator;

/// The in-memory write buffer (paper Fig. 1: MemTable / Immutable
/// MemTable). Reference-counted because readers may hold it after it has
/// been swapped out for flushing.
class MemTable {
 public:
  /// MemTables are reference counted. The initial reference count is
  /// zero and the caller must call Ref() at least once.
  explicit MemTable(const InternalKeyComparator& comparator);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { ++refs_; }

  /// Drops reference count; deletes on reaching zero.
  void Unref() {
    --refs_;
    assert(refs_ >= 0);
    if (refs_ <= 0) {
      delete this;
    }
  }

  /// Approximate memory usage, used against write_buffer_size.
  size_t ApproximateMemoryUsage();

  /// Returns an iterator over internal keys. Keys returned by the
  /// iterator are encoded internal keys. The caller must ensure the
  /// memtable outlives the iterator.
  Iterator* NewIterator();

  /// Adds an entry that maps key to value at the specified sequence
  /// number with the specified type (value is empty for deletions).
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// If the memtable contains a value for key, stores it in *value and
  /// returns true. If it contains a deletion for key, stores NotFound()
  /// in *status and returns true. Else returns false.
  bool Get(const LookupKey& key, std::string* value, Status* status);

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  ~MemTable();  // Private since only Unref() should be used to delete it.

  KeyComparator comparator_;
  int refs_;
  Arena arena_;
  Table table_;
};

}  // namespace fcae

#endif  // FCAE_LSM_MEMTABLE_H_
